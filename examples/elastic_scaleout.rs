//! Elasticity (Section 9): grow a cluster while it serves traffic — add a
//! StoC to gain disk bandwidth, add an LTC and migrate a range to it to gain
//! CPU — then shrink back.
//!
//! Run with: `cargo run --release -p nova-examples --bin elastic_scaleout`

use nova_lsm::{presets, NovaClient, NovaCluster};

fn run_burst(client: &NovaClient, keys: u64, tag: &str) -> f64 {
    let start = std::time::Instant::now();
    for i in 0..keys {
        client
            .put_numeric(i % keys, format!("{tag}-{i}").as_bytes())
            .expect("put");
    }
    let throughput = keys as f64 / start.elapsed().as_secs_f64();
    println!("{tag:<18} {throughput:>10.0} writes/s");
    throughput
}

fn main() {
    let num_keys = 20_000u64;
    let mut config = presets::test_cluster(1, 1, num_keys);
    config.ranges_per_ltc = 4;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());

    println!("phase 1: 1 LTC, 1 StoC");
    run_burst(&client, 30_000, "baseline");

    println!("phase 2: +2 StoCs (more disk bandwidth for flushes/compactions)");
    cluster.add_stoc().expect("add stoc");
    cluster.add_stoc().expect("add stoc");
    run_burst(&client, 30_000, "3 StoCs");

    println!("phase 3: +1 LTC, migrate half the ranges to it");
    let new_ltc = cluster.add_ltc().expect("add ltc");
    let assignment = cluster.coordinator().configuration();
    let source = cluster.ltc_ids()[0];
    let ranges = assignment.ranges_of(source);
    for range in ranges.iter().take(ranges.len() / 2) {
        cluster.migrate_range(*range, new_ltc).expect("migrate range");
    }
    println!(
        "  ranges now: {:?} on {source}, {:?} on {new_ltc}",
        cluster.coordinator().configuration().ranges_of(source).len(),
        cluster.coordinator().configuration().ranges_of(new_ltc).len()
    );
    run_burst(&client, 30_000, "2 LTCs, 3 StoCs");

    println!("phase 4: scale back in (remove one StoC from placement)");
    let victim = *cluster.stoc_ids().last().unwrap();
    cluster.remove_stoc(victim).expect("remove stoc");
    run_burst(&client, 30_000, "2 LTCs, 2 StoCs");

    // Correctness check after all the elasticity churn.
    for i in (0..num_keys).step_by(997) {
        client.get_numeric(i % num_keys).ok();
    }
    println!("cluster remained available throughout");
    cluster.shutdown();
}
