//! A skewed, write-intensive workload modelled on the social-graph /
//! recommendation use cases that motivate the paper's introduction (HBase at
//! Airbnb, Pinterest's graph store, MyRocks serving Facebook's social graph):
//! a small set of celebrity accounts receives most of the counter updates.
//!
//! This is exactly the access pattern where Nova-LSM's Dranges shine: the hot
//! keys end up in duplicated point Dranges whose memtables are merged in
//! memory instead of being flushed, and the shared StoCs absorb the flush
//! traffic of the busy LTC.
//!
//! Run with: `cargo run --release -p nova-examples --bin social_graph_counters`

use nova_lsm::{presets, NovaClient, NovaCluster};
use nova_ycsb::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let num_accounts = 50_000u64;
    let mut config = presets::test_cluster(1, 4, num_accounts);
    config.range.scatter_width = 2;
    config.range.num_dranges = 16;
    config.range.reorg_check_interval = 5_000;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());

    // Follower-count updates with a Zipfian celebrity distribution.
    let zipf = Zipfian::ycsb_default(num_accounts);
    let mut rng = StdRng::seed_from_u64(7);
    let updates = 200_000u64;
    let start = std::time::Instant::now();
    for i in 0..updates {
        let account = zipf.next(&mut rng);
        let payload = format!("{{\"account\":{account},\"followers\":{i}}}");
        client
            .put_numeric(account, payload.as_bytes())
            .expect("update counter");
    }
    let elapsed = start.elapsed();
    println!(
        "applied {updates} counter updates in {:.2}s ({:.0} updates/s)",
        elapsed.as_secs_f64(),
        updates as f64 / elapsed.as_secs_f64()
    );

    // The hottest account is always readable with its latest value.
    let hottest = client
        .get_numeric(0)
        .expect("hot account")
        .expect("hot account present");
    println!("hottest account state: {}", String::from_utf8_lossy(&hottest));

    // Show what the skew did to the engine: Drange reorganisations,
    // memtable merges (updates absorbed in memory) and flush savings.
    for (id, stats) in cluster.ltc_stats() {
        println!(
            "{id}: reorganisations={} memtable_merges={} flushes={} bytes_flushed={}",
            stats.reorganizations, stats.memtable_merges, stats.flushes, stats.bytes_flushed
        );
    }
    let range = cluster
        .coordinator()
        .configuration()
        .range_assignment
        .keys()
        .copied()
        .next()
        .unwrap();
    let engine = cluster.ltc(cluster.ltc_ids()[0]).unwrap().range(range).unwrap();
    let drange_stats = engine.drange_stats();
    println!(
        "dranges: {} duplicated point Dranges, load imbalance {:.4}",
        drange_stats.duplicated_dranges,
        engine.drange_load_imbalance()
    );

    cluster.shutdown();
}
