//! Shared helpers for the Nova-LSM examples.
