//! Durability and fast recovery (Sections 5 and 8.2.8): writes are logged to
//! in-memory StoC files replicated 3× with one-sided writes, an LTC "crashes"
//! without flushing, and its ranges are rebuilt on the surviving LTC from the
//! MANIFEST plus the replicated log records.
//!
//! Run with: `cargo run --release -p nova-examples --bin durability_recovery`

use nova_common::config::LogPolicy;
use nova_lsm::{presets, NovaClient, NovaCluster};

fn main() {
    let num_keys = 10_000u64;
    let mut config = presets::test_cluster(2, 3, num_keys);
    config.ranges_per_ltc = 2;
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());

    println!("writing 5,000 orders with log replication (3 in-memory replicas per record)...");
    for order in 0..5_000u64 {
        let body = format!("{{\"order\":{order},\"status\":\"paid\"}}");
        client.put_numeric(order, body.as_bytes()).expect("put");
    }

    let victim = cluster.ltc_ids()[0];
    let victim_ranges = cluster.coordinator().configuration().ranges_of(victim);
    println!("simulating a crash of {victim} (serving ranges {victim_ranges:?}) — memtables are lost");

    let start = std::time::Instant::now();
    let recovered = cluster.fail_and_recover_ltc(victim).expect("failover");
    println!(
        "recovered {recovered} ranges on the surviving LTC in {:.0} ms",
        start.elapsed().as_secs_f64() * 1000.0
    );

    // Every order is still there: flushed data from SSTables, buffered data
    // replayed from the replicated log records.
    let mut missing = 0;
    for order in 0..5_000u64 {
        if !matches!(client.get_numeric(order), Ok(Some(_))) {
            missing += 1;
        }
    }
    println!(
        "verification: {} / 5000 orders readable after recovery",
        5_000 - missing
    );
    assert_eq!(missing, 0, "no orders may be lost");

    cluster.shutdown();
}
