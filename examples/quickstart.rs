//! Quickstart: start a small Nova-LSM cluster, write, read, scan, and look at
//! the component statistics.
//!
//! Run with: `cargo run --release -p nova-examples --bin quickstart`

use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};

fn main() {
    // A cluster with 1 LTC and 3 StoCs; SSTables are scattered across 2 StoCs
    // chosen with power-of-d.
    let mut config = presets::test_cluster(1, 3, 100_000);
    config.range.scatter_width = 2;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());

    println!(
        "cluster: {} LTC(s), {} StoC(s)",
        cluster.ltc_ids().len(),
        cluster.stoc_ids().len()
    );

    // Write a batch of user records.
    for user in 0..10_000u64 {
        let profile = format!("{{\"user\":{user},\"karma\":{}}}", user * 7 % 1000);
        client.put_numeric(user, profile.as_bytes()).expect("put");
    }
    println!("loaded 10,000 user profiles");

    // Point reads.
    let value = client.get_numeric(42).expect("get");
    println!("user 42 -> {}", String::from_utf8_lossy(&value));

    // A short scan.
    let page = client.scan(&encode_key(100), 5).expect("scan");
    println!("5 users starting at 100:");
    for entry in &page {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(&entry.key),
            String::from_utf8_lossy(&entry.value)
        );
    }

    // Deletes.
    client.delete(&encode_key(42)).expect("delete");
    assert!(client.get_numeric(42).is_err());
    println!("user 42 deleted");

    // Component statistics: how much work each LTC and StoC did.
    for (id, stats) in cluster.ltc_stats() {
        println!(
            "{id}: {} writes, {} gets, {} flushes, {} memtable merges, {} stalls",
            stats.writes, stats.gets, stats.flushes, stats.memtable_merges, stats.stalls
        );
    }
    for (id, stats) in cluster.stoc_stats() {
        println!(
            "{id}: {} bytes written, {} files",
            stats.bytes_written, stats.num_files
        );
    }

    cluster.shutdown();
}
