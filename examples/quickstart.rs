//! Quickstart: start a small Nova-LSM cluster, write, read, scan, and look at
//! the component statistics.
//!
//! Run with: `cargo run --release -p nova-examples --bin quickstart`

use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};

fn main() {
    // A cluster with 1 LTC and 3 StoCs; SSTables are scattered across 2 StoCs
    // chosen with power-of-d.
    let mut config = presets::test_cluster(1, 3, 100_000);
    config.range.scatter_width = 2;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());

    println!(
        "cluster: {} LTC(s), {} StoC(s)",
        cluster.ltc_ids().len(),
        cluster.stoc_ids().len()
    );

    // Write a batch of user records.
    for user in 0..10_000u64 {
        let profile = format!("{{\"user\":{user},\"karma\":{}}}", user * 7 % 1000);
        client.put_numeric(user, profile.as_bytes()).expect("put");
    }
    println!("loaded 10,000 user profiles");

    // Point reads. Absence is data: `get` returns `Ok(None)` for a missing
    // key, an `Err` only for operational failures.
    let value = client.get_numeric(42).expect("get").expect("user 42 present");
    println!("user 42 -> {}", String::from_utf8_lossy(&value));

    // Batched point reads: keys are split by range and the shards travel
    // concurrently on the client's I/O pool, one slot per key in order.
    let profiles = client.multi_get_numeric(&[1, 2, 3, 99_999]).expect("multi_get");
    println!(
        "multi_get: {} of {} keys found",
        profiles.iter().filter(|v| v.is_some()).count(),
        profiles.len()
    );

    // A short scan.
    let page = client.scan(&encode_key(100), 5).expect("scan");
    println!("5 users starting at 100:");
    for entry in &page {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(&entry.key),
            String::from_utf8_lossy(&entry.value)
        );
    }

    // Deletes.
    client.delete(&encode_key(42)).expect("delete");
    assert!(client.get_numeric(42).expect("get").is_none());
    println!("user 42 deleted");

    // A bounded streaming scan: entries of [500, 510) pulled lazily in
    // chunks, never reading past the end bound.
    let bounded: Vec<_> = client
        .scan_range_numeric(500, 510, nova_lsm::ReadOptions::default().with_chunk(4))
        .collect::<Result<Vec<_>, _>>()
        .expect("cursor scan");
    println!("cursor scan of [500, 510): {} entries", bounded.len());

    // Component statistics: how much work each LTC and StoC did.
    for (id, stats) in cluster.ltc_stats() {
        println!(
            "{id}: {} writes, {} gets, {} flushes, {} memtable merges, {} stalls",
            stats.writes, stats.gets, stats.flushes, stats.memtable_merges, stats.stalls
        );
    }
    for (id, stats) in cluster.stoc_stats() {
        println!(
            "{id}: {} bytes written, {} files",
            stats.bytes_written, stats.num_files
        );
    }

    // The one-call cluster overview: per-component health, operation latency
    // percentiles recorded by the built-in metrics, and any slow operations
    // with their per-layer timing breakdown.
    print!("\n{}", cluster.health_report().summary());

    cluster.shutdown();
}
