//! Heartbeat-based failure detection with per-node adaptive windows.
//!
//! The supervisor pings every component node once per cadence tick and feeds
//! the outcomes here. The detector keeps, per node, an exponentially-weighted
//! estimate of the heartbeat inter-arrival time (mean and variance), from
//! which it derives a phi-accrual-style suspicion level:
//!
//! ```text
//! phi = age_since_last_heartbeat / max(mean + 2·stddev, min_window)
//! ```
//!
//! A node accrues a **strike** for every tick its phi crosses the threshold
//! and for every explicit probe failure (a ping the fabric rejected, or a
//! lease the coordinator let expire). `confirm_ticks` consecutive strikes
//! confirm the failure; any successful heartbeat wipes the strikes and the
//! confirmation. The adaptive window is what keeps slow-but-alive nodes from
//! flapping: jittered or delayed heartbeats widen the window instead of
//! raising suspicion, while a genuinely silent node's age grows without
//! bound and must confirm. Explicit probe failures bypass the clock
//! entirely, so a dead fabric node confirms in exactly `confirm_ticks`
//! supervision rounds regardless of timer resolution.

use nova_common::clock::ClockRef;
use nova_common::config::SupervisorConfig;
use nova_common::NodeId;
use std::collections::HashMap;
use std::time::Duration;

/// Smoothing factor of the inter-arrival EWMA. Small enough that one
/// outlier barely moves the window, large enough that a genuine shift in
/// heartbeat cadence is absorbed within a few tens of beats.
const ALPHA: f64 = 0.2;

/// The detector's view of one node, as exposed in `ClusterHealth`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSuspicion {
    /// The node.
    pub node: NodeId,
    /// Current suspicion level; crosses the configured threshold when the
    /// node has been silent for `phi_threshold` adaptive windows.
    pub phi: f64,
    /// Time since the last successful heartbeat.
    pub last_heartbeat_age: Duration,
    /// Consecutive strikes (threshold crossings + probe failures).
    pub strikes: u32,
    /// True once the failure has been confirmed (and not yet cleared by a
    /// later heartbeat).
    pub confirmed: bool,
}

struct NodeState {
    /// Nanos of the last successful heartbeat.
    last_nanos: u64,
    /// EWMA of the heartbeat inter-arrival time, nanos.
    mean_nanos: f64,
    /// EWMA of the squared deviation from the mean, nanos².
    var_nanos: f64,
    strikes: u32,
    confirmed: bool,
}

/// Accrual failure detector over the supervised node set.
pub struct FailureDetector {
    clock: ClockRef,
    phi_threshold: f64,
    confirm_ticks: u32,
    min_window_nanos: f64,
    initial_interval_nanos: f64,
    nodes: HashMap<NodeId, NodeState>,
}

impl FailureDetector {
    /// Create a detector driven by `clock` and tuned by `config`
    /// (`phi_threshold`, `confirm_ticks`, `min_window_millis`; the heartbeat
    /// cadence seeds each node's window until real arrivals are observed).
    pub fn new(clock: ClockRef, config: &SupervisorConfig) -> Self {
        FailureDetector {
            clock,
            phi_threshold: config.phi_threshold,
            confirm_ticks: config.confirm_ticks.max(1),
            min_window_nanos: Duration::from_millis(config.min_window_millis.max(1)).as_nanos() as f64,
            initial_interval_nanos: Duration::from_millis(config.heartbeat_millis.max(1)).as_nanos() as f64,
            nodes: HashMap::new(),
        }
    }

    /// Record a successful heartbeat from `node`: updates the adaptive
    /// window and clears any suspicion.
    pub fn heartbeat(&mut self, node: NodeId) {
        let now = self.clock.now_nanos();
        let initial = self.initial_interval_nanos;
        let state = self.nodes.entry(node).or_insert(NodeState {
            last_nanos: now,
            mean_nanos: initial,
            var_nanos: 0.0,
            strikes: 0,
            confirmed: false,
        });
        if state.last_nanos != now {
            let interval = now.saturating_sub(state.last_nanos) as f64;
            let deviation = interval - state.mean_nanos;
            state.mean_nanos += ALPHA * deviation;
            state.var_nanos += ALPHA * (deviation * deviation - state.var_nanos);
        }
        state.last_nanos = now;
        state.strikes = 0;
        state.confirmed = false;
    }

    /// Record an explicit probe failure for `node` — a rejected ping or an
    /// expired lease. One strike, independent of the clock.
    pub fn probe_failed(&mut self, node: NodeId) {
        let now = self.clock.now_nanos();
        let initial = self.initial_interval_nanos;
        let state = self.nodes.entry(node).or_insert(NodeState {
            last_nanos: now,
            mean_nanos: initial,
            var_nanos: 0.0,
            strikes: 0,
            confirmed: false,
        });
        state.strikes = state.strikes.saturating_add(1);
    }

    fn phi_of(&self, state: &NodeState, now: u64) -> f64 {
        let age = now.saturating_sub(state.last_nanos) as f64;
        let window = (state.mean_nanos + 2.0 * state.var_nanos.sqrt()).max(self.min_window_nanos);
        age / window
    }

    /// Advance suspicion one supervision round: every node whose phi is at
    /// or above the threshold accrues a strike, and nodes reaching
    /// `confirm_ticks` strikes are returned — exactly once — as newly
    /// confirmed failures.
    pub fn tick(&mut self) -> Vec<NodeId> {
        let now = self.clock.now_nanos();
        let mut confirmed = Vec::new();
        let threshold = self.phi_threshold;
        let confirm_ticks = self.confirm_ticks;
        let mut phis: Vec<(NodeId, f64)> = Vec::with_capacity(self.nodes.len());
        for (node, state) in &self.nodes {
            phis.push((*node, self.phi_of(state, now)));
        }
        for (node, phi) in phis {
            let state = self.nodes.get_mut(&node).expect("node present");
            if phi >= threshold {
                state.strikes = state.strikes.saturating_add(1);
            }
            if state.strikes >= confirm_ticks && !state.confirmed {
                state.confirmed = true;
                confirmed.push(node);
            }
        }
        confirmed.sort();
        confirmed
    }

    /// True once `node`'s failure has been confirmed (and no heartbeat has
    /// cleared it since).
    pub fn is_confirmed(&self, node: NodeId) -> bool {
        self.nodes.get(&node).map(|s| s.confirmed).unwrap_or(false)
    }

    /// Time since `node`'s last successful heartbeat, if it is tracked.
    pub fn last_heartbeat_age(&self, node: NodeId) -> Option<Duration> {
        let now = self.clock.now_nanos();
        self.nodes
            .get(&node)
            .map(|s| Duration::from_nanos(now.saturating_sub(s.last_nanos)))
    }

    /// Stop tracking `node` (it left the configuration).
    pub fn forget(&mut self, node: NodeId) {
        self.nodes.remove(&node);
    }

    /// Per-node suspicion state, ordered by node id.
    pub fn states(&self) -> Vec<NodeSuspicion> {
        let now = self.clock.now_nanos();
        let mut out: Vec<NodeSuspicion> = self
            .nodes
            .iter()
            .map(|(node, state)| NodeSuspicion {
                node: *node,
                phi: self.phi_of(state, now),
                last_heartbeat_age: Duration::from_nanos(now.saturating_sub(state.last_nanos)),
                strikes: state.strikes,
                confirmed: state.confirmed,
            })
            .collect();
        out.sort_by_key(|s| s.node);
        out
    }
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector")
            .field("nodes", &self.nodes.len())
            .field("phi_threshold", &self.phi_threshold)
            .field("confirm_ticks", &self.confirm_ticks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::clock::manual_clock;

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            enabled: true,
            heartbeat_millis: 100,
            phi_threshold: 4.0,
            confirm_ticks: 3,
            min_window_millis: 50,
            rereplication_bytes_per_sec: 0,
        }
    }

    #[test]
    fn jittered_heartbeats_do_not_flap() {
        let (clock, manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.heartbeat(NodeId(1));
        // Heartbeats arrive with ±40% jitter around the nominal 100ms; a
        // tick runs right before each arrival, at the point of maximum age.
        for (i, millis) in [60u64, 140, 80, 130, 95, 120, 70, 135, 100, 90]
            .iter()
            .cycle()
            .take(50)
            .enumerate()
        {
            manual.advance(Duration::from_millis(*millis));
            assert!(d.tick().is_empty(), "arrival {i}: jitter must not confirm");
            let phi = d.states()[0].phi;
            assert!(
                phi < 4.0,
                "arrival {i}: phi {phi} crossed the threshold on jitter alone"
            );
            d.heartbeat(NodeId(1));
            assert_eq!(d.states()[0].strikes, 0);
        }
    }

    #[test]
    fn slow_but_alive_node_widens_its_window_instead_of_confirming() {
        let (clock, manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.heartbeat(NodeId(1));
        // The node settles into a 300ms cadence — three times the nominal
        // interval. Early beats look suspicious relative to the seeded
        // window, but never for `confirm_ticks` consecutive rounds, and the
        // window adapts until phi sits comfortably below the threshold.
        for _ in 0..40 {
            manual.advance(Duration::from_millis(300));
            assert!(d.tick().is_empty(), "a slow-but-alive node must not confirm");
            d.heartbeat(NodeId(1));
        }
        manual.advance(Duration::from_millis(300));
        let phi = d.states()[0].phi;
        assert!(
            phi < 2.0,
            "adapted window should rate a normal beat unsuspicious, got phi {phi}"
        );
    }

    #[test]
    fn silent_node_confirms_exactly_once_and_heartbeat_clears_it() {
        let (clock, manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.heartbeat(NodeId(1));
        d.heartbeat(NodeId(2));
        // Node 1 goes silent; node 2 keeps beating.
        let mut confirmations = 0;
        for round in 0..10 {
            manual.advance(Duration::from_millis(500));
            d.heartbeat(NodeId(2));
            let confirmed = d.tick();
            if !confirmed.is_empty() {
                assert_eq!(confirmed, vec![NodeId(1)]);
                confirmations += 1;
                assert!(round >= 2, "confirmation needs confirm_ticks strikes");
            }
        }
        assert_eq!(confirmations, 1, "a confirmed failure is reported exactly once");
        assert!(d.is_confirmed(NodeId(1)));
        assert!(!d.is_confirmed(NodeId(2)));
        // The node recovers: one heartbeat wipes the confirmation.
        d.heartbeat(NodeId(1));
        assert!(!d.is_confirmed(NodeId(1)));
        assert_eq!(d.states()[0].strikes, 0);
    }

    #[test]
    fn probe_failures_confirm_without_any_clock_advance() {
        let (clock, _manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.heartbeat(NodeId(7));
        for _ in 0..2 {
            d.probe_failed(NodeId(7));
            assert!(d.tick().is_empty());
        }
        d.probe_failed(NodeId(7));
        assert_eq!(d.tick(), vec![NodeId(7)], "confirm_ticks probe failures confirm");
    }

    #[test]
    fn heartbeat_between_probe_failures_resets_the_strikes() {
        let (clock, _manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.probe_failed(NodeId(3));
        d.probe_failed(NodeId(3));
        d.heartbeat(NodeId(3));
        d.probe_failed(NodeId(3));
        assert!(
            d.tick().is_empty(),
            "strikes do not survive a successful heartbeat"
        );
    }

    #[test]
    fn forget_drops_the_node_from_tracking() {
        let (clock, _manual) = manual_clock();
        let mut d = FailureDetector::new(clock, &config());
        d.heartbeat(NodeId(1));
        d.forget(NodeId(1));
        assert!(d.states().is_empty());
        assert!(d.last_heartbeat_age(NodeId(1)).is_none());
    }
}
