//! Deployment presets used throughout the evaluation.
//!
//! * [`shared_disk`] — the Nova-LSM architecture: LTCs scatter SSTables
//!   across ρ of the β StoCs with power-of-d (Figure 1's "shared-disk").
//! * [`shared_nothing`] — the same hardware but every LTC writes only to the
//!   StoC on its own node (Figure 1's "shared-nothing").
//! * [`scaled_experiment`] — the knob set the experiment harness uses so that
//!   paper-shaped runs finish in seconds on one machine: smaller memtables,
//!   smaller values, a scaled-down disk, identical ratios.

use nova_common::config::{
    AvailabilityPolicy, CacheConfig, ClusterConfig, DiskConfig, FabricConfig, LogPolicy, MetricsConfig,
    PlacementPolicy, RangeConfig, ServerConfig, SupervisorConfig,
};

/// Build the paper's shared-disk configuration: η LTCs, β StoCs, SSTables
/// scattered across `rho` StoCs chosen with power-of-d.
pub fn shared_disk(num_ltcs: usize, num_stocs: usize, rho: usize, num_keys: u64) -> ClusterConfig {
    let mut config = scaled_experiment(num_keys);
    config.num_ltcs = num_ltcs;
    config.num_stocs = num_stocs;
    config.range.scatter_width = rho.min(num_stocs).max(1);
    config.range.placement = PlacementPolicy::PowerOfD;
    config
}

/// Build the paper's shared-nothing configuration: every LTC co-locates with
/// one StoC and stores its SSTables only there.
pub fn shared_nothing(num_servers: usize, num_keys: u64) -> ClusterConfig {
    let mut config = scaled_experiment(num_keys);
    config.num_ltcs = num_servers;
    config.num_stocs = num_servers;
    config.range.scatter_width = 1;
    config.range.placement = PlacementPolicy::LocalOnly;
    config
}

/// The scaled-down knob set shared by the experiment harness. The ratios that
/// drive the paper's results are preserved:
/// memtable-budget : database-size : disk-bandwidth.
pub fn scaled_experiment(num_keys: u64) -> ClusterConfig {
    ClusterConfig {
        num_ltcs: 1,
        num_stocs: 1,
        ranges_per_ltc: 1,
        range: RangeConfig {
            num_dranges: 8,
            tranges_per_drange: 8,
            active_memtables: 8,
            max_memtables: 32,
            memtable_size_bytes: 64 * 1024,
            scatter_width: 1,
            placement: PlacementPolicy::PowerOfD,
            availability: AvailabilityPolicy::None,
            log_policy: LogPolicy::Disabled,
            unique_key_flush_threshold: 100,
            level0_stall_bytes: 1 << 20,
            level_size_multiplier: 10,
            level1_max_bytes: 2 << 20,
            num_levels: 4,
            compaction_threads: 4,
            offload_compaction: false,
            reorg_epsilon: 0.05,
            reorg_check_interval: 10_000,
            enable_lookup_index: true,
            enable_range_index: true,
            block_on_stall: true,
            block_size_bytes: 4096,
            bloom_bits_per_key: 10,
        },
        disk: DiskConfig::scaled(40, 2_000),
        fabric: FabricConfig::default(),
        // Scaled like the rest of the knobs: 2 MB of LTC block cache against
        // the ~6 MB databases the harness loads (the paper's LTCs would hold
        // a comparable fraction of their 1 TB disks in DRAM).
        block_cache: CacheConfig {
            capacity_bytes: 2 << 20,
            shards: 16,
            admission: true,
        },
        stoc_io_parallelism: 8,
        group_commit_bytes: 64 << 10,
        group_commit_max_records: 64,
        stoc_storage_threads: 4,
        stoc_compaction_threads: 2,
        lease_millis: 1_000,
        client_retries: 64,
        num_keys,
        metrics: MetricsConfig::default(),
        supervisor: SupervisorConfig::default(),
        server: ServerConfig::default(),
    }
}

/// A tiny configuration for unit and integration tests: instantaneous disks,
/// small memtables, everything else as in [`scaled_experiment`].
pub fn test_cluster(num_ltcs: usize, num_stocs: usize, num_keys: u64) -> ClusterConfig {
    let mut config = scaled_experiment(num_keys);
    config.num_ltcs = num_ltcs;
    config.num_stocs = num_stocs;
    config.range.memtable_size_bytes = 16 * 1024;
    config.range.max_memtables = 16;
    config.range.active_memtables = 4;
    config.range.num_dranges = 4;
    config.range.level0_stall_bytes = 512 * 1024;
    config.range.level1_max_bytes = 1 << 20;
    config.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(shared_disk(5, 10, 3, 100_000).validate().is_ok());
        assert!(shared_nothing(10, 100_000).validate().is_ok());
        assert!(scaled_experiment(10_000).validate().is_ok());
        assert!(test_cluster(2, 3, 10_000).validate().is_ok());
    }

    #[test]
    fn shared_disk_and_nothing_differ_only_in_placement() {
        let disk = shared_disk(10, 10, 3, 1_000);
        let nothing = shared_nothing(10, 1_000);
        assert_eq!(disk.num_ltcs, nothing.num_ltcs);
        assert_eq!(disk.num_stocs, nothing.num_stocs);
        assert_eq!(disk.range.placement, PlacementPolicy::PowerOfD);
        assert_eq!(nothing.range.placement, PlacementPolicy::LocalOnly);
        assert_eq!(disk.range.scatter_width, 3);
        assert_eq!(nothing.range.scatter_width, 1);
    }

    #[test]
    fn rho_is_clamped_to_beta() {
        let config = shared_disk(1, 3, 10, 1_000);
        assert_eq!(config.range.scatter_width, 3);
    }
}
