//! The analytical availability model behind Table 2 of the paper.
//!
//! "We model the availability of data using the analytical models of
//! [Patterson et al., RAID]. Assuming the Mean Time To Failure (MTTF) of a
//! StoC is 4.3 months and repair time is one 1 hour, Table 2 shows the MTTF
//! of a SSTable and the storage layer consisting of 10 StoCs."

/// Hours in a 30-day month (used to express the paper's "4.3 months").
pub const HOURS_PER_MONTH: f64 = 30.0 * 24.0;
/// Hours in a 365-day year.
pub const HOURS_PER_YEAR: f64 = 365.0 * 24.0;

/// Inputs to the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttfModel {
    /// Mean time to failure of one StoC, in hours (paper: 4.3 months).
    pub stoc_mttf_hours: f64,
    /// Mean time to repair a failed StoC, in hours (paper: 1 hour).
    pub repair_hours: f64,
    /// Number of StoCs in the storage layer (β, paper: 10).
    pub num_stocs: u32,
}

impl Default for MttfModel {
    fn default() -> Self {
        MttfModel {
            stoc_mttf_hours: 4.3 * HOURS_PER_MONTH,
            repair_hours: 1.0,
            num_stocs: 10,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttfRow {
    /// ρ — the number of StoCs a SSTable is scattered across.
    pub rho: u32,
    /// MTTF of one SSTable with a single copy (R=1), in hours.
    pub sstable_single_copy_hours: f64,
    /// MTTF of one SSTable protected by a parity block, in hours.
    pub sstable_parity_hours: f64,
    /// MTTF of the storage layer with a single copy, in hours.
    pub storage_single_copy_hours: f64,
    /// MTTF of the storage layer with parity, in hours.
    pub storage_parity_hours: f64,
    /// Space overhead of the single-copy configuration (always 0).
    pub single_copy_space_overhead: f64,
    /// Space overhead of the parity configuration (1/ρ).
    pub parity_space_overhead: f64,
}

impl MttfModel {
    /// MTTF of a SSTable scattered across `rho` StoCs with no redundancy:
    /// any of the ρ StoCs failing loses the table.
    pub fn sstable_single_copy(&self, rho: u32) -> f64 {
        self.stoc_mttf_hours / rho.max(1) as f64
    }

    /// MTTF of a SSTable whose ρ data fragments are protected by one parity
    /// block: data is lost only when a second StoC of the ρ+1-wide group
    /// fails within the repair window (the classic RAID-5 group formula).
    pub fn sstable_parity(&self, rho: u32) -> f64 {
        let rho = rho.max(1) as f64;
        (self.stoc_mttf_hours * self.stoc_mttf_hours) / ((rho + 1.0) * rho * self.repair_hours)
    }

    /// MTTF of the whole storage layer with no redundancy: blocks of SSTables
    /// are scattered across all β StoCs, so the first StoC failure loses data
    /// regardless of ρ.
    pub fn storage_single_copy(&self) -> f64 {
        self.stoc_mttf_hours / self.num_stocs.max(1) as f64
    }

    /// MTTF of the storage layer with parity: the layer contains roughly β/ρ
    /// independent parity groups, each with the group MTTF of
    /// [`MttfModel::sstable_parity`].
    pub fn storage_parity(&self, rho: u32) -> f64 {
        let rho = rho.max(1) as f64;
        self.sstable_parity(rho as u32) * rho / self.num_stocs.max(1) as f64
    }

    /// Produce one row of Table 2.
    pub fn row(&self, rho: u32) -> MttfRow {
        MttfRow {
            rho,
            sstable_single_copy_hours: self.sstable_single_copy(rho),
            sstable_parity_hours: self.sstable_parity(rho),
            storage_single_copy_hours: self.storage_single_copy(),
            storage_parity_hours: self.storage_parity(rho),
            single_copy_space_overhead: 0.0,
            parity_space_overhead: 1.0 / rho.max(1) as f64,
        }
    }

    /// The full Table 2 (ρ ∈ {1, 3, 5}).
    pub fn table2(&self) -> Vec<MttfRow> {
        [1, 3, 5].into_iter().map(|rho| self.row(rho)).collect()
    }
}

/// Format a duration in hours the way the paper's table does (days, months or
/// years, whichever reads best).
pub fn format_hours(hours: f64) -> String {
    if hours >= HOURS_PER_YEAR {
        format!("{:.1} Yrs", hours / HOURS_PER_YEAR)
    } else if hours >= HOURS_PER_MONTH {
        format!("{:.1} Months", hours / HOURS_PER_MONTH)
    } else {
        format!("{:.0} Days", hours / 24.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_papers_shape() {
        let model = MttfModel::default();
        let rows = model.table2();
        assert_eq!(rows.len(), 3);

        // ρ=1: SSTable MTTF ≈ 4.3 months with one copy, hundreds of years
        // with parity; the storage layer is ~13 days either way without
        // parity.
        let r1 = rows[0];
        assert!((r1.sstable_single_copy_hours / HOURS_PER_MONTH - 4.3).abs() < 0.01);
        assert!((r1.storage_single_copy_hours / 24.0 - 12.9).abs() < 0.5);
        let parity_years = r1.sstable_parity_hours / HOURS_PER_YEAR;
        assert!(
            (400.0..700.0).contains(&parity_years),
            "ρ=1 parity SSTable MTTF {parity_years} years"
        );
        let storage_parity_years = r1.storage_parity_hours / HOURS_PER_YEAR;
        assert!(
            (40.0..70.0).contains(&storage_parity_years),
            "ρ=1 parity storage MTTF {storage_parity_years} years"
        );

        // ρ=3 and ρ=5: MTTF of a SSTable decreases with ρ, parity overhead
        // decreases with ρ.
        assert!(rows[1].sstable_single_copy_hours < rows[0].sstable_single_copy_hours);
        assert!(rows[2].sstable_single_copy_hours < rows[1].sstable_single_copy_hours);
        assert!(rows[1].parity_space_overhead < rows[0].parity_space_overhead);
        let r3_years = rows[1].sstable_parity_hours / HOURS_PER_YEAR;
        assert!(
            (70.0..110.0).contains(&r3_years),
            "ρ=3 parity SSTable MTTF {r3_years} years (paper: 91)"
        );
        let r5_years = rows[2].sstable_parity_hours / HOURS_PER_YEAR;
        assert!(
            (28.0..45.0).contains(&r5_years),
            "ρ=5 parity SSTable MTTF {r5_years} years (paper: 36)"
        );
        let r5_storage = rows[2].storage_parity_hours / HOURS_PER_YEAR;
        assert!(
            (14.0..23.0).contains(&r5_storage),
            "ρ=5 parity storage MTTF {r5_storage} years (paper: 18.5)"
        );
        // Storage-layer MTTF without redundancy is independent of ρ.
        assert_eq!(
            rows[0].storage_single_copy_hours,
            rows[2].storage_single_copy_hours
        );
        // Space overheads match Table 2's last column.
        assert_eq!(rows[0].single_copy_space_overhead, 0.0);
        assert!((rows[0].parity_space_overhead - 1.0).abs() < 1e-9);
        assert!((rows[1].parity_space_overhead - 1.0 / 3.0).abs() < 1e-9);
        assert!((rows[2].parity_space_overhead - 0.2).abs() < 1e-9);
    }

    #[test]
    fn formatting() {
        assert!(format_hours(13.0 * 24.0).contains("Days"));
        assert!(format_hours(4.3 * HOURS_PER_MONTH).contains("Months"));
        assert!(format_hours(100.0 * HOURS_PER_YEAR).contains("Yrs"));
    }
}
