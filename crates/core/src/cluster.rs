//! Assembly of a complete Nova-LSM deployment: the simulated fabric, β StoCs,
//! η LTCs with ω ranges each, the coordinator, and the elasticity operations
//! of Section 9 (adding/removing LTCs and StoCs, migrating ranges).

use nova_cache::BlockCache;
use nova_common::clock::system_clock;
use nova_common::config::ClusterConfig;
use nova_common::keyspace::KeyspacePartition;
use nova_common::{Error, LtcId, NodeId, RangeId, Result, StocId};
use nova_coordinator::{Coordinator, LeaseHolder};
use nova_fabric::Fabric;
use nova_logc::LogC;
use nova_ltc::{Ltc, LtcStats, Manifest, Placer, RangeEngine};
use nova_stoc::{SimDisk, StocClient, StocDirectory, StocServer, StocStats, StorageMedium};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running Nova-LSM cluster.
pub struct NovaCluster {
    config: ClusterConfig,
    fabric: Arc<Fabric>,
    directory: StocDirectory,
    coordinator: Coordinator,
    partition: KeyspacePartition,
    stoc_servers: Mutex<HashMap<StocId, StocServer>>,
    ltcs: RwLock<HashMap<LtcId, Arc<Ltc>>>,
    ltc_nodes: RwLock<HashMap<LtcId, NodeId>>,
    next_stoc_id: AtomicU32,
    next_ltc_id: AtomicU32,
}

impl std::fmt::Debug for NovaCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaCluster")
            .field("ltcs", &self.ltcs.read().len())
            .field("stocs", &self.stoc_servers.lock().len())
            .field("ranges", &self.partition.num_ranges())
            .finish()
    }
}

impl NovaCluster {
    /// Start a cluster from a configuration: η LTC nodes, β StoC nodes, ω
    /// ranges per LTC, with every range configured per `config.range`.
    pub fn start(config: ClusterConfig) -> Result<Arc<Self>> {
        config.validate().map_err(Error::InvalidArgument)?;
        let num_nodes = config.num_ltcs + config.num_stocs;
        let fabric = Fabric::new(num_nodes, &config.fabric);
        let directory = StocDirectory::new();
        let coordinator = Coordinator::new(system_clock(), Duration::from_millis(config.lease_millis));
        let partition = KeyspacePartition::uniform(config.num_keys, config.total_ranges());

        let cluster = Arc::new(NovaCluster {
            config: config.clone(),
            fabric: Arc::clone(&fabric),
            directory: directory.clone(),
            coordinator,
            partition,
            stoc_servers: Mutex::new(HashMap::new()),
            ltcs: RwLock::new(HashMap::new()),
            ltc_nodes: RwLock::new(HashMap::new()),
            next_stoc_id: AtomicU32::new(config.num_stocs as u32),
            next_ltc_id: AtomicU32::new(config.num_ltcs as u32),
        });

        // StoCs occupy nodes [η, η+β).
        for i in 0..config.num_stocs {
            let stoc = StocId(i as u32);
            let node = NodeId((config.num_ltcs + i) as u32);
            cluster.start_stoc_on(stoc, node)?;
        }

        // LTCs occupy nodes [0, η).
        for i in 0..config.num_ltcs {
            let ltc_id = LtcId(i as u32);
            let node = NodeId(i as u32);
            // One block cache per LTC: its ranges share the budget, and hit
            // rates surface through `LtcStats`.
            let ltc = Ltc::with_block_cache(ltc_id, node, BlockCache::from_config(&config.block_cache));
            cluster.ltcs.write().insert(ltc_id, ltc);
            cluster.ltc_nodes.write().insert(ltc_id, node);
            cluster.coordinator.register_ltc(ltc_id, node);
        }
        cluster
            .coordinator
            .assign_ranges_round_robin(config.total_ranges())?;

        // Create the range engines on their assigned LTCs.
        let assignment = cluster.coordinator.configuration();
        for range_idx in 0..config.total_ranges() {
            let range = RangeId(range_idx as u32);
            let ltc_id = assignment.ltc_of(range).expect("every range was just assigned");
            let engine = cluster.build_range_engine(range, ltc_id, false)?;
            cluster.ltcs.read()[&ltc_id].add_range(engine);
        }

        Ok(cluster)
    }

    fn start_stoc_on(&self, stoc: StocId, node: NodeId) -> Result<()> {
        let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(self.config.disk));
        let server = StocServer::start_with_io_parallelism(
            stoc,
            node,
            &self.fabric,
            self.directory.clone(),
            medium,
            self.config.stoc_storage_threads + self.config.stoc_compaction_threads,
            self.config.fabric.xchg_threads_per_node,
            self.config.stoc_io_parallelism,
        );
        self.coordinator.register_stoc(stoc, node);
        self.stoc_servers.lock().insert(stoc, server);
        Ok(())
    }

    fn build_range_engine(&self, range: RangeId, ltc: LtcId, recover: bool) -> Result<Arc<RangeEngine>> {
        let node = *self.ltc_nodes.read().get(&ltc).ok_or(Error::UnknownLtc(ltc))?;
        let endpoint = self.fabric.endpoint(node);
        let client = StocClient::new(endpoint, self.directory.clone())
            .with_io_parallelism(self.config.stoc_io_parallelism);
        let range_config = self.config.range.clone();
        let logc = Arc::new(LogC::new(
            client.clone(),
            range_config.log_policy,
            range_config.memtable_size_bytes as u64 * 2,
        ));
        // Co-locate the "local" StoC with the LTC's position for the
        // shared-nothing preset; harmless otherwise.
        let local_stoc = StocId(ltc.0 % self.config.num_stocs.max(1) as u32);
        let placer = Placer::new(
            client.clone(),
            range_config.placement,
            range_config.availability,
            Some(local_stoc),
            (range.0 as u64 + 1) * 7919,
        );
        let manifest_stoc = StocId(range.0 % self.directory.len().max(1) as u32);
        let manifest = Manifest::new(manifest_stoc, &format!("range-{}", range.0));
        let interval = self.partition.interval(range);
        // Read through the owning LTC's block cache.
        let block_cache = self.ltcs.read().get(&ltc).and_then(|l| l.block_cache().cloned());
        if recover {
            RangeEngine::recover(
                range,
                interval,
                range_config,
                client,
                logc,
                placer,
                manifest,
                block_cache,
                8,
            )
        } else {
            RangeEngine::new(
                range,
                interval,
                range_config,
                client,
                logc,
                placer,
                manifest,
                block_cache,
            )
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The keyspace partition used to route requests.
    pub fn partition(&self) -> &KeyspacePartition {
        &self.partition
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The fabric (for failure injection in tests and experiments).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Ids of the LTCs currently in the configuration.
    pub fn ltc_ids(&self) -> Vec<LtcId> {
        let mut ids: Vec<LtcId> = self.ltcs.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Ids of the StoCs currently in the configuration.
    pub fn stoc_ids(&self) -> Vec<StocId> {
        // The *active* configuration: draining StoCs (removed from placement
        // but still serving their existing blocks) are not listed.
        self.directory.placeable().as_ref().clone()
    }

    /// The LTC object with `id`.
    pub fn ltc(&self, id: LtcId) -> Result<Arc<Ltc>> {
        self.ltcs.read().get(&id).cloned().ok_or(Error::UnknownLtc(id))
    }

    /// Route a key to the (range, LTC) pair serving it.
    pub fn route(&self, key: &[u8]) -> Result<(RangeId, Arc<Ltc>)> {
        let range = self.partition.range_of_encoded(key);
        let ltc_id = self
            .coordinator
            .configuration()
            .ltc_of(range)
            .ok_or(Error::Unavailable(format!("{range} is not assigned to any LTC")))?;
        Ok((range, self.ltc(ltc_id)?))
    }

    /// Per-LTC statistics, keyed by LTC id.
    pub fn ltc_stats(&self) -> HashMap<LtcId, LtcStats> {
        self.ltcs
            .read()
            .iter()
            .map(|(id, ltc)| (*id, ltc.stats()))
            .collect()
    }

    /// Per-StoC statistics (disk bytes, queue depth), keyed by StoC id.
    pub fn stoc_stats(&self) -> HashMap<StocId, StocStats> {
        let ltc_node = NodeId(0);
        let client = StocClient::new(self.fabric.endpoint(ltc_node), self.directory.clone());
        self.directory
            .all()
            .into_iter()
            .map(|s| (s, client.stats(s).unwrap_or_default()))
            .collect()
    }

    /// Per-LTC block-cache statistics, keyed by LTC id. LTCs whose cache is
    /// disabled are omitted.
    pub fn block_cache_stats(&self) -> HashMap<LtcId, nova_cache::CacheStats> {
        self.ltcs
            .read()
            .iter()
            .filter_map(|(id, ltc)| ltc.block_cache().map(|c| (*id, c.stats())))
            .collect()
    }

    /// Cluster-wide block-cache hit rate (0 when caching is disabled).
    pub fn block_cache_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for stats in self.block_cache_stats().values() {
            hits += stats.hits;
            misses += stats.misses;
        }
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Aggregate write-stall statistics across every range.
    pub fn total_stalls(&self) -> u64 {
        self.ltc_stats().values().map(|s| s.stalls).sum()
    }

    /// Flush every range on every LTC (tests, graceful shutdown).
    pub fn flush_all(&self) -> Result<()> {
        let ltcs: Vec<Arc<Ltc>> = self.ltcs.read().values().cloned().collect();
        for ltc in ltcs {
            ltc.flush_all()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Elasticity (Section 9)
    // ------------------------------------------------------------------

    /// Add a StoC on a fresh node. New SSTables are assigned to it
    /// immediately by power-of-d placement.
    pub fn add_stoc(&self) -> Result<StocId> {
        let stoc = StocId(self.next_stoc_id.fetch_add(1, Ordering::SeqCst));
        let node = self.fabric.add_node();
        self.start_stoc_on(stoc, node)?;
        Ok(stoc)
    }

    /// Remove a StoC from the placement configuration. Existing SSTable
    /// fragments on it remain readable (the paper keeps such replicas around
    /// because disk space is cheap), so the directory entry stays resolvable
    /// in a draining state; new SSTables simply stop being placed there.
    pub fn remove_stoc(&self, stoc: StocId) -> Result<()> {
        let placeable = self.directory.num_placeable();
        if placeable <= 1 {
            return Err(Error::InvalidArgument("cannot remove the last StoC".into()));
        }
        if self.config.range.scatter_width > placeable - 1 {
            return Err(Error::InvalidArgument(format!(
                "removing {stoc} would leave fewer StoCs than the scatter width ρ={}",
                self.config.range.scatter_width
            )));
        }
        self.directory.set_placeable(stoc, false);
        self.coordinator.deregister_stoc(stoc);
        Ok(())
    }

    /// Add an LTC on a fresh node. It starts with no ranges; migrate ranges
    /// to it with [`NovaCluster::migrate_range`] or
    /// [`NovaCluster::rebalance`].
    pub fn add_ltc(&self) -> Result<LtcId> {
        let ltc_id = LtcId(self.next_ltc_id.fetch_add(1, Ordering::SeqCst));
        let node = self.fabric.add_node();
        let ltc = Ltc::with_block_cache(ltc_id, node, BlockCache::from_config(&self.config.block_cache));
        self.ltcs.write().insert(ltc_id, ltc);
        self.ltc_nodes.write().insert(ltc_id, node);
        self.coordinator.register_ltc(ltc_id, node);
        Ok(ltc_id)
    }

    /// Remove an LTC after migrating its ranges elsewhere. Fails if it still
    /// serves ranges.
    pub fn remove_ltc(&self, ltc_id: LtcId) -> Result<()> {
        let ltc = self.ltc(ltc_id)?;
        if ltc.num_ranges() > 0 {
            return Err(Error::InvalidArgument(format!(
                "{ltc_id} still serves {} ranges; migrate them first",
                ltc.num_ranges()
            )));
        }
        ltc.shutdown();
        self.ltcs.write().remove(&ltc_id);
        self.ltc_nodes.write().remove(&ltc_id);
        self.coordinator.deregister_ltc(ltc_id);
        Ok(())
    }

    /// Migrate one range from its current LTC to `destination`
    /// (Sections 8.2.6 and 9). SSTables stay on the StoCs; only metadata and
    /// memtable state move.
    pub fn migrate_range(&self, range: RangeId, destination: LtcId) -> Result<()> {
        let assignment = self.coordinator.configuration();
        let source_id = assignment.ltc_of(range).ok_or(Error::WrongRange(range))?;
        if source_id == destination {
            return Ok(());
        }
        let source = self.ltc(source_id)?;
        let dest = self.ltc(destination)?;
        let engine = source.range(range)?;
        let snapshot = engine.export_for_migration()?;

        // Rebuild the range on the destination LTC's node.
        let node = *self
            .ltc_nodes
            .read()
            .get(&destination)
            .ok_or(Error::UnknownLtc(destination))?;
        let client = StocClient::new(self.fabric.endpoint(node), self.directory.clone())
            .with_io_parallelism(self.config.stoc_io_parallelism);
        let range_config = self.config.range.clone();
        let logc = Arc::new(LogC::new(
            client.clone(),
            range_config.log_policy,
            range_config.memtable_size_bytes as u64 * 2,
        ));
        let placer = Placer::new(
            client.clone(),
            range_config.placement,
            range_config.availability,
            Some(StocId(destination.0 % self.config.num_stocs.max(1) as u32)),
            (range.0 as u64 + 1) * 7919 + destination.0 as u64,
        );
        let manifest_stoc = StocId(range.0 % self.directory.len().max(1) as u32);
        let manifest = Manifest::new(manifest_stoc, &format!("range-{}", range.0));
        let new_engine = RangeEngine::import_from_migration(
            snapshot,
            range_config,
            client,
            logc,
            placer,
            manifest,
            dest.block_cache().cloned(),
        )?;

        dest.add_range(new_engine);
        if let Some(old) = source.remove_range(range) {
            old.shutdown();
        }
        self.coordinator
            .commit_migration(&nova_coordinator::MigrationPlan {
                range,
                from: source_id,
                to: destination,
            })?;
        Ok(())
    }

    /// Rebalance ranges across LTCs using the coordinator's load-balancing
    /// plan, driven by each LTC's observed operation counts. Returns the
    /// number of ranges migrated.
    pub fn rebalance(&self) -> Result<usize> {
        let stats = self.ltc_stats();
        let ltc_load: HashMap<LtcId, f64> = stats
            .iter()
            .map(|(id, s)| (*id, (s.writes + s.gets + s.scans) as f64))
            .collect();
        // Per-range load: approximate by splitting each LTC's load across its
        // ranges weighted by range write counts (we only track per-LTC here,
        // so weight evenly).
        let mut range_load: HashMap<RangeId, f64> = HashMap::new();
        let assignment = self.coordinator.configuration();
        for (ltc_id, load) in &ltc_load {
            let ranges = assignment.ranges_of(*ltc_id);
            for r in &ranges {
                range_load.insert(*r, load / ranges.len().max(1) as f64);
            }
        }
        let plans = self.coordinator.plan_load_balancing(&ltc_load, &range_load, 0.2);
        let count = plans.len();
        for plan in plans {
            self.migrate_range(plan.range, plan.to)?;
        }
        Ok(count)
    }

    /// Simulate the failure of an LTC and recover its ranges on the surviving
    /// LTCs (Section 4.5): ranges are scattered across the survivors and each
    /// is rebuilt from its MANIFEST and log records.
    pub fn fail_and_recover_ltc(&self, failed: LtcId) -> Result<usize> {
        let plans = self.coordinator.plan_failover(failed);
        let ltc = self.ltc(failed)?;
        // The failed LTC's memory is gone: drop its engines without flushing.
        ltc.shutdown();
        let orphaned: Vec<RangeId> = ltc.range_ids();
        for r in &orphaned {
            ltc.remove_range(*r);
        }
        self.ltcs.write().remove(&failed);
        self.ltc_nodes.write().remove(&failed);
        self.coordinator.deregister_ltc(failed);

        let mut recovered = 0;
        for plan in plans {
            let dest = self.ltc(plan.to)?;
            let engine = self.build_range_engine(plan.range, plan.to, true)?;
            dest.add_range(engine);
            self.coordinator.register_ltc(plan.to, dest.node());
            self.coordinator.assign_range(plan.range, plan.to)?;
            recovered += 1;
        }
        Ok(recovered)
    }

    /// Record a heartbeat for every live component (renewing leases).
    pub fn heartbeat_all(&self) {
        for ltc in self.ltc_ids() {
            self.coordinator.heartbeat(LeaseHolder::Ltc(ltc.0));
        }
        for stoc in self.stoc_ids() {
            self.coordinator.heartbeat(LeaseHolder::Stoc(stoc.0));
        }
    }

    /// Shut down every component.
    pub fn shutdown(&self) {
        let ltcs: Vec<Arc<Ltc>> = self.ltcs.read().values().cloned().collect();
        for ltc in ltcs {
            ltc.shutdown();
        }
        let mut servers = self.stoc_servers.lock();
        for (_, server) in servers.drain() {
            server.stop();
        }
    }
}

impl Drop for NovaCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
