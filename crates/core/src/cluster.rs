//! Assembly of a complete Nova-LSM deployment: the simulated fabric, β StoCs,
//! η LTCs with ω ranges each, the coordinator, and the elasticity operations
//! of Section 9 (adding/removing LTCs and StoCs, migrating ranges).

use nova_cache::BlockCache;
use nova_common::clock::system_clock;
use nova_common::config::ClusterConfig;
use nova_common::keyspace::KeyspacePartition;
use nova_common::{Error, LtcId, NodeId, RangeId, Result, StocId};
use nova_coordinator::{Coordinator, LeaseHolder};
use nova_fabric::Fabric;
use nova_index::{IndexState, ValueProjection};
use nova_logc::LogC;
use nova_ltc::{Ltc, LtcStats, Manifest, Placer, RangeEngine};
use nova_obs::{Metrics, OpKind, RegistrySnapshot};
use nova_stoc::{SimDisk, StocClient, StocDirectory, StocServer, StocStats, StorageMedium};

use crate::health::{ClusterHealth, LtcHealth, OpLatency, StocHealth};
use crate::supervisor::{SelfHealState, SupervisorHandle};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running Nova-LSM cluster.
pub struct NovaCluster {
    config: ClusterConfig,
    fabric: Arc<Fabric>,
    directory: StocDirectory,
    coordinator: Coordinator,
    partition: KeyspacePartition,
    stoc_servers: Mutex<HashMap<StocId, StocServer>>,
    /// Cluster-wide metrics hub: every layer records latency here, and
    /// [`NovaCluster::health_report`] aggregates from it.
    metrics: Arc<Metrics>,
    ltcs: RwLock<HashMap<LtcId, Arc<Ltc>>>,
    ltc_nodes: RwLock<HashMap<LtcId, NodeId>>,
    next_stoc_id: AtomicU32,
    next_ltc_id: AtomicU32,
    /// Serializes migrations and failovers: two concurrent ownership flips
    /// over the same range would race freeze/commit/rollback.
    elasticity_mutex: Mutex<()>,
    /// Per-LTC operation counts at the time of the previous `rebalance`
    /// call, so each rebalance plans from the load observed *since the last
    /// one* rather than from lifetime-cumulative counters.
    rebalance_baseline: Mutex<HashMap<LtcId, u64>>,
    /// Self-healing state: failure detector, re-replication budget, pending
    /// failovers. Serializes supervision rounds — the background thread and
    /// manual [`NovaCluster::self_heal_tick`] callers never interleave.
    pub(crate) selfheal: Mutex<SelfHealState>,
    /// The background supervisor thread, present only when
    /// `config.supervisor.enabled` is set.
    supervisor: Mutex<Option<SupervisorHandle>>,
}

impl std::fmt::Debug for NovaCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaCluster")
            .field("ltcs", &self.ltcs.read().len())
            .field("stocs", &self.stoc_servers.lock().len())
            .field("ranges", &self.partition.num_ranges())
            .finish()
    }
}

impl NovaCluster {
    /// Start a cluster from a configuration: η LTC nodes, β StoC nodes, ω
    /// ranges per LTC, with every range configured per `config.range`.
    pub fn start(config: ClusterConfig) -> Result<Arc<Self>> {
        config.validate().map_err(Error::InvalidArgument)?;
        let num_nodes = config.num_ltcs + config.num_stocs;
        let fabric = Fabric::new(num_nodes, &config.fabric);
        let directory = StocDirectory::new();
        let coordinator = Coordinator::new(system_clock(), Duration::from_millis(config.lease_millis));
        let partition = KeyspacePartition::uniform(config.num_keys, config.total_ranges());
        let metrics = Metrics::new(&config.metrics);

        let cluster = Arc::new(NovaCluster {
            config: config.clone(),
            fabric: Arc::clone(&fabric),
            directory: directory.clone(),
            coordinator,
            partition,
            stoc_servers: Mutex::new(HashMap::new()),
            metrics,
            ltcs: RwLock::new(HashMap::new()),
            ltc_nodes: RwLock::new(HashMap::new()),
            next_stoc_id: AtomicU32::new(config.num_stocs as u32),
            next_ltc_id: AtomicU32::new(config.num_ltcs as u32),
            elasticity_mutex: Mutex::new(()),
            rebalance_baseline: Mutex::new(HashMap::new()),
            selfheal: Mutex::new(SelfHealState::new(system_clock(), &config.supervisor)),
            supervisor: Mutex::new(None),
        });

        // StoCs occupy nodes [η, η+β).
        for i in 0..config.num_stocs {
            let stoc = StocId(i as u32);
            let node = NodeId((config.num_ltcs + i) as u32);
            cluster.start_stoc_on(stoc, node)?;
        }

        // LTCs occupy nodes [0, η).
        for i in 0..config.num_ltcs {
            let ltc_id = LtcId(i as u32);
            let node = NodeId(i as u32);
            // One block cache per LTC: its ranges share the budget, and hit
            // rates surface through `LtcStats`.
            let ltc = Ltc::with_observability(
                ltc_id,
                node,
                BlockCache::from_config_with_metrics(&config.block_cache, Arc::clone(&cluster.metrics)),
                Arc::clone(&cluster.metrics),
            );
            cluster.ltcs.write().insert(ltc_id, ltc);
            cluster.ltc_nodes.write().insert(ltc_id, node);
            cluster.coordinator.register_ltc(ltc_id, node);
        }
        cluster
            .coordinator
            .assign_ranges_round_robin(config.total_ranges())?;

        // Create the range engines on their assigned LTCs. Each range's
        // MANIFEST home is pinned now, while the StoC set is exactly the
        // configured β, so later add_stoc/remove_stoc calls can never move
        // where recovery looks for the MANIFEST.
        let assignment = cluster.coordinator.configuration();
        for range_idx in 0..config.total_ranges() {
            let range = RangeId(range_idx as u32);
            cluster
                .coordinator
                .pin_manifest_home(range, StocId(range.0 % config.num_stocs.max(1) as u32));
            let ltc_id = assignment.ltc_of(range).expect("every range was just assigned");
            let engine = cluster.build_range_engine(range, ltc_id, false)?;
            engine.set_owner_epoch(assignment.epoch);
            cluster.ltcs.read()[&ltc_id].add_range(engine);
        }

        if config.supervisor.enabled {
            *cluster.supervisor.lock() = Some(SupervisorHandle::spawn(&cluster));
        }

        Ok(cluster)
    }

    fn start_stoc_on(&self, stoc: StocId, node: NodeId) -> Result<()> {
        let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(self.config.disk));
        let server = StocServer::start_with_io_parallelism(
            stoc,
            node,
            &self.fabric,
            self.directory.clone(),
            medium,
            self.config.stoc_storage_threads + self.config.stoc_compaction_threads,
            self.config.fabric.xchg_threads_per_node,
            self.config.stoc_io_parallelism,
        );
        self.coordinator.register_stoc(stoc, node);
        self.stoc_servers.lock().insert(stoc, server);
        Ok(())
    }

    fn build_range_engine(&self, range: RangeId, ltc: LtcId, recover: bool) -> Result<Arc<RangeEngine>> {
        let node = *self.ltc_nodes.read().get(&ltc).ok_or(Error::UnknownLtc(ltc))?;
        let endpoint = self.fabric.endpoint(node);
        let client = StocClient::new(endpoint, self.directory.clone())
            .with_io_parallelism(self.config.stoc_io_parallelism)
            .with_metrics(Arc::clone(&self.metrics));
        let range_config = self.config.range.clone();
        let logc = Arc::new(
            LogC::new(
                client.clone(),
                range_config.log_policy,
                range_config.memtable_size_bytes as u64 * 2,
            )
            .with_group_commit(
                self.config.group_commit_bytes,
                self.config.group_commit_max_records,
            )
            .with_metrics(Arc::clone(&self.metrics)),
        );
        // Co-locate the "local" StoC with the LTC's position for the
        // shared-nothing preset; harmless otherwise.
        let local_stoc = StocId(ltc.0 % self.config.num_stocs.max(1) as u32);
        let placer = Placer::new(
            client.clone(),
            range_config.placement,
            range_config.availability,
            Some(local_stoc),
            (range.0 as u64 + 1) * 7919,
        );
        let manifest = Manifest::new(self.manifest_home(range), &format!("range-{}", range.0));
        let interval = self.partition.interval(range);
        // Read through the owning LTC's block cache.
        let block_cache = self.ltcs.read().get(&ltc).and_then(|l| l.block_cache().cloned());
        if recover {
            RangeEngine::recover(
                range,
                interval,
                range_config,
                client,
                logc,
                placer,
                manifest,
                block_cache,
                8,
            )
        } else {
            RangeEngine::new(
                range,
                interval,
                range_config,
                client,
                logc,
                placer,
                manifest,
                block_cache,
            )
        }
    }

    /// The StoC pinned as `range`'s MANIFEST home. Ranges are pinned at
    /// creation; the fallback (pin-on-first-use from the creation-time rule)
    /// only triggers for ranges that predate pinning.
    fn manifest_home(&self, range: RangeId) -> StocId {
        self.coordinator.manifest_home(range).unwrap_or_else(|| {
            self.coordinator
                .pin_manifest_home(range, StocId(range.0 % self.config.num_stocs.max(1) as u32))
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The keyspace partition used to route requests.
    pub fn partition(&self) -> &KeyspacePartition {
        &self.partition
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The fabric (for failure injection in tests and experiments).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Ids of the LTCs currently in the configuration.
    pub fn ltc_ids(&self) -> Vec<LtcId> {
        let mut ids: Vec<LtcId> = self.ltcs.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Ids of the StoCs currently in the configuration.
    pub fn stoc_ids(&self) -> Vec<StocId> {
        // The *active* configuration: draining StoCs (removed from placement
        // but still serving their existing blocks) are not listed.
        self.directory.placeable().as_ref().clone()
    }

    /// The node hosting `stoc` (failure injection in tests and experiments).
    pub fn stoc_node(&self, stoc: StocId) -> Result<NodeId> {
        self.directory.node_of(stoc)
    }

    /// The node hosting `ltc` (failure injection in tests and experiments).
    pub fn ltc_node(&self, ltc: LtcId) -> Result<NodeId> {
        self.ltc_nodes
            .read()
            .get(&ltc)
            .copied()
            .ok_or(Error::UnknownLtc(ltc))
    }

    /// The LTC object with `id`.
    pub fn ltc(&self, id: LtcId) -> Result<Arc<Ltc>> {
        self.ltcs.read().get(&id).cloned().ok_or(Error::UnknownLtc(id))
    }

    /// The StoC directory (shared with every client).
    pub(crate) fn stoc_directory(&self) -> &StocDirectory {
        &self.directory
    }

    /// Snapshot of the LTC → node mapping.
    pub(crate) fn ltc_node_map(&self) -> HashMap<LtcId, NodeId> {
        self.ltc_nodes.read().clone()
    }

    /// Route a key to the (range, LTC, epoch) triple serving it. The epoch
    /// is the configuration epoch the routing decision was made at; pass it
    /// to the LTC's `*_at` operations so a concurrent ownership flip is
    /// detected as [`Error::StaleConfig`] instead of silently hitting the
    /// wrong owner.
    pub fn route(&self, key: &[u8]) -> Result<(RangeId, Arc<Ltc>, u64)> {
        let range = self.partition.range_of_encoded(key);
        let (ltc, epoch) = self.route_range(range)?;
        Ok((range, ltc, epoch))
    }

    /// Route a range to the LTC serving it plus the routing epoch, without
    /// cloning the configuration (the per-operation hot path).
    pub fn route_range(&self, range: RangeId) -> Result<(Arc<Ltc>, u64)> {
        let (ltc_id, epoch) = self.coordinator.route_of(range);
        let ltc_id =
            ltc_id.ok_or_else(|| Error::Unavailable(format!("{range} is not assigned to any LTC")))?;
        Ok((self.ltc(ltc_id)?, epoch))
    }

    /// [`NovaCluster::route_range`] plus the index-catalog snapshot, read
    /// under the same coordinator lock as the epoch. The client's write path
    /// routes through this so the maintenance plan it executes is always
    /// consistent with the epoch its writes are validated at (the
    /// create-index catch-up fence rejects the write otherwise).
    pub fn route_range_with_catalog(
        &self,
        range: RangeId,
    ) -> Result<(Arc<Ltc>, u64, Arc<nova_index::IndexCatalog>)> {
        let (ltc_id, epoch, catalog) = self.coordinator.route_of_with_catalog(range);
        let ltc_id =
            ltc_id.ok_or_else(|| Error::Unavailable(format!("{range} is not assigned to any LTC")))?;
        Ok((self.ltc(ltc_id)?, epoch, catalog))
    }

    /// Per-LTC statistics, keyed by LTC id.
    pub fn ltc_stats(&self) -> HashMap<LtcId, LtcStats> {
        self.ltcs
            .read()
            .iter()
            .map(|(id, ltc)| (*id, ltc.stats()))
            .collect()
    }

    /// Per-StoC statistics (disk bytes, queue depth), keyed by StoC id.
    pub fn stoc_stats(&self) -> HashMap<StocId, StocStats> {
        let ltc_node = NodeId(0);
        let client = StocClient::new(self.fabric.endpoint(ltc_node), self.directory.clone());
        self.directory
            .all()
            .into_iter()
            .map(|s| (s, client.stats(s).unwrap_or_default()))
            .collect()
    }

    /// Per-LTC block-cache statistics, keyed by LTC id. LTCs whose cache is
    /// disabled are omitted.
    pub fn block_cache_stats(&self) -> HashMap<LtcId, nova_cache::CacheStats> {
        self.ltcs
            .read()
            .iter()
            .filter_map(|(id, ltc)| ltc.block_cache().map(|c| (*id, c.stats())))
            .collect()
    }

    /// Cluster-wide block-cache hit rate (0 when caching is disabled).
    pub fn block_cache_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for stats in self.block_cache_stats().values() {
            hits += stats.hits;
            misses += stats.misses;
        }
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Aggregate write-stall statistics across every range.
    pub fn total_stalls(&self) -> u64 {
        self.ltc_stats().values().map(|s| s.stalls).sum()
    }

    /// Queued + running background jobs (flushes, compactions) summed across
    /// every LTC — the backpressure signal the network front door sheds on
    /// (see [`nova_common::config::ServerConfig::shed_backlog_threshold`]).
    pub fn background_backlog(&self) -> u64 {
        self.ltcs
            .read()
            .values()
            .map(|ltc| ltc.background_backlog())
            .sum()
    }

    /// The cluster-wide metrics hub. Disabled (recording is a no-op) when
    /// the configuration sets [`nova_common::config::MetricsConfig::disabled`].
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// A point-in-time health report aggregating every layer's statistics:
    /// per-LTC op rates, stall time, cache hit rates and background backlog;
    /// per-StoC disk traffic, liveness and placement state (placeable vs
    /// draining); client operation latency percentiles; group-commit batch
    /// sizes; and the most recent slow operations with per-layer breakdown.
    pub fn health_report(&self) -> ClusterHealth {
        let assignment = self.coordinator.configuration();
        let cache_stats = self.block_cache_stats();
        let ltc_nodes = self.ltc_nodes.read().clone();

        let mut ltcs: Vec<LtcHealth> = self
            .ltcs
            .read()
            .iter()
            .map(|(id, ltc)| {
                let s = ltc.stats();
                LtcHealth {
                    id: *id,
                    node: ltc_nodes.get(id).copied().unwrap_or(NodeId(u32::MAX)),
                    ranges: s.ranges,
                    ops: s.writes + s.gets + s.scans,
                    stalls: s.stalls,
                    stall_nanos: s.stall_nanos,
                    cache_hit_rate: cache_stats.get(id).map(|c| {
                        let total = c.hits + c.misses;
                        if total == 0 {
                            0.0
                        } else {
                            c.hits as f64 / total as f64
                        }
                    }),
                    background_backlog: ltc.background_backlog(),
                    lease_valid: self.coordinator.lease_valid(LeaseHolder::Ltc(id.0)),
                }
            })
            .collect();
        ltcs.sort_by_key(|l| l.id);

        let stoc_stats = self.stoc_stats();
        let placeable: std::collections::HashSet<StocId> =
            self.directory.placeable().iter().copied().collect();
        let mut stocs: Vec<StocHealth> = self
            .directory
            .all()
            .into_iter()
            .map(|id| {
                let s = stoc_stats.get(&id).copied().unwrap_or_default();
                let node = self.directory.node_of(id).ok();
                let alive = node
                    .and_then(|n| self.fabric.node_stats(n))
                    .map(|f| f.alive)
                    .unwrap_or(false);
                StocHealth {
                    id,
                    node,
                    alive,
                    placeable: placeable.contains(&id),
                    lease_valid: self.coordinator.lease_valid(LeaseHolder::Stoc(id.0)),
                    queue_depth: s.queue_depth,
                    bytes_read: s.bytes_read,
                    bytes_written: s.bytes_written,
                    num_files: s.num_files,
                }
            })
            .collect();
        stocs.sort_by_key(|s| s.id);

        let op_latencies = OpKind::ALL
            .iter()
            .filter_map(|kind| OpLatency::from_snapshot(kind.name(), &self.metrics.op_snapshot(*kind)))
            .collect();

        ClusterHealth {
            epoch: assignment.epoch,
            scatter_width: self.config.range.scatter_width,
            availability: format!("{:?}", self.config.range.availability),
            log_policy: format!("{:?}", self.config.range.log_policy),
            ltcs,
            stocs,
            cache_hit_rate: self.block_cache_hit_rate(),
            op_latencies,
            group_commit_records: self.metrics.histogram("logc.group.records").snapshot(),
            group_commit_bytes: self.metrics.histogram("logc.group.bytes").snapshot(),
            slow_op_count: self.metrics.slow_op_count(),
            slow_ops: self.metrics.slow_ops(),
            detector: self.detector_states(),
            replication_debt: self.replication_debt(),
            selfheal: self.selfheal_stats(),
        }
    }

    /// Publish the component stats (the inputs of [`NovaCluster::health_report`])
    /// as gauges on the metrics registry and return a merged snapshot of
    /// everything: counters, gauges and latency histograms. This is the
    /// machine-readable twin of `health_report().summary()`.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let health = self.health_report();
        for l in &health.ltcs {
            let prefix = format!("ltc.{}", l.id.0);
            self.metrics
                .gauge(&format!("{prefix}.ranges"))
                .set(l.ranges as u64);
            self.metrics.gauge(&format!("{prefix}.ops")).set(l.ops);
            self.metrics.gauge(&format!("{prefix}.stalls")).set(l.stalls);
            self.metrics
                .gauge(&format!("{prefix}.stall_nanos"))
                .set(l.stall_nanos);
            self.metrics
                .gauge(&format!("{prefix}.backlog"))
                .set(l.background_backlog);
        }
        for s in &health.stocs {
            let prefix = format!("stoc.{}", s.id.0);
            self.metrics
                .gauge(&format!("{prefix}.queue_depth"))
                .set(s.queue_depth);
            self.metrics
                .gauge(&format!("{prefix}.bytes_read"))
                .set(s.bytes_read);
            self.metrics
                .gauge(&format!("{prefix}.bytes_written"))
                .set(s.bytes_written);
            self.metrics
                .gauge(&format!("{prefix}.num_files"))
                .set(s.num_files);
            self.metrics.gauge(&format!("{prefix}.alive")).set(s.alive as u64);
        }
        self.metrics
            .gauge("cache.hit_rate_bp")
            .set((health.cache_hit_rate * 10_000.0) as u64);
        // Self-healing and detector gauges, published from the health data
        // so they are current even when the supervisor thread is disabled
        // (an enabled supervisor also refreshes them every round).
        let debt = &health.replication_debt;
        self.metrics
            .gauge("selfheal.debt.under_replicated_tables")
            .set(debt.under_replicated_tables);
        self.metrics
            .gauge("selfheal.debt.fragment_replicas")
            .set(debt.missing_fragment_replicas);
        self.metrics
            .gauge("selfheal.debt.meta_replicas")
            .set(debt.missing_meta_replicas);
        self.metrics
            .gauge("selfheal.debt.log_replicas")
            .set(debt.missing_log_replicas);
        self.metrics.gauge("selfheal.debt.bytes").set(debt.missing_bytes);
        self.metrics
            .gauge("selfheal.debt.unreadable_pieces")
            .set(debt.unreadable_pieces);
        self.metrics
            .gauge("selfheal.debt.dirty_manifests")
            .set(debt.dirty_manifests);
        self.metrics
            .gauge("selfheal.failovers")
            .set(health.selfheal.failovers);
        self.metrics
            .gauge("selfheal.pending_failovers")
            .set(health.selfheal.pending_failovers);
        self.metrics
            .gauge("selfheal.repaired.fragments")
            .set(health.selfheal.repaired_fragments);
        self.metrics
            .gauge("selfheal.repaired.bytes")
            .set(health.selfheal.repaired_bytes);
        for s in &health.detector {
            self.metrics
                .gauge(&format!("detector.node.{}.phi_milli", s.node.0))
                .set((s.phi * 1000.0) as u64);
            self.metrics
                .gauge(&format!("detector.node.{}.last_heartbeat_age_micros", s.node.0))
                .set(s.last_heartbeat_age.as_micros() as u64);
        }
        self.metrics.snapshot()
    }

    /// Flush every range on every LTC (tests, graceful shutdown).
    pub fn flush_all(&self) -> Result<()> {
        let ltcs: Vec<Arc<Ltc>> = self.ltcs.read().values().cloned().collect();
        for ltc in ltcs {
            ltc.flush_all()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Secondary indexes
    // ------------------------------------------------------------------

    /// Create an ordered secondary index over the value bytes selected by
    /// `projection` and build it online. Returns the index id once the
    /// backfill completes and the index is `Active`.
    ///
    /// The build is a three-step protocol that loses no writes:
    ///
    /// 1. **Register** — the catalog gains the index in `Backfilling` state
    ///    and the configuration epoch is bumped. From the epoch's install,
    ///    every write routed with a fresh configuration plans maintenance
    ///    for the new index.
    /// 2. **Fence** — every range engine's owner epoch is raised to the
    ///    registration epoch with a write barrier (under the elasticity
    ///    mutex, so no migration interleaves). Writers still running with a
    ///    pre-registration plan have either completed — their records are
    ///    visible to the backfill scan below — or are rejected with the
    ///    retriable `StaleConfig` and re-plan against the new catalog.
    /// 3. **Backfill** — one streaming scan of the base keyspace inserts an
    ///    entry per indexable record, then the index flips to `Active`.
    ///
    /// Concurrent updates during the backfill are already maintained by the
    /// fence contract; the scan may race an update and re-insert an entry
    /// for a just-overwritten value, which is why point reads through the
    /// index validate the current value (see
    /// [`crate::NovaClient::index_lookup_rows`]).
    pub fn create_index(self: &Arc<Self>, name: &str, projection: ValueProjection) -> Result<u32> {
        let id = {
            let _serial = self.elasticity_mutex.lock();
            let (id, fence) = self.coordinator.register_index(name, projection)?;
            if let Err(e) = self.fence_all_ranges(fence) {
                let _ = self.coordinator.drop_index(id);
                return Err(e);
            }
            id
        };
        // The elasticity mutex is released for the backfill: a long build
        // must not block migrations, and the backfill's writes go through
        // the ordinary retrying client so an interleaved migration only
        // costs a re-routed chunk.
        match self.backfill_index(id, projection) {
            Ok(()) => {
                self.coordinator.set_index_state(id, IndexState::Active)?;
                Ok(id)
            }
            Err(e) => {
                // Roll back: unregister, then sweep any entries the partial
                // backfill (or concurrent maintenance) already wrote.
                let _ = self.coordinator.drop_index(id);
                let _ = self.purge_index_entries(id);
                Err(e)
            }
        }
    }

    /// Drop a secondary index: remove it from the catalog, fence every
    /// range engine on the removal epoch (an in-flight writer planned
    /// against the old catalog either completed — its entries are swept
    /// below — or is rejected and re-plans without the index), then delete
    /// the index's entries.
    pub fn drop_index(self: &Arc<Self>, name: &str) -> Result<()> {
        let id = {
            let _serial = self.elasticity_mutex.lock();
            let catalog = self.coordinator.index_catalog();
            let spec = catalog
                .find(name)
                .ok_or_else(|| Error::IndexNotFound(name.to_string()))?;
            let fence = self.coordinator.drop_index(spec.id)?;
            self.fence_all_ranges(fence)?;
            spec.id
        };
        self.purge_index_entries(id)
    }

    /// The current index-catalog snapshot.
    pub fn index_catalog(&self) -> Arc<nova_index::IndexCatalog> {
        self.coordinator.index_catalog()
    }

    /// Raise every range engine's owner epoch to `epoch` with a write
    /// barrier (the catch-up fence of [`NovaCluster::create_index`] /
    /// [`NovaCluster::drop_index`]). Caller holds the elasticity mutex.
    fn fence_all_ranges(&self, epoch: u64) -> Result<()> {
        let ltcs: Vec<Arc<Ltc>> = self.ltcs.read().values().cloned().collect();
        for ltc in ltcs {
            for range in ltc.range_ids() {
                if let Ok(engine) = ltc.range(range) {
                    engine.fence_epoch(epoch)?;
                }
            }
        }
        Ok(())
    }

    /// Stream the base keyspace and insert one index entry per indexable
    /// record. Entry keys are ordinary (non-decimal) LSM keys, so they route
    /// to the last range and ride the normal epoch-validated write path.
    fn backfill_index(self: &Arc<Self>, id: u32, projection: ValueProjection) -> Result<()> {
        use nova_common::keyspace::encode_key;
        let client = crate::NovaClient::new(Arc::clone(self));
        let cursor = client.scan_range(
            &encode_key(0),
            None,
            nova_common::ReadOptions::no_fill().with_chunk(256),
        );
        let mut batch: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for entry in cursor {
            let entry = entry?;
            // Index entries sort after every decimal primary key; the first
            // non-decimal key marks the end of the base keyspace.
            if !entry.key.first().is_some_and(u8::is_ascii_digit) {
                break;
            }
            if let Some(sec) = projection.project(&entry.value) {
                batch.push((nova_index::encode_index_key(id, sec, &entry.key), Vec::new()));
            }
            if batch.len() >= 512 {
                client.put_batch(&batch)?;
                batch.clear();
            }
        }
        client.put_batch(&batch)
    }

    /// Delete every entry of index `id` (drop cleanup / aborted backfill).
    fn purge_index_entries(self: &Arc<Self>, id: u32) -> Result<()> {
        let client = crate::NovaClient::new(Arc::clone(self));
        let start = nova_index::index_prefix(id);
        let end = nova_index::index_upper_bound(id);
        loop {
            let keys: Vec<Vec<u8>> = client
                .scan_range(
                    &start,
                    Some(&end),
                    nova_common::ReadOptions::no_fill().with_chunk(512),
                )
                .take(512)
                .map(|e| e.map(|entry| entry.key.to_vec()))
                .collect::<Result<_>>()?;
            if keys.is_empty() {
                return Ok(());
            }
            client.delete_index_entries(&keys)?;
        }
    }

    // ------------------------------------------------------------------
    // Elasticity (Section 9)
    // ------------------------------------------------------------------

    /// Add a StoC on a fresh node. New SSTables are assigned to it
    /// immediately by power-of-d placement.
    pub fn add_stoc(&self) -> Result<StocId> {
        let stoc = StocId(self.next_stoc_id.fetch_add(1, Ordering::SeqCst));
        let node = self.fabric.add_node();
        self.start_stoc_on(stoc, node)?;
        Ok(stoc)
    }

    /// Remove a StoC from the placement configuration. Existing SSTable
    /// fragments on it remain readable (the paper keeps such replicas around
    /// because disk space is cheap), so the directory entry stays resolvable
    /// in a draining state; new SSTables simply stop being placed there.
    pub fn remove_stoc(&self, stoc: StocId) -> Result<()> {
        let placeable = self.directory.num_placeable();
        if placeable <= 1 {
            return Err(Error::InvalidArgument("cannot remove the last StoC".into()));
        }
        if self.config.range.scatter_width > placeable - 1 {
            return Err(Error::InvalidArgument(format!(
                "removing {stoc} would leave fewer StoCs than the scatter width ρ={}",
                self.config.range.scatter_width
            )));
        }
        self.directory.set_placeable(stoc, false);
        self.coordinator.deregister_stoc(stoc);
        Ok(())
    }

    /// Add an LTC on a fresh node. It starts with no ranges; migrate ranges
    /// to it with [`NovaCluster::migrate_range`] or
    /// [`NovaCluster::rebalance`].
    pub fn add_ltc(&self) -> Result<LtcId> {
        let ltc_id = LtcId(self.next_ltc_id.fetch_add(1, Ordering::SeqCst));
        let node = self.fabric.add_node();
        let ltc = Ltc::with_observability(
            ltc_id,
            node,
            BlockCache::from_config_with_metrics(&self.config.block_cache, Arc::clone(&self.metrics)),
            Arc::clone(&self.metrics),
        );
        self.ltcs.write().insert(ltc_id, ltc);
        self.ltc_nodes.write().insert(ltc_id, node);
        self.coordinator.register_ltc(ltc_id, node);
        Ok(ltc_id)
    }

    /// Remove an LTC after migrating its ranges elsewhere. Fails if it still
    /// serves ranges.
    pub fn remove_ltc(&self, ltc_id: LtcId) -> Result<()> {
        let ltc = self.ltc(ltc_id)?;
        if ltc.num_ranges() > 0 {
            return Err(Error::InvalidArgument(format!(
                "{ltc_id} still serves {} ranges; migrate them first",
                ltc.num_ranges()
            )));
        }
        ltc.shutdown();
        self.ltcs.write().remove(&ltc_id);
        self.ltc_nodes.write().remove(&ltc_id);
        self.coordinator.deregister_ltc(ltc_id);
        Ok(())
    }

    /// Migrate one range from its current LTC to `destination`
    /// (Sections 8.2.6 and 9). SSTables stay on the StoCs; only metadata and
    /// memtable state move.
    ///
    /// The migration is a two-phase, epoch-guarded protocol that is safe to
    /// run under traffic:
    ///
    /// 1. **Prepare** — the source range is frozen (writes bounce with the
    ///    retriable [`Error::StaleConfig`]; reads keep being served) and a
    ///    consistent snapshot is cut, from which the destination engine is
    ///    rebuilt.
    /// 2. **Commit** — a single atomic ownership flip: the destination is
    ///    attached, the coordinator bumps the epoch, and clients that refresh
    ///    observe the new owner. The source engine is then detached and torn
    ///    down.
    /// 3. **Abort** — any failure after the freeze unfreezes the source,
    ///    drops the half-built destination engine and leaves the coordinator
    ///    configuration untouched, so the source keeps serving reads *and*
    ///    writes as if the migration had never been attempted.
    pub fn migrate_range(&self, range: RangeId, destination: LtcId) -> Result<()> {
        let _serial = self.elasticity_mutex.lock();
        let assignment = self.coordinator.configuration();
        let source_id = assignment.ltc_of(range).ok_or(Error::WrongRange(range))?;
        if source_id == destination {
            return Ok(());
        }
        let source = self.ltc(source_id)?;
        let dest = self.ltc(destination)?;
        let engine = source.range(range)?;

        // Phase 1: prepare. Freeze the source and cut the snapshot; rejected
        // writers are told to refresh to at least the epoch the commit below
        // will create.
        let snapshot = engine.export_for_migration(assignment.epoch + 1)?;
        // The exported file set: anything the source's version accrues
        // beyond it (a flush racing the freeze) is unreferenced by any
        // persisted MANIFEST and must be purged at commit.
        let exported_files: std::collections::HashSet<nova_common::FileNumber> = snapshot
            .manifest
            .version
            .all_tables()
            .iter()
            .map(|t| t.file_number)
            .collect();
        let new_engine = match self.build_migrated_engine(snapshot, range, destination, &dest) {
            Ok(e) => e,
            Err(e) => {
                // Abort: the destination build failed; the source resumes
                // serving writes and the configuration is untouched.
                // Manifest persistence was suppressed during the freeze, so
                // best-effort re-sync anything a flush completed meanwhile.
                engine.unfreeze();
                if let Err(sync) = engine.sync_manifest() {
                    eprintln!("nova-lsm: manifest re-sync after aborted migration of {range} failed: {sync}");
                }
                return Err(e);
            }
        };

        // Phase 2: commit. Attach the destination *before* the epoch flip so
        // a refreshing client never observes an owner with no engine, then
        // flip ownership atomically at the coordinator.
        dest.add_range(Arc::clone(&new_engine));
        let plan = nova_coordinator::MigrationPlan {
            range,
            from: source_id,
            to: destination,
        };
        // Fence reads on the source just before the flip: a reader that
        // resolved the source engine under the old configuration must not be
        // served data that misses the new owner's writes. Until the commit
        // lands these readers see the retriable StaleConfig and re-route.
        engine.retire();
        match self.coordinator.commit_migration(&plan) {
            Ok(epoch) => {
                new_engine.set_owner_epoch(epoch);
            }
            Err(e) => {
                // Abort: the configuration did not change, so the source is
                // still the owner. Drop the half-built destination and
                // resume serving from the source (unfreeze also clears the
                // read fence).
                dest.remove_range(range);
                new_engine.shutdown();
                engine.unfreeze();
                if let Err(sync) = engine.sync_manifest() {
                    eprintln!("nova-lsm: manifest re-sync after aborted migration of {range} failed: {sync}");
                }
                return Err(e);
            }
        }
        // The flip is visible; detach and tear down the retired source
        // engine (late readers keep bouncing off its read fence). Shutdown
        // joins the workers, after which any SSTable a flush installed past
        // the export snapshot is referenced by nothing — delete it from the
        // StoCs (its entries migrated through the memtable capture).
        if let Some(old) = source.remove_range(range) {
            old.shutdown();
            old.purge_tables_not_in(&exported_files);
        }
        Ok(())
    }

    /// Rebuild a migrating range on the destination LTC's node from its
    /// snapshot (the *prepare* half of [`NovaCluster::migrate_range`]).
    fn build_migrated_engine(
        &self,
        snapshot: nova_ltc::RangeSnapshot,
        range: RangeId,
        destination: LtcId,
        dest: &Arc<Ltc>,
    ) -> Result<Arc<RangeEngine>> {
        let node = *self
            .ltc_nodes
            .read()
            .get(&destination)
            .ok_or(Error::UnknownLtc(destination))?;
        let client = StocClient::new(self.fabric.endpoint(node), self.directory.clone())
            .with_io_parallelism(self.config.stoc_io_parallelism)
            .with_metrics(Arc::clone(&self.metrics));
        let range_config = self.config.range.clone();
        let logc = Arc::new(
            LogC::new(
                client.clone(),
                range_config.log_policy,
                range_config.memtable_size_bytes as u64 * 2,
            )
            .with_group_commit(
                self.config.group_commit_bytes,
                self.config.group_commit_max_records,
            )
            .with_metrics(Arc::clone(&self.metrics)),
        );
        let placer = Placer::new(
            client.clone(),
            range_config.placement,
            range_config.availability,
            Some(StocId(destination.0 % self.config.num_stocs.max(1) as u32)),
            (range.0 as u64 + 1) * 7919 + destination.0 as u64,
        );
        let manifest = Manifest::new(self.manifest_home(range), &format!("range-{}", range.0));
        RangeEngine::import_from_migration(
            snapshot,
            range_config,
            client,
            logc,
            placer,
            manifest,
            dest.block_cache().cloned(),
        )
    }

    /// Rebalance ranges across LTCs using the coordinator's load-balancing
    /// plan, driven by each LTC's observed operation counts *since the
    /// previous rebalance* (a lifetime-cumulative view would keep reacting
    /// to historical hotspots long after the load has shifted). Returns the
    /// number of ranges migrated.
    pub fn rebalance(&self) -> Result<usize> {
        let stats = self.ltc_stats();
        let totals: HashMap<LtcId, u64> = stats
            .iter()
            .map(|(id, s)| (*id, s.writes + s.gets + s.scans))
            .collect();
        let ltc_load: HashMap<LtcId, f64> = {
            let baseline = self.rebalance_baseline.lock();
            totals
                .iter()
                // Saturating: a migrated-away range loses its counters (the
                // destination engine starts fresh), so an LTC's total can
                // shrink between rebalances.
                .map(|(id, t)| {
                    (
                        *id,
                        t.saturating_sub(baseline.get(id).copied().unwrap_or(0)) as f64,
                    )
                })
                .collect()
        };
        // Per-range load: approximate by splitting each LTC's load across its
        // ranges weighted by range write counts (we only track per-LTC here,
        // so weight evenly).
        let mut range_load: HashMap<RangeId, f64> = HashMap::new();
        let assignment = self.coordinator.configuration();
        for (ltc_id, load) in &ltc_load {
            let ranges = assignment.ranges_of(*ltc_id);
            for r in &ranges {
                range_load.insert(*r, load / ranges.len().max(1) as f64);
            }
        }
        let plans = self.coordinator.plan_load_balancing(&ltc_load, &range_load, 0.2);
        let mut migrated = 0;
        let mut first_error = None;
        for plan in plans {
            match self.migrate_range(plan.range, plan.to) {
                Ok(()) => migrated += 1,
                Err(e) => {
                    first_error = Some(e);
                    break;
                }
            }
        }
        // Re-snapshot the baseline *after* the migrations — even when one
        // failed part-way: each completed migration reset the moved range's
        // counters, so a pre-migration (or skipped) snapshot would overstate
        // the donor's baseline and mask its load (saturating to zero) at the
        // next rebalance.
        let baseline: HashMap<LtcId, u64> = self
            .ltc_stats()
            .iter()
            .map(|(id, s)| (*id, s.writes + s.gets + s.scans))
            .collect();
        *self.rebalance_baseline.lock() = baseline;
        match first_error {
            None => Ok(migrated),
            Some(e) => Err(e),
        }
    }

    /// Simulate the failure of an LTC and recover its ranges on the surviving
    /// LTCs (Section 4.5): ranges are scattered across the survivors and each
    /// is rebuilt from its MANIFEST (resolved through the pinned
    /// manifest-home) and log records.
    /// Recovery is resumable: ranges whose rebuild fails (say their
    /// manifest-home StoC node is down) are skipped, the rest are recovered,
    /// and a second `fail_and_recover_ltc(failed)` call — valid even though
    /// the LTC itself is already gone — retries just the ranges still
    /// assigned to the dead LTC.
    pub fn fail_and_recover_ltc(&self, failed: LtcId) -> Result<usize> {
        let _serial = self.elasticity_mutex.lock();
        let plans = self.coordinator.plan_failover(failed);
        // Tear the failed LTC down if it is still around (on a resumed
        // recovery it is not). Its memory is gone: drop engines unflushed.
        if let Ok(ltc) = self.ltc(failed) {
            ltc.shutdown();
            let orphaned: Vec<RangeId> = ltc.range_ids();
            for r in &orphaned {
                ltc.remove_range(*r);
            }
            self.ltcs.write().remove(&failed);
            self.ltc_nodes.write().remove(&failed);
            self.coordinator.deregister_ltc(failed);
        }

        let mut recovered = 0;
        let mut failures: Vec<(RangeId, Error)> = Vec::new();
        for plan in plans {
            // The surviving destinations are already registered; re-calling
            // `register_ltc` here would pointlessly bump the epoch and
            // re-grant leases on every iteration. Only the range assignment
            // changes.
            let result = self.ltc(plan.to).and_then(|dest| {
                let engine = self.build_range_engine(plan.range, plan.to, true)?;
                // Attach before the epoch flip so a refreshing client never
                // observes an owner with no engine.
                dest.add_range(Arc::clone(&engine));
                let epoch = self.coordinator.assign_range(plan.range, plan.to)?;
                engine.set_owner_epoch(epoch);
                Ok(())
            });
            match result {
                Ok(()) => recovered += 1,
                // Keep going: one unrecoverable range must not strand the
                // rest on the dead LTC.
                Err(e) => failures.push((plan.range, e)),
            }
        }
        if failures.is_empty() {
            Ok(recovered)
        } else {
            Err(Error::Unavailable(format!(
                "recovered {recovered} ranges from {failed}, but {} could not be rebuilt \
                 (retry fail_and_recover_ltc once the fault clears): {failures:?}",
                failures.len()
            )))
        }
    }

    /// Record a heartbeat for every *live* component, renewing its lease.
    /// Each component's node is pinged through the fabric first; only nodes
    /// that answer get their lease renewed, and the failures are returned so
    /// the caller (normally the self-healing supervisor, on its cadence) can
    /// feed them to the failure detector instead of dropping them. Covers
    /// every *registered* StoC — including draining ones removed from
    /// placement but still serving their existing blocks — so a
    /// still-serving drained StoC's lease cannot silently expire.
    pub fn heartbeat_all(&self) -> Vec<(NodeId, Error)> {
        let mut failures = Vec::new();
        let ltc_nodes: Vec<(LtcId, NodeId)> = self.ltc_nodes.read().iter().map(|(l, n)| (*l, *n)).collect();
        for (ltc, node) in ltc_nodes {
            match self.fabric.ping(node) {
                Ok(()) => self.coordinator.heartbeat(LeaseHolder::Ltc(ltc.0)),
                Err(e) => failures.push((node, e)),
            }
        }
        for stoc in self.directory.all() {
            let node = match self.directory.node_of(stoc) {
                Ok(n) => n,
                Err(e) => {
                    failures.push((NodeId(u32::MAX), e));
                    continue;
                }
            };
            match self.fabric.ping(node) {
                Ok(()) => self.coordinator.heartbeat(LeaseHolder::Stoc(stoc.0)),
                Err(e) => failures.push((node, e)),
            }
        }
        failures
    }

    /// Shut down every component (stopping the supervisor thread first, so
    /// no supervision round races the teardown).
    pub fn shutdown(&self) {
        if let Some(mut handle) = self.supervisor.lock().take() {
            handle.stop();
        }
        let ltcs: Vec<Arc<Ltc>> = self.ltcs.read().values().cloned().collect();
        for ltc in ltcs {
            ltc.shutdown();
        }
        let mut servers = self.stoc_servers.lock();
        for (_, server) in servers.drain() {
            server.stop();
        }
    }
}

impl Drop for NovaCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
