//! Cluster-wide health and statistics reporting.
//!
//! [`ClusterHealth`] is a point-in-time aggregation of every signal the
//! cluster exposes: per-LTC operation counts, stall time and compaction
//! backlog, per-StoC disk traffic and placement state (placeable vs
//! draining), block-cache hit rates, group-commit batch sizes, client
//! operation latency percentiles, and the slowest recent operations with
//! their per-layer timing breakdown. It is produced by
//! [`crate::NovaCluster::health_report`] and is cheap enough to poll: every
//! input is a lock-free counter or histogram snapshot.

use crate::detector::NodeSuspicion;
use crate::supervisor::SelfHealStats;
use nova_common::{LtcId, NodeId, StocId};
use nova_coordinator::DebtSummary;
use nova_obs::{HistogramSnapshot, SlowOp};

/// Latency summary for one client operation kind, in microseconds.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Operation name (`get`, `put`, `scan`, ...).
    pub op: String,
    /// Operations recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Median latency in microseconds.
    pub p50_micros: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_micros: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_micros: u64,
    /// 99.9th-percentile latency in microseconds.
    pub p999_micros: u64,
    /// Maximum latency in microseconds.
    pub max_micros: u64,
}

impl OpLatency {
    /// Build a summary row from a histogram snapshot; `None` when the
    /// histogram recorded nothing.
    pub fn from_snapshot(op: &str, snap: &HistogramSnapshot) -> Option<OpLatency> {
        if snap.is_empty() {
            return None;
        }
        Some(OpLatency {
            op: op.to_string(),
            count: snap.count(),
            mean_micros: snap.mean(),
            p50_micros: snap.p50(),
            p90_micros: snap.p90(),
            p99_micros: snap.p99(),
            p999_micros: snap.p999(),
            max_micros: snap.max(),
        })
    }
}

/// Health of one LTC.
#[derive(Debug, Clone)]
pub struct LtcHealth {
    /// The LTC.
    pub id: LtcId,
    /// The node hosting it.
    pub node: NodeId,
    /// Ranges it currently serves.
    pub ranges: usize,
    /// Lifetime operations served (writes + gets + scans).
    pub ops: u64,
    /// Write stalls observed.
    pub stalls: u64,
    /// Nanoseconds spent stalled.
    pub stall_nanos: u64,
    /// Block-cache hit rate, `None` when caching is disabled.
    pub cache_hit_rate: Option<f64>,
    /// Queued + running background jobs (flushes, compactions) across its
    /// ranges — the compaction/migration backlog signal.
    pub background_backlog: u64,
    /// Whether the coordinator still considers its lease valid.
    pub lease_valid: bool,
}

/// Health of one StoC.
#[derive(Debug, Clone)]
pub struct StocHealth {
    /// The StoC.
    pub id: StocId,
    /// The node hosting it.
    pub node: Option<NodeId>,
    /// False once the node has been failed via the fabric.
    pub alive: bool,
    /// True when new SSTables may be placed here; false while draining
    /// (removed from placement but still serving its existing blocks).
    pub placeable: bool,
    /// Whether the coordinator still considers its lease valid.
    pub lease_valid: bool,
    /// Requests queued or in service at the disk.
    pub queue_depth: u64,
    /// Bytes read from the medium.
    pub bytes_read: u64,
    /// Bytes written to the medium.
    pub bytes_written: u64,
    /// Persistent files stored.
    pub num_files: u64,
}

/// A point-in-time health report for the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Configuration epoch the report was taken at.
    pub epoch: u64,
    /// Replication / placement state: ρ, the SSTable scatter width.
    pub scatter_width: usize,
    /// Availability policy for SSTable fragments (rendered).
    pub availability: String,
    /// Logging policy (rendered) — covers the log-replication factor.
    pub log_policy: String,
    /// Per-LTC health, ordered by id.
    pub ltcs: Vec<LtcHealth>,
    /// Per-StoC health (including draining StoCs), ordered by id.
    pub stocs: Vec<StocHealth>,
    /// Cluster-wide block-cache hit rate (0 when caching is disabled).
    pub cache_hit_rate: f64,
    /// Client operation latency percentiles, one row per op kind observed.
    pub op_latencies: Vec<OpLatency>,
    /// Group-commit batch sizes in records per group.
    pub group_commit_records: HistogramSnapshot,
    /// Group-commit batch sizes in bytes per group.
    pub group_commit_bytes: HistogramSnapshot,
    /// Operations that crossed the slow-op threshold, lifetime count.
    pub slow_op_count: u64,
    /// Most recent slow operations (oldest first) with per-layer breakdown.
    pub slow_ops: Vec<SlowOp>,
    /// Per-node failure-detector state (suspicion phi, last-heartbeat age),
    /// ordered by node; empty until the first supervision round.
    pub detector: Vec<NodeSuspicion>,
    /// Replication debt: replicas below the availability target on healthy
    /// StoCs.
    pub replication_debt: DebtSummary,
    /// Lifetime self-healing counters (failovers, repairs, deferred copies).
    pub selfheal: SelfHealStats,
}

impl ClusterHealth {
    /// Total operations served across LTCs.
    pub fn total_ops(&self) -> u64 {
        self.ltcs.iter().map(|l| l.ops).sum()
    }

    /// Total write stalls across LTCs.
    pub fn total_stalls(&self) -> u64 {
        self.ltcs.iter().map(|l| l.stalls).sum()
    }

    /// Total background backlog (queued + running flushes/compactions).
    pub fn total_backlog(&self) -> u64 {
        self.ltcs.iter().map(|l| l.background_backlog).sum()
    }

    /// StoCs currently accepting new SSTable placements.
    pub fn placeable_stocs(&self) -> usize {
        self.stocs.iter().filter(|s| s.placeable).count()
    }

    /// StoCs draining: removed from placement but still serving blocks.
    pub fn draining_stocs(&self) -> usize {
        self.stocs.iter().filter(|s| !s.placeable).count()
    }

    /// Mean group-commit batch size in records (0 with no groups cut).
    pub fn mean_group_records(&self) -> f64 {
        self.group_commit_records.mean()
    }

    /// A multi-line human-readable rendering.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster health @ epoch {}: {} LTCs, {} StoCs ({} draining), ρ={}, log={}\n",
            self.epoch,
            self.ltcs.len(),
            self.stocs.len(),
            self.draining_stocs(),
            self.scatter_width,
            self.log_policy,
        ));
        out.push_str(&format!(
            "  ops={} stalls={} backlog={} cache_hit_rate={:.1}% slow_ops={}\n",
            self.total_ops(),
            self.total_stalls(),
            self.total_backlog(),
            self.cache_hit_rate * 100.0,
            self.slow_op_count,
        ));
        if !self.group_commit_records.is_empty() {
            out.push_str(&format!(
                "  group_commit: {} groups, mean {:.1} records / {:.0} bytes per group\n",
                self.group_commit_records.count(),
                self.group_commit_records.mean(),
                self.group_commit_bytes.mean(),
            ));
        }
        for op in &self.op_latencies {
            out.push_str(&format!(
                "  op {:<10} n={:<8} p50={}us p90={}us p99={}us p999={}us max={}us\n",
                op.op, op.count, op.p50_micros, op.p90_micros, op.p99_micros, op.p999_micros, op.max_micros,
            ));
        }
        for l in &self.ltcs {
            out.push_str(&format!(
                "  {} on {}: ranges={} ops={} stalls={} backlog={} cache_hit={} lease={}\n",
                l.id,
                l.node,
                l.ranges,
                l.ops,
                l.stalls,
                l.background_backlog,
                l.cache_hit_rate
                    .map(|r| format!("{:.1}%", r * 100.0))
                    .unwrap_or_else(|| "n/a".into()),
                if l.lease_valid { "valid" } else { "EXPIRED" },
            ));
        }
        for s in &self.stocs {
            out.push_str(&format!(
                "  {} on {}: {}{} qd={} read={}B written={}B files={} lease={}\n",
                s.id,
                s.node.map(|n| n.to_string()).unwrap_or_else(|| "?".into()),
                if s.alive { "alive" } else { "DOWN" },
                if s.placeable { "" } else { " (draining)" },
                s.queue_depth,
                s.bytes_read,
                s.bytes_written,
                s.num_files,
                if s.lease_valid { "valid" } else { "EXPIRED" },
            ));
        }
        if !self.replication_debt.is_zero() || self.selfheal.ticks > 0 {
            let d = &self.replication_debt;
            out.push_str(&format!(
                "  selfheal: failovers={} pending={} drains={} rejoins={} \
                 repaired={}f/{}m ({}B) deferred={}\n",
                self.selfheal.failovers,
                self.selfheal.pending_failovers,
                self.selfheal.stoc_drains,
                self.selfheal.stoc_rejoins,
                self.selfheal.repaired_fragments,
                self.selfheal.repaired_meta_blocks,
                self.selfheal.repaired_bytes,
                self.selfheal.deferred_repairs,
            ));
            out.push_str(&format!(
                "  debt: tables={} fragments={} metas={} logs={} bytes={} unreadable={} dirty-manifests={}\n",
                d.under_replicated_tables,
                d.missing_fragment_replicas,
                d.missing_meta_replicas,
                d.missing_log_replicas,
                d.missing_bytes,
                d.unreadable_pieces,
                d.dirty_manifests,
            ));
        }
        for s in &self.detector {
            out.push_str(&format!(
                "  detect {}: phi={:.2} age={}us strikes={}{}\n",
                s.node,
                s.phi,
                s.last_heartbeat_age.as_micros(),
                s.strikes,
                if s.confirmed { " CONFIRMED-DOWN" } else { "" },
            ));
        }
        for op in &self.slow_ops {
            out.push_str(&format!("  slow: {}\n", op.summary()));
        }
        out
    }

    /// Serialize to a flat JSON object (hand-built, no serde dependency on
    /// the report types).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"epoch\":{}", self.epoch));
        out.push_str(&format!(",\"num_ltcs\":{}", self.ltcs.len()));
        out.push_str(&format!(",\"num_stocs\":{}", self.stocs.len()));
        out.push_str(&format!(",\"draining_stocs\":{}", self.draining_stocs()));
        out.push_str(&format!(",\"scatter_width\":{}", self.scatter_width));
        out.push_str(&format!(
            ",\"log_policy\":\"{}\"",
            self.log_policy.replace('"', "'")
        ));
        out.push_str(&format!(",\"total_ops\":{}", self.total_ops()));
        out.push_str(&format!(",\"total_stalls\":{}", self.total_stalls()));
        out.push_str(&format!(",\"total_backlog\":{}", self.total_backlog()));
        out.push_str(&format!(",\"cache_hit_rate\":{:.4}", self.cache_hit_rate));
        out.push_str(&format!(",\"slow_op_count\":{}", self.slow_op_count));
        out.push_str(&format!(
            ",\"mean_group_records\":{:.2}",
            self.mean_group_records()
        ));
        out.push_str(",\"ops\":[");
        for (i, op) in self.op_latencies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":\"{}\",\"count\":{},\"mean_micros\":{:.1},\"p50_micros\":{},\
                 \"p90_micros\":{},\"p99_micros\":{},\"p999_micros\":{},\"max_micros\":{}}}",
                op.op,
                op.count,
                op.mean_micros,
                op.p50_micros,
                op.p90_micros,
                op.p99_micros,
                op.p999_micros,
                op.max_micros,
            ));
        }
        out.push_str("],\"ltcs\":[");
        for (i, l) in self.ltcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"ranges\":{},\"ops\":{},\"stalls\":{},\"backlog\":{},\"lease_valid\":{}}}",
                l.id.0, l.ranges, l.ops, l.stalls, l.background_backlog, l.lease_valid,
            ));
        }
        out.push_str("],\"stocs\":[");
        for (i, s) in self.stocs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"alive\":{},\"placeable\":{},\"queue_depth\":{},\"num_files\":{},\
                 \"lease_valid\":{}}}",
                s.id.0, s.alive, s.placeable, s.queue_depth, s.num_files, s.lease_valid,
            ));
        }
        out.push_str("],\"detector\":[");
        for (i, s) in self.detector.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"phi\":{:.3},\"last_heartbeat_age_micros\":{},\"strikes\":{},\
                 \"confirmed\":{}}}",
                s.node.0,
                s.phi,
                s.last_heartbeat_age.as_micros(),
                s.strikes,
                s.confirmed,
            ));
        }
        let d = &self.replication_debt;
        out.push_str(&format!(
            "],\"replication_debt\":{{\"under_replicated_tables\":{},\"missing_fragment_replicas\":{},\
             \"missing_meta_replicas\":{},\"missing_log_replicas\":{},\"missing_bytes\":{},\
             \"unreadable_pieces\":{},\"dirty_manifests\":{}}}",
            d.under_replicated_tables,
            d.missing_fragment_replicas,
            d.missing_meta_replicas,
            d.missing_log_replicas,
            d.missing_bytes,
            d.unreadable_pieces,
            d.dirty_manifests,
        ));
        let sh = &self.selfheal;
        out.push_str(&format!(
            ",\"selfheal\":{{\"ticks\":{},\"failovers\":{},\"pending_failovers\":{},\"stoc_drains\":{},\
             \"stoc_rejoins\":{},\"repaired_fragments\":{},\"repaired_meta_blocks\":{},\
             \"repaired_bytes\":{},\"deferred_repairs\":{},\"failed_repairs\":{},\
             \"last_time_to_detect_micros\":{},\"last_time_to_recover_micros\":{}}}",
            sh.ticks,
            sh.failovers,
            sh.pending_failovers,
            sh.stoc_drains,
            sh.stoc_rejoins,
            sh.repaired_fragments,
            sh.repaired_meta_blocks,
            sh.repaired_bytes,
            sh.deferred_repairs,
            sh.failed_repairs,
            sh.last_time_to_detect_micros,
            sh.last_time_to_recover_micros,
        ));
        out.push('}');
        out
    }
}
