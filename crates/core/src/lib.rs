//! # nova-lsm
//!
//! A Rust reproduction of **Nova-LSM: A Distributed, Component-based LSM-tree
//! Key-value Store** (Huang & Ghandeharizadeh, SIGMOD 2021).
//!
//! Nova-LSM disaggregates a monolithic LSM-tree store into three component
//! types connected by a fast fabric:
//!
//! * **LTC** (LSM-tree Component) — serves application ranges, buffers writes
//!   in per-Drange memtables, maintains lookup/range indexes and coordinates
//!   compaction ([`nova_ltc`]).
//! * **LogC** (Logging Component) — replicates or persists log records at
//!   StoCs using one-sided writes ([`nova_logc`]).
//! * **StoC** (Storage Component) — stores variable-sized blocks, exposes its
//!   disk queue for power-of-d placement and executes offloaded compactions
//!   ([`nova_stoc`]).
//!
//! This crate assembles those components into a runnable cluster
//! ([`NovaCluster`]), provides the client API ([`NovaClient`]), deployment
//! presets matching the paper's shared-disk / shared-nothing configurations
//! ([`presets`]), and the analytical availability model behind Table 2
//! ([`mttf`]).
//!
//! ## Quickstart
//!
//! ```
//! use nova_lsm::{presets, NovaClient, NovaCluster};
//!
//! // 1 LTC, 3 StoCs, SSTables scattered across 2 StoCs with power-of-d.
//! let mut config = presets::test_cluster(1, 3, 10_000);
//! config.range.scatter_width = 2;
//! let cluster = NovaCluster::start(config).unwrap();
//! let client = NovaClient::new(cluster.clone());
//!
//! client.put(b"00000000000000000042", b"hello nova").unwrap();
//! let value = client.get(b"00000000000000000042").unwrap().expect("present");
//! assert_eq!(&value[..], b"hello nova");
//! assert_eq!(client.get(b"00000000000000000041").unwrap(), None);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod cluster;
pub mod detector;
pub mod health;
pub mod mttf;
pub mod presets;
pub mod supervisor;

pub use client::{IndexScanCursor, NovaClient, ScanCursor};
pub use cluster::NovaCluster;
pub use detector::{FailureDetector, NodeSuspicion};
pub use health::{ClusterHealth, LtcHealth, OpLatency, StocHealth};
pub use mttf::{MttfModel, MttfRow};
pub use nova_common::{ReadOptions, WriteOptions};
pub use nova_coordinator::DebtSummary;
pub use nova_index::{IndexEntry, IndexState, ValueProjection};
pub use supervisor::{SelfHealStats, TickReport, TokenBucket};

// Re-export the component crates so downstream users need a single
// dependency.
pub use nova_baseline as baseline;
pub use nova_cache as cache;
pub use nova_common as common;
pub use nova_coordinator as coordinator;
pub use nova_fabric as fabric;
pub use nova_index as index;
pub use nova_logc as logc;
pub use nova_ltc as ltc;
pub use nova_memtable as memtable;
pub use nova_obs as obs;
pub use nova_sstable as sstable;
pub use nova_stoc as stoc;
