//! The self-healing supervisor: automatic failover and budgeted background
//! re-replication.
//!
//! The paper's component design (replicated log records, fragment replicas
//! and parity) makes node failures survivable, but recovery in this repo was
//! operator-driven: someone had to notice and call
//! [`NovaCluster::fail_and_recover_ltc`]. The supervisor closes that loop.
//! A background thread (spawned by [`NovaCluster::start`] when
//! `config.supervisor.enabled` is set) runs [`NovaCluster::self_heal_tick`]
//! on the heartbeat cadence; each tick is one synchronous supervision round:
//!
//! 1. **Heartbeat** every component node (ping-gated lease renewal via
//!    [`NovaCluster::heartbeat_all`]); ping failures and expired leases feed
//!    the [`FailureDetector`] as strikes, successes as heartbeats.
//! 2. **Confirm** failures through the detector's adaptive phi windows.
//! 3. A confirmed **StoC** is auto-drained (removed from placement, its
//!    blocks stay addressable for degraded reads) and every range rotates
//!    its memtables so open log files stop referencing the dead StoC. When
//!    its node comes back, an *auto*-drained StoC rejoins placement —
//!    operator-drained StoCs ([`NovaCluster::remove_stoc`]) stay out.
//! 4. A confirmed **LTC** triggers the existing epoch-guarded
//!    [`NovaCluster::fail_and_recover_ltc`] (serialized under the elasticity
//!    mutex). Failover is resumable: ranges that cannot be rebuilt yet stay
//!    pending and are retried every tick until the fault clears.
//! 5. **Replication debt** — fragment/metadata replicas below the
//!    availability target on healthy StoCs — is scanned
//!    ([`nova_coordinator::debt`]) and repaired by copying pieces onto
//!    placeable StoCs ([`nova_stoc::replication`]) under a token-bucket
//!    bytes/sec budget so healing never starves foreground traffic.
//!    Deferred repairs are retried next tick.
//!
//! Everything the supervisor does is also available synchronously through
//! `self_heal_tick`, so tests drive healing deterministically with the
//! background thread disabled, and operators can still intervene manually.

use crate::cluster::NovaCluster;
use crate::detector::{FailureDetector, NodeSuspicion};
use nova_common::clock::ClockRef;
use nova_common::config::SupervisorConfig;
use nova_common::{LtcId, NodeId, StocId};
use nova_coordinator::{choose_repair_targets, table_debt, DebtSummary, LeaseHolder, StocView};
use nova_stoc::{copy_fragment, copy_meta_block, with_fragment_replica, with_meta_replica, StocClient};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// A token bucket metering re-replication traffic in bytes per second.
///
/// The bucket holds at most one second of budget. A piece larger than the
/// full budget is still admitted when the bucket is full — the balance goes
/// negative and subsequent refills pay the debt — so the long-run rate stays
/// at the configured budget without wedging on a single oversized fragment.
/// A budget of 0 disables throttling.
pub struct TokenBucket {
    clock: ClockRef,
    bytes_per_sec: u64,
    tokens: f64,
    last_nanos: u64,
}

impl TokenBucket {
    /// A bucket refilling at `bytes_per_sec` (0 = unthrottled), starting
    /// full.
    pub fn new(clock: ClockRef, bytes_per_sec: u64) -> Self {
        let last_nanos = clock.now_nanos();
        TokenBucket {
            clock,
            bytes_per_sec,
            tokens: bytes_per_sec as f64,
            last_nanos,
        }
    }

    /// Try to withdraw `bytes`; false means the caller should defer the
    /// transfer to a later round.
    pub fn try_consume(&mut self, bytes: u64) -> bool {
        if self.bytes_per_sec == 0 {
            return true;
        }
        let capacity = self.bytes_per_sec as f64;
        let now = self.clock.now_nanos();
        let elapsed_secs = now.saturating_sub(self.last_nanos) as f64 / 1e9;
        self.last_nanos = now;
        self.tokens = (self.tokens + elapsed_secs * capacity).min(capacity);
        if self.tokens >= bytes as f64 || self.tokens >= capacity {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

/// Lifetime self-healing counters, surfaced in `ClusterHealth` and as
/// `selfheal.*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfHealStats {
    /// Supervision rounds executed.
    pub ticks: u64,
    /// Automatic LTC failovers completed.
    pub failovers: u64,
    /// LTC failovers confirmed but not yet fully recovered (point in time).
    pub pending_failovers: u64,
    /// StoCs auto-drained after a confirmed failure.
    pub stoc_drains: u64,
    /// Auto-drained StoCs returned to placement after their node recovered.
    pub stoc_rejoins: u64,
    /// Fragment replicas re-created by background repair.
    pub repaired_fragments: u64,
    /// Metadata-block replicas re-created by background repair.
    pub repaired_meta_blocks: u64,
    /// Bytes copied by background repair.
    pub repaired_bytes: u64,
    /// Repair copies deferred by the I/O budget (retried next round).
    pub deferred_repairs: u64,
    /// Repair copies that failed outright (source unreadable mid-copy).
    pub failed_repairs: u64,
    /// Detection latency of the most recent confirmed failure, µs.
    pub last_time_to_detect_micros: u64,
    /// Confirmation-to-recovery latency of the most recent failover, µs.
    pub last_time_to_recover_micros: u64,
}

/// What one supervision round observed and did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Component nodes whose heartbeat ping failed this round.
    pub heartbeat_failures: usize,
    /// LTCs whose failure the detector confirmed this round.
    pub confirmed_ltcs: Vec<LtcId>,
    /// StoCs whose failure the detector confirmed this round.
    pub confirmed_stocs: Vec<StocId>,
    /// Failovers that completed this round (including retries).
    pub failovers_completed: Vec<LtcId>,
    /// Failovers attempted but still incomplete (retried next round).
    pub failovers_pending: Vec<LtcId>,
    /// StoCs auto-drained this round.
    pub stocs_drained: Vec<StocId>,
    /// Auto-drained StoCs that rejoined placement this round.
    pub stocs_rejoined: Vec<StocId>,
    /// Fragment replicas copied this round.
    pub repaired_fragments: u64,
    /// Metadata-block replicas copied this round.
    pub repaired_meta_blocks: u64,
    /// Bytes copied this round.
    pub repaired_bytes: u64,
    /// Copies deferred by the I/O budget this round.
    pub deferred_repairs: u64,
    /// Replication debt as scanned this round (before this round's repairs
    /// are installed — a zero-debt report means the previous rounds healed
    /// everything).
    pub debt: DebtSummary,
}

/// Mutable supervision state, shared by the background thread and manual
/// `self_heal_tick` callers under the cluster's selfheal mutex.
pub(crate) struct SelfHealState {
    clock: ClockRef,
    detector: FailureDetector,
    bucket: TokenBucket,
    /// Confirmed-failed LTCs whose recovery has not fully completed, with
    /// the confirmation timestamp (nanos) for time-to-recover accounting.
    /// Entries survive the LTC's deregistration so partial failovers are
    /// retried until every range is rebuilt.
    pending_failovers: HashMap<LtcId, u64>,
    /// StoCs drained by the supervisor (as opposed to the operator): these
    /// rejoin placement automatically when their node recovers.
    auto_drained: HashSet<StocId>,
    stats: SelfHealStats,
}

impl SelfHealState {
    pub(crate) fn new(clock: ClockRef, config: &SupervisorConfig) -> Self {
        SelfHealState {
            detector: FailureDetector::new(Arc::clone(&clock), config),
            bucket: TokenBucket::new(Arc::clone(&clock), config.rereplication_bytes_per_sec),
            clock,
            pending_failovers: HashMap::new(),
            auto_drained: HashSet::new(),
            stats: SelfHealStats::default(),
        }
    }
}

/// Handle of the background supervisor thread.
pub(crate) struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Spawn the supervision loop. The thread holds only a `Weak` reference:
    /// it never keeps the cluster alive, and exits on its own once the last
    /// strong reference is gone.
    pub(crate) fn spawn(cluster: &Arc<NovaCluster>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let weak: Weak<NovaCluster> = Arc::downgrade(cluster);
        let cadence = Duration::from_millis(cluster.config().supervisor.heartbeat_millis.max(1));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("nova-supervisor".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    match weak.upgrade() {
                        Some(cluster) => {
                            cluster.self_heal_tick();
                        }
                        None => break,
                    }
                    std::thread::sleep(cadence);
                }
            })
            .expect("spawn nova-supervisor thread");
        SupervisorHandle {
            stop,
            thread: Some(thread),
        }
    }

    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            // The supervisor thread can itself hold the final Arc while a
            // tick is in flight, in which case the cluster's Drop (and this
            // stop) runs *on* the supervisor thread — joining would deadlock
            // on self. Detach instead; the stop flag ends the loop.
            if thread.thread().id() != std::thread::current().id() {
                let _ = thread.join();
            }
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl NovaCluster {
    /// Run one synchronous supervision round: heartbeat every component,
    /// advance failure suspicion, auto-drain confirmed-dead StoCs (and
    /// rejoin recovered ones), execute or retry automatic LTC failovers,
    /// and scan-and-repair replication debt under the I/O budget. The
    /// background supervisor thread calls this on the configured cadence;
    /// tests and operators can call it directly regardless of whether the
    /// thread is enabled.
    pub fn self_heal_tick(&self) -> TickReport {
        let mut guard = self.selfheal.lock();
        let state = &mut *guard;
        let mut report = TickReport::default();
        state.stats.ticks += 1;

        // 1. Heartbeat round: ping-gated lease renewal; outcomes feed the
        // detector. Lease expiry is an independent strike — it catches
        // renewals that stopped while the supervisor was not running —
        // except for nodes already struck by a failed ping this round, so
        // one dead node does not accrue two strikes per tick.
        let failures = self.heartbeat_all();
        report.heartbeat_failures = failures.len();
        let failed_nodes: HashSet<NodeId> = failures.iter().map(|(n, _)| *n).collect();

        let ltc_nodes = self.ltc_node_map();
        let node_to_ltc: HashMap<NodeId, LtcId> = ltc_nodes.iter().map(|(l, n)| (*n, *l)).collect();
        let directory = self.stoc_directory();
        let mut stoc_nodes: HashMap<StocId, NodeId> = HashMap::new();
        let mut node_to_stoc: HashMap<NodeId, StocId> = HashMap::new();
        for stoc in directory.all() {
            if let Ok(node) = directory.node_of(stoc) {
                stoc_nodes.insert(stoc, node);
                node_to_stoc.insert(node, stoc);
            }
        }
        let supervised: HashSet<NodeId> = ltc_nodes
            .values()
            .copied()
            .chain(stoc_nodes.values().copied())
            .collect();
        for node in &supervised {
            if failed_nodes.contains(node) {
                state.detector.probe_failed(*node);
            } else {
                state.detector.heartbeat(*node);
            }
        }
        for holder in self.coordinator().expired_components() {
            let node = match holder {
                LeaseHolder::Ltc(id) => ltc_nodes.get(&LtcId(id)).copied(),
                LeaseHolder::Stoc(id) => stoc_nodes.get(&StocId(id)).copied(),
            };
            if let Some(node) = node {
                if !failed_nodes.contains(&node) {
                    state.detector.probe_failed(node);
                }
            }
        }
        // Nodes that left the configuration (completed failovers, removed
        // components) leave the detector too.
        for s in state.detector.states() {
            if !supervised.contains(&s.node) {
                state.detector.forget(s.node);
            }
        }

        // 2. Advance suspicion; map newly confirmed nodes to components.
        let now = state.clock.now_nanos();
        for node in state.detector.tick() {
            if let Some(ltc) = node_to_ltc.get(&node) {
                report.confirmed_ltcs.push(*ltc);
                if !state.pending_failovers.contains_key(ltc) {
                    state.pending_failovers.insert(*ltc, now);
                    let detect = state
                        .detector
                        .last_heartbeat_age(node)
                        .unwrap_or_default()
                        .as_micros() as u64;
                    state.stats.last_time_to_detect_micros = detect;
                    self.metrics()
                        .histogram("selfheal.time_to_detect_micros")
                        .record(detect);
                    self.metrics()
                        .gauge("selfheal.last_time_to_detect_micros")
                        .set(detect);
                }
            } else if let Some(stoc) = node_to_stoc.get(&node) {
                report.confirmed_stocs.push(*stoc);
                let detect = state
                    .detector
                    .last_heartbeat_age(node)
                    .unwrap_or_default()
                    .as_micros() as u64;
                state.stats.last_time_to_detect_micros = detect;
                self.metrics()
                    .histogram("selfheal.time_to_detect_micros")
                    .record(detect);
                self.metrics()
                    .gauge("selfheal.last_time_to_detect_micros")
                    .set(detect);
            }
        }

        // 3. Confirmed StoCs: auto-drain, then rotate every range's
        // memtables so open log files stop referencing the dead StoC (new
        // log files land only on placement-eligible StoCs). Auto-drained
        // StoCs whose node recovered rejoin placement; operator-drained
        // StoCs stay out.
        let placeable: HashSet<StocId> = directory.placeable().iter().copied().collect();
        for stoc in &report.confirmed_stocs {
            if placeable.contains(stoc) {
                directory.set_placeable(*stoc, false);
                state.auto_drained.insert(*stoc);
                state.stats.stoc_drains += 1;
                report.stocs_drained.push(*stoc);
            }
        }
        if !report.stocs_drained.is_empty() {
            self.rotate_all_memtables();
        }
        let drained: Vec<StocId> = state.auto_drained.iter().copied().collect();
        for stoc in drained {
            let recovered = stoc_nodes
                .get(&stoc)
                .map(|n| !failed_nodes.contains(n) && self.fabric().is_alive(*n))
                .unwrap_or(false);
            if recovered {
                directory.set_placeable(stoc, true);
                state.auto_drained.remove(&stoc);
                state.stats.stoc_rejoins += 1;
                report.stocs_rejoined.push(stoc);
            }
        }

        // 4. LTC failovers: newly confirmed plus retries of earlier partial
        // recoveries. `fail_and_recover_ltc` is resumable — an error means
        // some ranges are rebuilt and the rest stay assigned to the dead
        // LTC for the next round.
        let mut pending: Vec<(LtcId, u64)> = state.pending_failovers.iter().map(|(l, t)| (*l, *t)).collect();
        pending.sort();
        for (ltc, confirmed_at) in pending {
            match self.fail_and_recover_ltc(ltc) {
                Ok(_) => {
                    state.pending_failovers.remove(&ltc);
                    state.stats.failovers += 1;
                    let recover = Duration::from_nanos(state.clock.now_nanos().saturating_sub(confirmed_at))
                        .as_micros() as u64;
                    state.stats.last_time_to_recover_micros = recover;
                    self.metrics()
                        .histogram("selfheal.time_to_recover_micros")
                        .record(recover);
                    self.metrics()
                        .gauge("selfheal.last_time_to_recover_micros")
                        .set(recover);
                    report.failovers_completed.push(ltc);
                    if let Some(node) = ltc_nodes.get(&ltc) {
                        state.detector.forget(*node);
                    }
                }
                Err(_) => report.failovers_pending.push(ltc),
            }
        }

        // 5. Replication-debt scan and budgeted repair.
        let view = self.debt_view();
        let data_target = self.config().range.availability.data_copies();
        let meta_target = self.config().range.availability.metadata_replicas();
        let mut debt = DebtSummary::default();
        let ltc_nodes = self.ltc_node_map();
        for (ltc_id, node) in {
            let mut v: Vec<(LtcId, NodeId)> = ltc_nodes.iter().map(|(l, n)| (*l, *n)).collect();
            v.sort();
            v
        } {
            let Ok(ltc) = self.ltc(ltc_id) else { continue };
            let repair_client = StocClient::new(self.fabric().endpoint(node), directory.clone())
                .with_io_parallelism(self.config().stoc_io_parallelism);
            for range in ltc.range_ids() {
                let Ok(engine) = ltc.range(range) else { continue };
                if engine.is_frozen() || engine.is_retired() {
                    continue;
                }
                if engine.manifest_dirty() && engine.sync_dirty_manifest().is_err() {
                    // Still failing (the pinned home is still down): the
                    // durable metadata lags the version, so acknowledged
                    // writes whose logs died at flush are not yet
                    // failover-safe. Counted as debt until a save lands.
                    debt.dirty_manifests += 1;
                }
                let mut stranded_logs = false;
                for stoc in engine.log_component().open_replica_stocs() {
                    if !view.healthy.contains(&stoc) {
                        debt.missing_log_replicas += 1;
                        stranded_logs = true;
                    }
                }
                if stranded_logs {
                    // Log replicas heal through rotation, not copying: fresh
                    // log files land only on placeable StoCs, and retrying
                    // stuck flushes (those that failed against the StoC
                    // before it was drained) lets the stranded files close.
                    engine.rotate_memtables();
                    engine.retry_stuck_flushes();
                }
                for meta in engine.version_snapshot().all_tables() {
                    let td = table_debt(&meta, &view, data_target, meta_target);
                    debt.absorb(&td);
                    if td.is_zero() {
                        continue;
                    }
                    let mut patched = meta.clone();
                    let mut changed = false;
                    for f in &td.fragments {
                        // Parity makes even a source-less fragment
                        // reconstructible; anything else must wait for its
                        // node to recover.
                        if !f.has_readable_source && meta.parity.is_none() {
                            continue;
                        }
                        let holding: Vec<StocId> = patched.fragments[f.index]
                            .replicas
                            .iter()
                            .map(|h| h.stoc)
                            .collect();
                        let seed = meta.file_number.wrapping_mul(31).wrapping_add(f.index as u64);
                        for dest in choose_repair_targets(&view, &holding, f.missing as usize, seed) {
                            if !state.bucket.try_consume(f.bytes) {
                                state.stats.deferred_repairs += 1;
                                report.deferred_repairs += 1;
                                continue;
                            }
                            match copy_fragment(&repair_client, &patched, f.index, dest) {
                                Ok(handle) => {
                                    patched = with_fragment_replica(&patched, f.index, handle);
                                    changed = true;
                                    state.stats.repaired_fragments += 1;
                                    state.stats.repaired_bytes += f.bytes;
                                    report.repaired_fragments += 1;
                                    report.repaired_bytes += f.bytes;
                                }
                                Err(_) => state.stats.failed_repairs += 1,
                            }
                        }
                    }
                    if td.meta_missing > 0 && td.meta_has_readable_source {
                        let holding: Vec<StocId> = patched.meta_blocks.iter().map(|h| h.stoc).collect();
                        for dest in
                            choose_repair_targets(&view, &holding, td.meta_missing as usize, meta.file_number)
                        {
                            if !state.bucket.try_consume(td.meta_bytes) {
                                state.stats.deferred_repairs += 1;
                                report.deferred_repairs += 1;
                                continue;
                            }
                            match copy_meta_block(&repair_client, &patched, dest) {
                                Ok(handle) => {
                                    patched = with_meta_replica(&patched, handle);
                                    changed = true;
                                    state.stats.repaired_meta_blocks += 1;
                                    state.stats.repaired_bytes += td.meta_bytes;
                                    report.repaired_meta_blocks += 1;
                                    report.repaired_bytes += td.meta_bytes;
                                }
                                Err(_) => state.stats.failed_repairs += 1,
                            }
                        }
                    }
                    if changed {
                        // Ok(false) (table compacted away / range migrating)
                        // only leaks the copied blocks; the next scan
                        // recomputes debt from the installed metadata.
                        let _ = engine.install_table_replicas(patched);
                    }
                }
            }
        }
        report.debt = debt;

        // 6. Publish the round's gauges.
        let m = self.metrics();
        m.gauge("selfheal.ticks").set(state.stats.ticks);
        m.gauge("selfheal.debt.under_replicated_tables")
            .set(debt.under_replicated_tables);
        m.gauge("selfheal.debt.fragment_replicas")
            .set(debt.missing_fragment_replicas);
        m.gauge("selfheal.debt.meta_replicas")
            .set(debt.missing_meta_replicas);
        m.gauge("selfheal.debt.log_replicas")
            .set(debt.missing_log_replicas);
        m.gauge("selfheal.debt.bytes").set(debt.missing_bytes);
        m.gauge("selfheal.debt.unreadable_pieces")
            .set(debt.unreadable_pieces);
        m.gauge("selfheal.debt.dirty_manifests").set(debt.dirty_manifests);
        m.gauge("selfheal.failovers").set(state.stats.failovers);
        m.gauge("selfheal.pending_failovers")
            .set(state.pending_failovers.len() as u64);
        m.gauge("selfheal.stoc_drains").set(state.stats.stoc_drains);
        m.gauge("selfheal.stoc_rejoins").set(state.stats.stoc_rejoins);
        m.gauge("selfheal.repaired.fragments")
            .set(state.stats.repaired_fragments);
        m.gauge("selfheal.repaired.meta_blocks")
            .set(state.stats.repaired_meta_blocks);
        m.gauge("selfheal.repaired.bytes").set(state.stats.repaired_bytes);
        m.gauge("selfheal.deferred_repairs")
            .set(state.stats.deferred_repairs);
        for s in state.detector.states() {
            m.gauge(&format!("detector.node.{}.phi_milli", s.node.0))
                .set((s.phi * 1000.0) as u64);
            m.gauge(&format!("detector.node.{}.last_heartbeat_age_micros", s.node.0))
                .set(s.last_heartbeat_age.as_micros() as u64);
        }
        report
    }

    /// The supervisor's current per-node suspicion levels (empty until the
    /// first supervision round).
    pub fn detector_states(&self) -> Vec<NodeSuspicion> {
        self.selfheal.lock().detector.states()
    }

    /// Lifetime self-healing counters.
    pub fn selfheal_stats(&self) -> SelfHealStats {
        let state = self.selfheal.lock();
        let mut stats = state.stats;
        stats.pending_failovers = state.pending_failovers.len() as u64;
        stats
    }

    /// Scan the cluster's replication debt without repairing anything: how
    /// many fragment/metadata/log replicas sit below the availability
    /// target on healthy (alive and placeable) StoCs.
    pub fn replication_debt(&self) -> DebtSummary {
        let view = self.debt_view();
        let data_target = self.config().range.availability.data_copies();
        let meta_target = self.config().range.availability.metadata_replicas();
        let mut debt = DebtSummary::default();
        for ltc_id in self.ltc_ids() {
            let Ok(ltc) = self.ltc(ltc_id) else { continue };
            for range in ltc.range_ids() {
                let Ok(engine) = ltc.range(range) else { continue };
                if engine.is_retired() {
                    continue;
                }
                if engine.manifest_dirty() {
                    debt.dirty_manifests += 1;
                }
                for stoc in engine.log_component().open_replica_stocs() {
                    if !view.healthy.contains(&stoc) {
                        debt.missing_log_replicas += 1;
                    }
                }
                for meta in engine.version_snapshot().all_tables() {
                    debt.absorb(&table_debt(&meta, &view, data_target, meta_target));
                }
            }
        }
        debt
    }

    /// The debt scan's view of the StoC fleet: readable = node alive,
    /// healthy = alive and placement-eligible.
    fn debt_view(&self) -> StocView {
        let directory = self.stoc_directory();
        let placeable: HashSet<StocId> = directory.placeable().iter().copied().collect();
        let mut view = StocView::default();
        for stoc in directory.all() {
            let alive = directory
                .node_of(stoc)
                .map(|n| self.fabric().is_alive(n))
                .unwrap_or(false);
            if alive {
                view.readable.insert(stoc);
                if placeable.contains(&stoc) {
                    view.healthy.insert(stoc);
                }
            }
        }
        view
    }

    fn rotate_all_memtables(&self) {
        for ltc_id in self.ltc_ids() {
            let Ok(ltc) = self.ltc(ltc_id) else { continue };
            for range in ltc.range_ids() {
                if let Ok(engine) = ltc.range(range) {
                    engine.rotate_memtables();
                    engine.retry_stuck_flushes();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::clock::manual_clock;

    #[test]
    fn zero_budget_is_unthrottled() {
        let (clock, _manual) = manual_clock();
        let mut bucket = TokenBucket::new(clock, 0);
        for _ in 0..1000 {
            assert!(bucket.try_consume(u64::MAX / 2));
        }
    }

    #[test]
    fn bucket_enforces_the_rate_and_refills_with_time() {
        let (clock, manual) = manual_clock();
        let mut bucket = TokenBucket::new(clock, 1000);
        assert!(bucket.try_consume(600), "starts full");
        assert!(!bucket.try_consume(600), "only 400 left");
        manual.advance(Duration::from_millis(500));
        assert!(bucket.try_consume(600), "refilled to 900");
        assert!(!bucket.try_consume(600), "300 left");
        manual.advance(Duration::from_secs(10));
        assert!(
            bucket.try_consume(1000),
            "capacity caps the burst at one second of budget"
        );
        assert!(!bucket.try_consume(1), "burst exhausted");
    }

    #[test]
    fn oversized_piece_overdraws_a_full_bucket_instead_of_wedging() {
        let (clock, manual) = manual_clock();
        let mut bucket = TokenBucket::new(clock, 100);
        assert!(bucket.try_consume(250), "full bucket admits an oversized piece");
        assert!(
            !bucket.try_consume(1),
            "balance is negative until refills pay the debt"
        );
        manual.advance(Duration::from_secs(1));
        assert!(!bucket.try_consume(1), "still in debt");
        manual.advance(Duration::from_secs(2));
        assert!(bucket.try_consume(50), "debt repaid at the configured rate");
    }
}
