//! The Nova-LSM client: routes requests to the LTC serving each range using
//! the coordinator's cached configuration (Section 3, Figure 3).

use crate::cluster::NovaCluster;
use bytes::Bytes;
use nova_common::keyspace::encode_key;
use nova_common::types::Entry;
use nova_common::{Error, Result};
use std::sync::Arc;

/// A client handle onto a running cluster. Cheap to clone; every application
/// thread typically owns one.
#[derive(Clone)]
pub struct NovaClient {
    cluster: Arc<NovaCluster>,
}

impl std::fmt::Debug for NovaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaClient").finish()
    }
}

impl NovaClient {
    /// Create a client for `cluster`.
    pub fn new(cluster: Arc<NovaCluster>) -> Self {
        NovaClient { cluster }
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Arc<NovaCluster> {
        &self.cluster
    }

    /// Write a key-value pair.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let (range, ltc) = self.cluster.route(key)?;
        match ltc.put(range, key, value) {
            // A range that migrated mid-request: refresh the routing once.
            Err(Error::Migrating(_)) | Err(Error::WrongRange(_)) => {
                let (range, ltc) = self.cluster.route(key)?;
                ltc.put(range, key, value)
            }
            other => other,
        }
    }

    /// Delete a key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let (range, ltc) = self.cluster.route(key)?;
        ltc.delete(range, key)
    }

    /// Read the latest value of a key.
    pub fn get(&self, key: &[u8]) -> Result<Bytes> {
        let (range, ltc) = self.cluster.route(key)?;
        match ltc.get(range, key) {
            Err(Error::WrongRange(_)) => {
                let (range, ltc) = self.cluster.route(key)?;
                ltc.get(range, key)
            }
            other => other,
        }
    }

    /// Scan up to `limit` live entries starting at `start_key`, crossing
    /// range (and LTC) boundaries in read-committed fashion (Section 8.1).
    pub fn scan(&self, start_key: &[u8], limit: usize) -> Result<Vec<Entry>> {
        let mut out = Vec::with_capacity(limit);
        let partition = self.cluster.partition().clone();
        let mut range = partition.range_of_encoded(start_key);
        let mut cursor = start_key.to_vec();
        loop {
            if out.len() >= limit {
                break;
            }
            let ltc_id = match self.cluster.coordinator().configuration().ltc_of(range) {
                Some(l) => l,
                None => break,
            };
            let ltc = self.cluster.ltc(ltc_id)?;
            let chunk = ltc.scan(range, &cursor, limit - out.len())?;
            out.extend(chunk);
            // Move to the next range.
            let next = range.0 as usize + 1;
            if next >= partition.num_ranges() {
                break;
            }
            range = nova_common::RangeId(next as u32);
            cursor = encode_key(partition.interval(range).lower);
        }
        Ok(out)
    }

    /// Convenience: put with a numeric key (the YCSB keyspace).
    pub fn put_numeric(&self, key: u64, value: &[u8]) -> Result<()> {
        self.put(&encode_key(key), value)
    }

    /// Convenience: get with a numeric key.
    pub fn get_numeric(&self, key: u64) -> Result<Bytes> {
        self.get(&encode_key(key))
    }
}
