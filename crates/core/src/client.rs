//! The Nova-LSM client: routes requests to the LTC serving each range using
//! the coordinator's cached configuration (Section 3, Figure 3).
//!
//! The configuration carries a monotonically increasing epoch. Every request
//! is issued at the epoch it was routed with; if the cluster flipped a
//! range's ownership in the meantime (migration, failover) the LTC rejects
//! the request with the retriable [`Error::StaleConfig`] and the client
//! refreshes the configuration and re-routes, up to the bounded
//! `client_retries` budget from the cluster configuration. Applications
//! therefore observe a brief retry during elasticity operations, never a
//! terminal error.
//!
//! # The typed operation API
//!
//! Operations are options-carrying and absence-aware:
//!
//! * [`NovaClient::get`] returns `Ok(None)` for an absent key — absence is
//!   data, not an error — and [`NovaClient::get_with_options`] threads
//!   [`ReadOptions`] (cache admission, readahead) down to the SSTable
//!   readers.
//! * [`NovaClient::multi_get`] is the read-side twin of
//!   [`NovaClient::put_batch`]: keys are split by destination range and the
//!   per-LTC shards travel concurrently through a scoped-thread I/O pool,
//!   with per-shard epoch refresh/retry and order-preserving reassembly.
//! * [`NovaClient::scan_range`] returns a streaming [`ScanCursor`] over a
//!   `start..end` bound that pulls bounded chunks lazily across range and
//!   LTC boundaries; [`NovaClient::scan`] is a thin shim over it.

use crate::cluster::NovaCluster;
use bytes::Bytes;
use nova_common::keyspace::encode_key;
use nova_common::types::Entry;
use nova_common::{Error, RangeId, ReadOptions, Result, WriteOptions};
use nova_index::{maintenance_ops, IndexEntry, IndexSpec, IndexState};
use nova_ltc::BatchOp;
use nova_obs::OpKind;
use nova_stoc::IoPool;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One acknowledged base change as index-maintenance input:
/// `(primary, pre-write value, post-write value)`, all borrowed.
type ChangeRef<'a> = (&'a [u8], Option<&'a [u8]>, Option<&'a [u8]>);

/// A shard write's owed maintenance input: `(primary, pre-write value,
/// new value)`, the pre-write value owned by the read that fetched it.
type OwedChange<'a> = (&'a [u8], Option<Bytes>, &'a [u8]);

/// Sleep before retry `attempt`: exponential from 50µs up to a 25.6ms cap,
/// so the first retries catch a fast ownership flip almost instantly while
/// the default 64-attempt budget still spans well over a second of handoff
/// window (a slow destination build replaying many buffered entries).
/// Jittered: after a failover flips ownership of a whole LTC's ranges at
/// once, every blocked client observes `StaleConfig` in the same instant —
/// deterministic backoff would march them all back in lockstep waves.
fn backoff(attempt: usize) {
    use rand::RngCore;
    std::thread::sleep(Duration::from_micros(backoff_micros(
        attempt,
        rand::thread_rng().next_u64(),
    )));
}

/// The jittered backoff schedule: uniform in `[base/2, base]` where `base`
/// doubles from 50µs to a 25.6ms cap. Keeping the floor at half the
/// exponential term preserves the schedule's total span (retry budget ×
/// mean sleep) while decorrelating the retry storm.
fn backoff_micros(attempt: usize, entropy: u64) -> u64 {
    let base = 50u64 << attempt.min(9);
    let half = base / 2;
    half + entropy % (base - half + 1)
}

/// Group batch items by destination range, preserving submission order
/// within each shard. `key_of` extracts the routing key from an item.
/// Batches touch few ranges, so a linear scan beats a map here. Shared by
/// the batched write path (`put_batch`) and its read-side twin
/// (`multi_get`), so routing changes cannot silently diverge between them.
fn shard_by_range<T>(
    partition: &nova_common::keyspace::KeyspacePartition,
    items: impl Iterator<Item = T>,
    key_of: impl Fn(&T) -> &[u8],
) -> Vec<(RangeId, Vec<T>)> {
    let mut shards: Vec<(RangeId, Vec<T>)> = Vec::new();
    for item in items {
        let range = partition.range_of_encoded(key_of(&item));
        match shards.iter_mut().find(|(r, _)| *r == range) {
            Some((_, shard)) => shard.push(item),
            None => shards.push((range, vec![item])),
        }
    }
    shards
}

/// A client handle onto a running cluster. Cheap to clone; every application
/// thread typically owns one.
#[derive(Clone)]
pub struct NovaClient {
    cluster: Arc<NovaCluster>,
    /// Stale-configuration refresh-and-retry rounds performed, across every
    /// operation of every clone of this client.
    config_retries: Arc<AtomicU64>,
}

impl std::fmt::Debug for NovaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaClient")
            .field("config_retries", &self.config_retries.load(Ordering::Relaxed))
            .finish()
    }
}

impl NovaClient {
    /// Create a client for `cluster`.
    pub fn new(cluster: Arc<NovaCluster>) -> Self {
        NovaClient {
            cluster,
            config_retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Arc<NovaCluster> {
        &self.cluster
    }

    /// How many stale-configuration retries this client (and its clones)
    /// performed. During a migration this climbs briefly and then stops —
    /// client-visible errors stay at zero.
    pub fn config_retries(&self) -> u64 {
        self.config_retries.load(Ordering::Relaxed)
    }

    /// Route `range` and run `op` against its owner, refreshing the cached
    /// configuration and retrying (bounded) whenever the routing turns out
    /// to be stale: the LTC rejected our epoch, the range is mid-migration,
    /// the engine moved before our request arrived, or the assignment still
    /// names a deregistered LTC (the failover reassignment window).
    fn with_range_routing<T>(
        &self,
        range: RangeId,
        mut op: impl FnMut(&nova_ltc::Ltc, u64) -> Result<T>,
    ) -> Result<T> {
        let budget = self.cluster.config().client_retries.max(1);
        let mut last = Error::Unavailable(format!("{range} is not assigned to any LTC"));
        for attempt in 0..budget {
            let result = self
                .cluster
                .route_range(range)
                .and_then(|(ltc, epoch)| op(&ltc, epoch));
            match result {
                Err(e) if e.needs_config_refresh() => {
                    self.config_retries.fetch_add(1, Ordering::Relaxed);
                    last = e;
                    // No point sleeping after the final attempt.
                    if attempt + 1 < budget {
                        backoff(attempt);
                    }
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// [`NovaClient::with_range_routing`] addressed by key.
    fn with_routing<T>(
        &self,
        key: &[u8],
        mut op: impl FnMut(RangeId, &nova_ltc::Ltc, u64) -> Result<T>,
    ) -> Result<T> {
        let range = self.cluster.partition().range_of_encoded(key);
        self.with_range_routing(range, |ltc, epoch| op(range, ltc, epoch))
    }

    /// Write a key-value pair. When secondary indexes are registered, the
    /// index entries the write invalidates and creates are maintained
    /// incrementally (see [`NovaClient::index_scan`] for the contract).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let _op = self.cluster.metrics().op(OpKind::Put);
        self.write_one(key, Some(value))
    }

    /// Delete a key (index entries referencing it are deleted too).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let _op = self.cluster.metrics().op(OpKind::Delete);
        self.write_one(key, None)
    }

    /// One maintained base write (`value = None` deletes): route, plan the
    /// index maintenance from the record's pre-write value, apply the base
    /// write, then apply the index ops. The whole attempt — old-value read,
    /// plan, base write — replays on stale routing so the plan it executes
    /// is always consistent with the epoch its writes were validated at.
    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        let range = self.cluster.partition().range_of_encoded(key);
        let budget = self.cluster.config().client_retries.max(1);
        let mut last = Error::Unavailable(format!("{range} is not assigned to any LTC"));
        for attempt in 0..budget {
            match self.try_write_one(range, key, value) {
                Err(e) if e.needs_config_refresh() => {
                    self.config_retries.fetch_add(1, Ordering::Relaxed);
                    last = e;
                    if attempt + 1 < budget {
                        backoff(attempt);
                    }
                }
                Err(e) => return Err(e),
                // The base write is acknowledged; maintenance replays under
                // its own routing loop (the entries live in another range).
                Ok(Some(old)) => {
                    return self.apply_index_maintenance(&[(key, old.as_deref(), value)]);
                }
                Ok(None) => return Ok(()),
            }
        }
        Err(last)
    }

    /// One routed attempt of [`NovaClient::write_one`]. `Ok(Some(old))`
    /// means the write is acknowledged and index maintenance for the
    /// `old → value` transition is still owed; `Ok(None)` means none is.
    fn try_write_one(
        &self,
        range: RangeId,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> Result<Option<Option<Bytes>>> {
        let (ltc, epoch, catalog) = self.cluster.route_range_with_catalog(range)?;
        if catalog.is_empty() || nova_index::is_index_key(key) {
            match value {
                Some(v) => ltc.put_at(range, key, v, epoch)?,
                None => ltc.delete_at(range, key, epoch)?,
            }
            return Ok(None);
        }
        // The entry to delete is derived from the record's current value;
        // reading it at the routed epoch ties the read to the same fence
        // window as the write below.
        let old = match ltc.get_at_with(range, key, epoch, &ReadOptions::no_fill()) {
            Ok(v) => Some(v),
            Err(Error::NotFound) => None,
            Err(e) => return Err(e),
        };
        // Base write first: an index entry must never reference a value
        // that was not acknowledged.
        match value {
            Some(v) => ltc.put_at(range, key, v, epoch)?,
            None => ltc.delete_at(range, key, epoch)?,
        }
        Ok(Some(old))
    }

    /// Apply the index maintenance for a slice of acknowledged base changes
    /// (`(primary, pre-write value, post-write value)`), folding every
    /// resulting entry op into one atomic, group-committed batch on the
    /// index range. The plan is recomputed against the freshest catalog on
    /// every routed attempt, so a catalog change between the base write and
    /// this application (an index created or dropped mid-flight) converges
    /// on the new catalog instead of replaying a stale plan past the
    /// catch-up fence.
    fn apply_index_maintenance(&self, changes: &[ChangeRef<'_>]) -> Result<()> {
        if changes.is_empty() {
            return Ok(());
        }
        // Entries are non-decimal keys, so they all route to the last range.
        let range = RangeId(self.cluster.partition().num_ranges() as u32 - 1);
        let budget = self.cluster.config().client_retries.max(1);
        let mut last = Error::Unavailable(format!("{range} is not assigned to any LTC"));
        for attempt in 0..budget {
            let result = self
                .cluster
                .route_range_with_catalog(range)
                .and_then(|(ltc, epoch, catalog)| {
                    let mut ops = Vec::new();
                    for &(primary, old, new) in changes {
                        ops.extend(maintenance_ops(&catalog, primary, old, new));
                    }
                    if ops.is_empty() {
                        return Ok(());
                    }
                    let batch: Vec<BatchOp<'_>> = ops
                        .iter()
                        .map(|op| match op.delete {
                            true => BatchOp::Delete { key: &op.key },
                            false => BatchOp::Put {
                                key: &op.key,
                                value: &[],
                            },
                        })
                        .collect();
                    ltc.write_batch_at(range, &batch, epoch, &WriteOptions::default())
                });
            match result {
                Err(e) if e.needs_config_refresh() => {
                    self.config_retries.fetch_add(1, Ordering::Relaxed);
                    last = e;
                    if attempt + 1 < budget {
                        backoff(attempt);
                    }
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// Delete a batch of raw index-entry keys in one atomic batch on the
    /// index range (the cluster's drop-index cleanup sweep).
    pub(crate) fn delete_index_entries(&self, keys: &[Vec<u8>]) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        let range = self.cluster.partition().range_of_encoded(&keys[0]);
        self.with_range_routing(range, |ltc, epoch| {
            let batch: Vec<BatchOp<'_>> = keys.iter().map(|k| BatchOp::Delete { key: k }).collect();
            ltc.write_batch_at(range, &batch, epoch, &WriteOptions::default())
        })
    }

    /// Read the latest value of a key. `Ok(None)` means the key has no live
    /// version — absence is data, not an error; `Err` is reserved for
    /// operational failures (exhausted retries, unavailable storage).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.get_with_options(key, &ReadOptions::default())
    }

    /// [`NovaClient::get`] honoring per-operation [`ReadOptions`]
    /// (`fill_cache = false` reads through the LTC block cache without
    /// populating it).
    pub fn get_with_options(&self, key: &[u8], options: &ReadOptions) -> Result<Option<Bytes>> {
        let _op = self.cluster.metrics().op(OpKind::Get);
        let result = self.with_routing(key, |range, ltc, epoch| {
            ltc.get_at_with(range, key, epoch, options)
        });
        match result {
            Ok(value) => Ok(Some(value)),
            Err(Error::NotFound) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Read a batch of keys, returning one slot per input key in input
    /// order (`None` = absent; duplicates allowed and answered per
    /// occurrence).
    ///
    /// This is the read-side twin of [`NovaClient::put_batch`]: keys are
    /// split by destination range, each range's shard is cut into at most
    /// `stoc_io_parallelism` chunks, and the chunks fan out concurrently on
    /// a scoped-thread I/O pool — so a batch touching several ranges (or
    /// one large range) overlaps its fabric round trips instead of paying
    /// them in sequence. Each chunk routes, validates the configuration
    /// epoch, and retries on the stale-routing errors independently, so a
    /// migration mid-batch re-routes only the shards it touched.
    ///
    /// ```no_run
    /// # use nova_lsm::{presets, NovaClient, NovaCluster};
    /// # let cluster = NovaCluster::start(presets::test_cluster(1, 1, 1000)).unwrap();
    /// let client = NovaClient::new(cluster);
    /// client.put(b"00000000000000000007", b"seven").unwrap();
    /// let values = client
    ///     .multi_get(&[b"00000000000000000007".as_slice(), b"00000000000000000008".as_slice()])
    ///     .unwrap();
    /// assert_eq!(values[0].as_deref(), Some(b"seven".as_slice()));
    /// assert_eq!(values[1], None);
    /// ```
    pub fn multi_get<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<Bytes>>> {
        self.multi_get_with_options(keys, &ReadOptions::default())
    }

    /// [`NovaClient::multi_get`] honoring per-operation [`ReadOptions`].
    pub fn multi_get_with_options<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        options: &ReadOptions,
    ) -> Result<Vec<Option<Bytes>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // One timer for the whole batch: shard work on pool threads lands in
        // the per-layer histograms but not this op's frame (see nova-obs).
        let _op = self.cluster.metrics().op(OpKind::MultiGet);
        // Group (input index, key) pairs by destination range, preserving
        // input order within each shard.
        let shards = shard_by_range(
            self.cluster.partition(),
            keys.iter().enumerate().map(|(index, key)| (index, key.as_ref())),
            |&(_, key)| key,
        );
        // Cut shards into chunks so even a single-range batch fans out up
        // to the configured I/O width. Each chunk is one routed,
        // epoch-validated request with its own refresh-and-retry; reads are
        // idempotent, so a retried chunk is harmless.
        let parallelism = self.cluster.config().stoc_io_parallelism.max(1);
        let chunk_size = keys.len().div_ceil(parallelism).max(1);
        let mut jobs = Vec::new();
        for (range, shard) in &shards {
            for chunk in shard.chunks(chunk_size) {
                let range = *range;
                jobs.push(move || -> Result<Vec<(usize, Option<Bytes>)>> {
                    let chunk_keys: Vec<&[u8]> = chunk.iter().map(|&(_, key)| key).collect();
                    let values = self.with_range_routing(range, |ltc, epoch| {
                        ltc.multi_get_at(range, &chunk_keys, epoch, options)
                    })?;
                    Ok(chunk.iter().map(|&(index, _)| index).zip(values).collect())
                });
            }
        }
        let pool = IoPool::new(parallelism);
        let mut out: Vec<Option<Bytes>> = vec![None; keys.len()];
        for piece in pool.run_all(jobs)? {
            for (index, value) in piece {
                out[index] = value;
            }
        }
        Ok(out)
    }

    /// Write a batch of key-value pairs. Accepts any borrowed pairs
    /// (`&[(&[u8], &[u8])]`, `&[(Vec<u8>, Vec<u8>)]`, …) — callers no
    /// longer clone into an owned vector just to batch.
    ///
    /// The batch is split by destination range (preserving submission order
    /// within each range) and each shard is applied with one epoch-validated
    /// `put_batch_at` against its owning LTC — so a shard pays one routing
    /// decision and its log records travel as group-commit writes instead of
    /// one fabric round trip per record. A shard that hits a stale-routing
    /// window (range migration, failover) is refreshed and retried on its
    /// own, without re-applying the shards that already succeeded.
    ///
    /// Atomicity is per destination-memtable group within one range's
    /// Drange write state — never across ranges: on an error some shards
    /// (and within the failing shard, a prefix) may already be applied and
    /// readable.
    pub fn put_batch<K: AsRef<[u8]>, V: AsRef<[u8]>>(&self, items: &[(K, V)]) -> Result<()> {
        self.put_batch_with(items, &WriteOptions::default())
    }

    /// [`NovaClient::put_batch`] honoring per-operation [`WriteOptions`]
    /// (`group_commit = false` logs each record with its own write).
    pub fn put_batch_with<K: AsRef<[u8]>, V: AsRef<[u8]>>(
        &self,
        items: &[(K, V)],
        options: &WriteOptions,
    ) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let _op = self.cluster.metrics().op(OpKind::PutBatch);
        // Group by destination range, preserving order per range.
        let shards = shard_by_range(
            self.cluster.partition(),
            items.iter().map(|(key, value)| (key.as_ref(), value.as_ref())),
            |&(key, _)| key,
        );
        for (range, shard) in &shards {
            self.write_shard(*range, shard, options)?;
        }
        Ok(())
    }

    /// Write one range's shard of a batch, replaying the whole attempt
    /// (old-value reads, maintenance plan, base batch) on stale routing,
    /// then apply the owed index maintenance in one batch per shard.
    fn write_shard(&self, range: RangeId, shard: &[(&[u8], &[u8])], options: &WriteOptions) -> Result<()> {
        let budget = self.cluster.config().client_retries.max(1);
        let mut last = Error::Unavailable(format!("{range} is not assigned to any LTC"));
        for attempt in 0..budget {
            match self.try_write_shard(range, shard, options) {
                Err(e) if e.needs_config_refresh() => {
                    self.config_retries.fetch_add(1, Ordering::Relaxed);
                    last = e;
                    if attempt + 1 < budget {
                        backoff(attempt);
                    }
                }
                Err(e) => return Err(e),
                Ok(changes) => {
                    let refs: Vec<ChangeRef<'_>> = changes
                        .iter()
                        .map(|(key, old, new)| (*key, old.as_deref(), Some(*new)))
                        .collect();
                    return self.apply_index_maintenance(&refs);
                }
            }
        }
        Err(last)
    }

    /// One routed attempt at a shard write. Returns the maintenance inputs
    /// (`(key, pre-write value, new value)`) owed once the base batch is
    /// acknowledged — empty on the fast path (no catalog, or a shard of raw
    /// index entries such as the backfill's).
    fn try_write_shard<'a>(
        &self,
        range: RangeId,
        shard: &[(&'a [u8], &'a [u8])],
        options: &WriteOptions,
    ) -> Result<Vec<OwedChange<'a>>> {
        let (ltc, epoch, catalog) = self.cluster.route_range_with_catalog(range)?;
        let maintained = !catalog.is_empty() && shard.iter().any(|(key, _)| !nova_index::is_index_key(key));
        if !maintained {
            ltc.put_batch_at_with(range, shard, epoch, options)?;
            return Ok(Vec::new());
        }
        // Fetch the pre-write values in one epoch-validated read, then
        // overlay duplicates within the shard: the second write of a key in
        // one batch transitions from the first write's value, not from
        // storage, so its maintenance deletes the right entry.
        let keys: Vec<&[u8]> = shard.iter().map(|&(key, _)| key).collect();
        let olds = ltc.multi_get_at(range, &keys, epoch, &ReadOptions::no_fill())?;
        let mut changes: Vec<OwedChange<'a>> = Vec::new();
        let mut overlay: HashMap<&[u8], &[u8]> = HashMap::new();
        for (&(key, value), old) in shard.iter().zip(olds) {
            if nova_index::is_index_key(key) {
                continue;
            }
            let effective = match overlay.get(key) {
                Some(prior) => Some(Bytes::from(prior.to_vec())),
                None => old,
            };
            changes.push((key, effective, value));
            overlay.insert(key, value);
        }
        ltc.put_batch_at_with(range, shard, epoch, options)?;
        Ok(changes)
    }

    /// Stream the live entries of `[start_key, end_key)` (an absent
    /// `end_key` scans to the end of the keyspace) as a lazy
    /// [`ScanCursor`]. The cursor pulls chunks of `options.limit` entries
    /// at a time, crossing range (and LTC) boundaries in read-committed
    /// fashion (Section 8.1): each chunk is one routed, epoch-validated
    /// request, re-routed under the bounded retry policy if a migration
    /// flips the range between chunks.
    ///
    /// ```no_run
    /// # use nova_common::{keyspace::encode_key, ReadOptions};
    /// # use nova_lsm::{presets, NovaClient, NovaCluster};
    /// # let cluster = NovaCluster::start(presets::test_cluster(1, 1, 1000)).unwrap();
    /// let client = NovaClient::new(cluster);
    /// let cursor = client.scan_range(
    ///     &encode_key(100),
    ///     Some(&encode_key(200)),
    ///     ReadOptions::default().with_chunk(32),
    /// );
    /// for entry in cursor {
    ///     let entry = entry.unwrap();
    ///     // keys 100..200 only, in order, each exactly once
    /// }
    /// ```
    pub fn scan_range(&self, start_key: &[u8], end_key: Option<&[u8]>, options: ReadOptions) -> ScanCursor {
        let range = self.cluster.partition().range_of_encoded(start_key);
        ScanCursor {
            client: self.clone(),
            options,
            end: end_key.map(|e| e.to_vec()),
            cursor: start_key.to_vec(),
            range: Some(range),
            buffer: VecDeque::new(),
            done: false,
        }
    }

    /// [`NovaClient::scan_range`] addressed by numeric keys (the YCSB
    /// keyspace): streams the live entries of `[start, end)`.
    pub fn scan_range_numeric(&self, start: u64, end: u64, options: ReadOptions) -> ScanCursor {
        self.scan_range(&encode_key(start), Some(&encode_key(end)), options)
    }

    /// Scan up to `limit` live entries starting at `start_key`, crossing
    /// range (and LTC) boundaries in read-committed fashion (Section 8.1).
    ///
    /// A thin shim over [`NovaClient::scan_range`]: it drives the cursor
    /// with a chunk size of `limit` and collects, so its results are
    /// byte-identical to streaming the cursor yourself.
    pub fn scan(&self, start_key: &[u8], limit: usize) -> Result<Vec<Entry>> {
        if limit == 0 {
            return Ok(Vec::new());
        }
        let options = ReadOptions::default().with_chunk(limit);
        let mut cursor = self.scan_range(start_key, None, options);
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            // Shrink the next chunk to what is still needed, exactly like
            // the pre-cursor eager scan asked each successive range for
            // `limit - out.len()`: a scan that crosses a range boundary
            // with one entry to go must not pull (and discard) a full
            // limit-sized chunk from the next range.
            cursor.options.limit = limit - out.len();
            match cursor.next() {
                Some(entry) => out.push(entry?),
                None => break,
            }
        }
        Ok(out)
    }

    /// Convenience: put with a numeric key (the YCSB keyspace).
    pub fn put_numeric(&self, key: u64, value: &[u8]) -> Result<()> {
        self.put(&encode_key(key), value)
    }

    /// Convenience: get with a numeric key (`Ok(None)` = absent).
    pub fn get_numeric(&self, key: u64) -> Result<Option<Bytes>> {
        self.get(&encode_key(key))
    }

    /// Convenience: multi-get with numeric keys.
    pub fn multi_get_numeric(&self, keys: &[u64]) -> Result<Vec<Option<Bytes>>> {
        let encoded: Vec<Vec<u8>> = keys.iter().map(|&k| encode_key(k)).collect();
        self.multi_get(&encoded)
    }

    // ------------------------------------------------------------------
    // Secondary indexes
    // ------------------------------------------------------------------

    /// Resolve `name` to its spec, requiring the index to be `Active`
    /// (scans over a still-backfilling index would under-report; the
    /// retryable [`Error::IndexNotReady`] tells callers to come back).
    fn active_index(&self, name: &str) -> Result<IndexSpec> {
        let catalog = self.cluster.coordinator().index_catalog();
        let spec = catalog
            .find(name)
            .ok_or_else(|| Error::IndexNotFound(name.to_string()))?;
        if spec.state != IndexState::Active {
            return Err(Error::IndexNotReady(name.to_string()));
        }
        Ok(spec.clone())
    }

    /// Stream the entries of secondary index `name` whose secondary key
    /// falls in `[sec_start, sec_end)` (`None` = unbounded on that side),
    /// in (secondary, primary) order, as a lazy [`IndexScanCursor`].
    ///
    /// Entries reflect acknowledged base writes with the same per-chunk
    /// read-committed consistency as [`NovaClient::scan_range`]. An entry
    /// may transiently outlive the value that produced it (concurrent
    /// update racing maintenance, or the backfill race); point lookups that
    /// must not over-report go through [`NovaClient::index_lookup_rows`],
    /// which re-validates against the current base values.
    pub fn index_scan(
        &self,
        name: &str,
        sec_start: Option<&[u8]>,
        sec_end: Option<&[u8]>,
        options: ReadOptions,
    ) -> Result<IndexScanCursor> {
        let spec = self.active_index(name)?;
        let (start, end) = nova_index::secondary_range_bounds(spec.id, sec_start, sec_end);
        Ok(IndexScanCursor {
            inner: self.scan_range(&start, Some(&end), options),
            last_raw: None,
        })
    }

    /// [`NovaClient::index_scan`] restricted to entries whose secondary key
    /// equals `secondary` exactly (an indexed point lookup).
    pub fn index_scan_exact(
        &self,
        name: &str,
        secondary: &[u8],
        options: ReadOptions,
    ) -> Result<IndexScanCursor> {
        let spec = self.active_index(name)?;
        let (start, end) = nova_index::secondary_exact_bounds(spec.id, secondary);
        Ok(IndexScanCursor {
            inner: self.scan_range(&start, Some(&end), options),
            last_raw: None,
        })
    }

    /// One bounded chunk of an index scan, resumable via an opaque raw
    /// cursor — the server-side shape of [`NovaClient::index_scan`]: the
    /// wire protocol ships `(entries, resume)` and the remote client hands
    /// `resume` back verbatim for the next chunk. `resume = None` on return
    /// means the scan is exhausted.
    pub fn index_scan_chunk(
        &self,
        name: &str,
        sec_start: Option<&[u8]>,
        sec_end: Option<&[u8]>,
        resume: Option<&[u8]>,
        limit: usize,
    ) -> Result<(Vec<IndexEntry>, Option<Vec<u8>>)> {
        let spec = self.active_index(name)?;
        let (lo, hi) = nova_index::secondary_range_bounds(spec.id, sec_start, sec_end);
        let start = match resume {
            // The raw cursor must stay inside the requested interval: a
            // forged or stale one cannot widen the scan.
            Some(r) if r > lo.as_slice() => r.to_vec(),
            _ => lo,
        };
        let limit = limit.max(1);
        let mut cursor = IndexScanCursor {
            inner: self.scan_range(&start, Some(&hi), ReadOptions::default().with_chunk(limit)),
            last_raw: None,
        };
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            match cursor.next() {
                Some(entry) => out.push(entry?),
                None => return Ok((out, None)),
            }
        }
        // A full chunk may have more behind it: resume at the bytewise
        // successor of the last raw entry key.
        let resume = cursor.last_raw.map(|mut k| {
            k.push(0);
            k
        });
        Ok((out, resume))
    }

    /// Indexed point lookup with validation: scan the entries whose
    /// secondary key equals `secondary`, read the referenced base records
    /// (batched through [`NovaClient::multi_get`]), and keep only rows
    /// whose *current* value still projects to `secondary` — filtering
    /// anything a concurrent update or the backfill race left behind.
    /// Returns up to `limit` `(primary key, value)` rows in primary-key
    /// order.
    pub fn index_lookup_rows(
        &self,
        name: &str,
        secondary: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        if limit == 0 {
            return Ok(Vec::new());
        }
        let spec = self.active_index(name)?;
        let (start, end) = nova_index::secondary_exact_bounds(spec.id, secondary);
        let chunk = limit.min(512);
        let mut cursor = IndexScanCursor {
            inner: self.scan_range(&start, Some(&end), ReadOptions::no_fill().with_chunk(chunk)),
            last_raw: None,
        };
        let mut out = Vec::new();
        // Stale entries are filtered after the base read, so keep pulling
        // until `limit` validated rows or exhaustion.
        loop {
            let mut primaries: Vec<Vec<u8>> = Vec::with_capacity(chunk);
            for entry in cursor.by_ref().take(chunk) {
                primaries.push(entry?.primary);
            }
            if primaries.is_empty() {
                return Ok(out);
            }
            let values = self.multi_get_with_options(&primaries, &ReadOptions::no_fill())?;
            for (primary, value) in primaries.into_iter().zip(values) {
                if let Some(value) = value {
                    if spec.projection.project(&value) == Some(secondary) {
                        out.push((primary, value));
                        if out.len() >= limit {
                            return Ok(out);
                        }
                    }
                }
            }
        }
    }
}

/// A streaming range-scan cursor: pulls bounded chunks of live entries
/// lazily across range and LTC boundaries. Created by
/// [`NovaClient::scan_range`].
///
/// Consistency is read-committed *per chunk* (Section 8.1): each chunk
/// observes a consistent point-in-time view of its range, and writes
/// committed between chunks may or may not be visible to later chunks. A
/// migration between chunks re-routes the next chunk under the client's
/// bounded retry policy instead of failing the scan; keys are yielded in
/// order, each at most once, with none skipped (the cursor resumes at the
/// bytewise successor of the last yielded key).
pub struct ScanCursor {
    client: NovaClient,
    options: ReadOptions,
    /// Exclusive end bound, if any.
    end: Option<Vec<u8>>,
    /// The next key to resume from (inclusive).
    cursor: Vec<u8>,
    /// The range the cursor is currently positioned in (`None` once the
    /// routable keyspace is exhausted).
    range: Option<RangeId>,
    buffer: VecDeque<Entry>,
    done: bool,
}

impl std::fmt::Debug for ScanCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanCursor")
            .field("range", &self.range)
            .field("buffered", &self.buffer.len())
            .field("done", &self.done)
            .finish()
    }
}

impl ScanCursor {
    /// Fetch chunks until the buffer holds at least one entry or the scan
    /// is exhausted.
    fn refill(&mut self) -> Result<()> {
        // Each refill is one client-visible scan pull (it may cross several
        // ranges to find the next live entry).
        let _op = self.client.cluster.metrics().op(OpKind::Scan);
        let chunk_size = self.options.limit.max(1);
        while self.buffer.is_empty() && !self.done {
            let Some(range) = self.range else {
                self.done = true;
                break;
            };
            if let Some(end) = &self.end {
                if self.cursor.as_slice() >= end.as_slice() {
                    self.done = true;
                    break;
                }
            }
            // An unassigned range is the end of the routable keyspace, not
            // an error.
            if self.client.cluster.coordinator().route_of(range).0.is_none() {
                self.done = true;
                break;
            }
            // Per-chunk routing with the same bounded refresh-and-retry the
            // point operations use: a migration between chunks re-routes the
            // next chunk instead of failing the whole scan.
            let chunk = self.client.with_range_routing(range, |ltc, epoch| {
                ltc.scan_range_at(
                    range,
                    &self.cursor,
                    self.end.as_deref(),
                    chunk_size,
                    epoch,
                    &self.options,
                )
            })?;
            let got = chunk.len();
            if let Some(last) = chunk.last() {
                // Resume at the bytewise successor of the last yielded key:
                // nothing sorts strictly between `k` and `k ++ 0x00`, so no
                // key is skipped and none repeats.
                let mut next = last.key.to_vec();
                next.push(0);
                self.cursor = next;
            }
            self.buffer.extend(chunk);
            if got < chunk_size {
                // The range had nothing more in bounds; move to the next.
                let partition = self.client.cluster.partition();
                let next = range.0 as usize + 1;
                if next >= partition.num_ranges() {
                    self.range = None;
                } else {
                    let next_range = RangeId(next as u32);
                    self.cursor = encode_key(partition.interval(next_range).lower);
                    self.range = Some(next_range);
                }
            }
        }
        Ok(())
    }
}

impl Iterator for ScanCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer.is_empty() && !self.done {
            if let Err(e) = self.refill() {
                // A terminal chunk error ends the stream after surfacing it
                // once (the caller can restart a new cursor from the last
                // yielded key).
                self.done = true;
                return Some(Err(e));
            }
        }
        self.buffer.pop_front().map(Ok)
    }
}

/// A streaming secondary-index scan: a [`ScanCursor`] over the index's
/// composite-key interval that decodes each raw entry into an
/// [`IndexEntry`] (`(secondary, primary)`). Created by
/// [`NovaClient::index_scan`] / [`NovaClient::index_scan_exact`]; inherits
/// the underlying cursor's ordering, at-most-once and migration-retry
/// guarantees.
pub struct IndexScanCursor {
    inner: ScanCursor,
    /// Raw composite key of the last yielded entry — the chunked server
    /// path derives its opaque resume cursor from it.
    last_raw: Option<Vec<u8>>,
}

impl std::fmt::Debug for IndexScanCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexScanCursor")
            .field("inner", &self.inner)
            .finish()
    }
}

impl Iterator for IndexScanCursor {
    type Item = Result<IndexEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.inner.next()? {
                Err(e) => return Some(Err(e)),
                Ok(entry) => {
                    self.last_raw = Some(entry.key.to_vec());
                    match nova_index::decode_index_key(&entry.key) {
                        Some((_, secondary, primary)) => return Some(Ok(IndexEntry { secondary, primary })),
                        // Unreachable within the codec's bounds; skip
                        // defensively rather than surface garbage.
                        None => continue,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::backoff_micros;

    #[test]
    fn backoff_is_bounded_between_half_base_and_base() {
        for attempt in 0..16 {
            let base = 50u64 << attempt.min(9);
            for entropy in [0, 1, base / 2, base, u64::MAX - 1, u64::MAX] {
                let micros = backoff_micros(attempt, entropy);
                assert!(
                    micros >= base / 2 && micros <= base,
                    "attempt {attempt} entropy {entropy}: {micros}us outside [{}, {base}]us",
                    base / 2,
                );
            }
        }
    }

    #[test]
    fn backoff_caps_at_25_6_ms() {
        assert_eq!(backoff_micros(9, 0), 12_800, "cap floor");
        assert_eq!(backoff_micros(9, 12_800), 25_600, "cap ceiling");
        assert_eq!(backoff_micros(63, 0), 12_800, "cap holds for deep attempts");
        assert_eq!(backoff_micros(0, 0), 25, "first retry floor is 25us");
    }

    #[test]
    fn backoff_spreads_across_entropy() {
        // Distinct entropy values must not collapse onto one sleep duration;
        // the whole point is decorrelating a post-failover retry storm.
        let samples: std::collections::HashSet<u64> = (0..64u64).map(|e| backoff_micros(6, e * 37)).collect();
        assert!(
            samples.len() > 16,
            "only {} distinct sleeps across 64 clients",
            samples.len()
        );
    }
}
