//! The Nova-LSM client: routes requests to the LTC serving each range using
//! the coordinator's cached configuration (Section 3, Figure 3).
//!
//! The configuration carries a monotonically increasing epoch. Every request
//! is issued at the epoch it was routed with; if the cluster flipped a
//! range's ownership in the meantime (migration, failover) the LTC rejects
//! the request with the retriable [`Error::StaleConfig`] and the client
//! refreshes the configuration and re-routes, up to the bounded
//! `client_retries` budget from the cluster configuration. Applications
//! therefore observe a brief retry during elasticity operations, never a
//! terminal error.

use crate::cluster::NovaCluster;
use bytes::Bytes;
use nova_common::keyspace::encode_key;
use nova_common::types::Entry;
use nova_common::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sleep before retry `attempt`: exponential from 50µs up to a 25.6ms cap,
/// so the first retries catch a fast ownership flip almost instantly while
/// the default 64-attempt budget still spans well over a second of handoff
/// window (a slow destination build replaying many buffered entries).
fn backoff(attempt: usize) {
    std::thread::sleep(Duration::from_micros(50u64 << attempt.min(9)));
}

/// A client handle onto a running cluster. Cheap to clone; every application
/// thread typically owns one.
#[derive(Clone)]
pub struct NovaClient {
    cluster: Arc<NovaCluster>,
    /// Stale-configuration refresh-and-retry rounds performed, across every
    /// operation of every clone of this client.
    config_retries: Arc<AtomicU64>,
}

impl std::fmt::Debug for NovaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaClient")
            .field("config_retries", &self.config_retries.load(Ordering::Relaxed))
            .finish()
    }
}

impl NovaClient {
    /// Create a client for `cluster`.
    pub fn new(cluster: Arc<NovaCluster>) -> Self {
        NovaClient {
            cluster,
            config_retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Arc<NovaCluster> {
        &self.cluster
    }

    /// How many stale-configuration retries this client (and its clones)
    /// performed. During a migration this climbs briefly and then stops —
    /// client-visible errors stay at zero.
    pub fn config_retries(&self) -> u64 {
        self.config_retries.load(Ordering::Relaxed)
    }

    /// Route `range` and run `op` against its owner, refreshing the cached
    /// configuration and retrying (bounded) whenever the routing turns out
    /// to be stale: the LTC rejected our epoch, the range is mid-migration,
    /// the engine moved before our request arrived, or the assignment still
    /// names a deregistered LTC (the failover reassignment window).
    fn with_range_routing<T>(
        &self,
        range: nova_common::RangeId,
        mut op: impl FnMut(&nova_ltc::Ltc, u64) -> Result<T>,
    ) -> Result<T> {
        let budget = self.cluster.config().client_retries.max(1);
        let mut last = Error::Unavailable(format!("{range} is not assigned to any LTC"));
        for attempt in 0..budget {
            let result = self
                .cluster
                .route_range(range)
                .and_then(|(ltc, epoch)| op(&ltc, epoch));
            match result {
                Err(e) if e.needs_config_refresh() => {
                    self.config_retries.fetch_add(1, Ordering::Relaxed);
                    last = e;
                    // No point sleeping after the final attempt.
                    if attempt + 1 < budget {
                        backoff(attempt);
                    }
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// [`NovaClient::with_range_routing`] addressed by key.
    fn with_routing<T>(
        &self,
        key: &[u8],
        mut op: impl FnMut(nova_common::RangeId, &nova_ltc::Ltc, u64) -> Result<T>,
    ) -> Result<T> {
        let range = self.cluster.partition().range_of_encoded(key);
        self.with_range_routing(range, |ltc, epoch| op(range, ltc, epoch))
    }

    /// Write a key-value pair.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.with_routing(key, |range, ltc, epoch| ltc.put_at(range, key, value, epoch))
    }

    /// Delete a key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.with_routing(key, |range, ltc, epoch| ltc.delete_at(range, key, epoch))
    }

    /// Read the latest value of a key.
    pub fn get(&self, key: &[u8]) -> Result<Bytes> {
        self.with_routing(key, |range, ltc, epoch| ltc.get_at(range, key, epoch))
    }

    /// Write a batch of key-value pairs.
    ///
    /// The batch is split by destination range (preserving submission order
    /// within each range) and each shard is applied with one epoch-validated
    /// `put_batch_at` against its owning LTC — so a shard pays one routing
    /// decision and its log records travel as group-commit writes instead of
    /// one fabric round trip per record. A shard that hits a stale-routing
    /// window (range migration, failover) is refreshed and retried on its
    /// own, without re-applying the shards that already succeeded.
    ///
    /// Atomicity is per destination-memtable group within one range's
    /// Drange write state — never across ranges: on an error some shards
    /// (and within the failing shard, a prefix) may already be applied and
    /// readable.
    pub fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let partition = self.cluster.partition();
        // Group by destination range, preserving order per range. Batches
        // touch few ranges, so a linear scan beats a map here.
        type Shard<'a> = (nova_common::RangeId, Vec<(&'a [u8], &'a [u8])>);
        let mut shards: Vec<Shard<'_>> = Vec::new();
        for (key, value) in items {
            let range = partition.range_of_encoded(key);
            match shards.iter_mut().find(|(r, _)| *r == range) {
                Some((_, shard)) => shard.push((key, value)),
                None => shards.push((range, vec![(key.as_slice(), value.as_slice())])),
            }
        }
        for (range, shard) in &shards {
            self.with_range_routing(*range, |ltc, epoch| ltc.put_batch_at(*range, shard, epoch))?;
        }
        Ok(())
    }

    /// Scan up to `limit` live entries starting at `start_key`, crossing
    /// range (and LTC) boundaries in read-committed fashion (Section 8.1).
    pub fn scan(&self, start_key: &[u8], limit: usize) -> Result<Vec<Entry>> {
        let mut out = Vec::with_capacity(limit);
        let partition = self.cluster.partition().clone();
        let mut range = partition.range_of_encoded(start_key);
        let mut cursor = start_key.to_vec();
        loop {
            if out.len() >= limit {
                break;
            }
            // An unassigned range is the end of the routable keyspace, not
            // an error.
            if self.cluster.coordinator().route_of(range).0.is_none() {
                break;
            }
            // Per-chunk routing with the same bounded refresh-and-retry the
            // point operations use: a migration between chunks re-routes the
            // next chunk instead of failing the whole scan.
            let remaining = limit - out.len();
            let chunk =
                self.with_range_routing(range, |ltc, epoch| ltc.scan_at(range, &cursor, remaining, epoch))?;
            out.extend(chunk);
            // Move to the next range.
            let next = range.0 as usize + 1;
            if next >= partition.num_ranges() {
                break;
            }
            range = nova_common::RangeId(next as u32);
            cursor = encode_key(partition.interval(range).lower);
        }
        Ok(out)
    }

    /// Convenience: put with a numeric key (the YCSB keyspace).
    pub fn put_numeric(&self, key: u64, value: &[u8]) -> Result<()> {
        self.put(&encode_key(key), value)
    }

    /// Convenience: get with a numeric key.
    pub fn get_numeric(&self, key: u64) -> Result<Bytes> {
        self.get(&encode_key(key))
    }
}
