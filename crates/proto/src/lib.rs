//! # nova-proto
//!
//! The framed binary wire protocol spoken between `nova-server` and its
//! remote clients. The design follows the repository's storage formats (and
//! the QCP control protocol the paper's authors built on): a compact,
//! versioned, explicitly length-prefixed binary layout rather than an ad-hoc
//! serialization.
//!
//! ## Frame layout
//!
//! Every message travels in one frame:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `0x4E4F5641` (`"NOVA"`, little-endian on the wire) |
//! | 4 | 1 | protocol version (currently [`VERSION`]) |
//! | 5 | 1 | frame kind ([`FrameKind`]) |
//! | 6 | 8 | request id (echoed verbatim in the response) |
//! | 14 | 4 | payload length `n` (≤ [`MAX_PAYLOAD`]) |
//! | 18 | n | payload (varint/length-prefixed fields, see [`Message`]) |
//! | 18+n | 4 | CRC32C of the payload |
//!
//! All fixed-width integers are little-endian; payload integers use the same
//! LEB128 varints as the SSTable format ([`nova_common::varint`]).
//!
//! ## Versioning rules
//!
//! * The header layout (magic through payload length) is frozen forever.
//! * A peer that receives a version it does not speak rejects the frame with
//!   a `protocol_error` frame and closes — there is no negotiation below the
//!   current version.
//! * Within a version, payloads may gain *trailing* fields; decoders ignore
//!   trailing bytes they do not understand. Removing or reordering fields
//!   requires a version bump.
//! * [`nova_common::ErrorCode`] discriminants and [`FrameKind`] discriminants
//!   are append-only.
//!
//! ## Error handling contract
//!
//! Framing failures (bad magic, unsupported version, oversized length,
//! truncated frame, checksum mismatch) poison the byte stream — the reader
//! returns [`Error::ProtocolError`] and the connection must be closed. A
//! frame that *parses* but whose payload fails to decode is reported the
//! same way by [`Message::decode`], but the stream itself is still framed:
//! a server can answer with an error frame and keep serving the connection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod message;

pub use message::{error_to_wire, wire_to_error, Message, WireError};

use nova_common::{Error, Result};
use std::io::{Read, Write};

/// Frame magic: `"NOVA"` interpreted as a little-endian `u32`.
pub const MAGIC: u32 = 0x4E4F_5641;

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 18;

/// Upper bound on a frame payload. Larger lengths are rejected before any
/// payload byte is read, so a malicious or corrupt length cannot make the
/// reader allocate unboundedly.
pub const MAX_PAYLOAD: usize = 32 << 20;

/// The kind tag carried in byte 5 of the header. Request kinds occupy
/// `0x01..=0x7f`, response kinds `0x80..=0xff`. Discriminants are
/// append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Authentication handshake (tenant + token).
    Hello = 0x01,
    /// Point read.
    Get = 0x02,
    /// Single-record write.
    Put = 0x03,
    /// Single-record delete (tombstone write).
    Delete = 0x04,
    /// Scatter-gather multi-key read.
    MultiGet = 0x05,
    /// Batched write.
    PutBatch = 0x06,
    /// One chunk of a streaming range scan (client resumes with the
    /// successor of the last returned key).
    ScanChunk = 0x07,
    /// Liveness probe.
    Ping = 0x08,
    /// Admin: cluster health report.
    Health = 0x09,
    /// Admin: metrics registry snapshot.
    MetricsSnapshot = 0x0A,
    /// Admin: create a secondary index (registers, fences, backfills).
    CreateIndex = 0x0B,
    /// One chunk of a streaming secondary-index scan (client resumes with
    /// the opaque cursor echoed in the response).
    IndexScan = 0x0C,
    /// Admin: drop a secondary index and sweep its entries.
    DropIndex = 0x0D,
    /// Handshake accepted.
    HelloOk = 0x81,
    /// Write acknowledged.
    Ok = 0x82,
    /// Optional single value.
    Value = 0x83,
    /// Optional values, one per requested key.
    Values = 0x84,
    /// Scan chunk entries.
    Entries = 0x85,
    /// Liveness response.
    Pong = 0x86,
    /// Admin JSON document (health report or metrics snapshot).
    Report = 0x87,
    /// Index-scan chunk entries plus the opaque resume cursor.
    IndexEntries = 0x88,
    /// Typed error (code + detail + message).
    Error = 0xFF,
}

impl FrameKind {
    /// Decode a kind tag. Unknown tags (from a newer peer) map to `None`.
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::Get,
            0x03 => FrameKind::Put,
            0x04 => FrameKind::Delete,
            0x05 => FrameKind::MultiGet,
            0x06 => FrameKind::PutBatch,
            0x07 => FrameKind::ScanChunk,
            0x08 => FrameKind::Ping,
            0x09 => FrameKind::Health,
            0x0A => FrameKind::MetricsSnapshot,
            0x0B => FrameKind::CreateIndex,
            0x0C => FrameKind::IndexScan,
            0x0D => FrameKind::DropIndex,
            0x81 => FrameKind::HelloOk,
            0x82 => FrameKind::Ok,
            0x83 => FrameKind::Value,
            0x84 => FrameKind::Values,
            0x85 => FrameKind::Entries,
            0x86 => FrameKind::Pong,
            0x87 => FrameKind::Report,
            0x88 => FrameKind::IndexEntries,
            0xFF => FrameKind::Error,
            _ => return None,
        })
    }
}

/// A raw frame: kind, request id and undecoded payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Raw kind byte (may be unknown to this peer).
    pub kind: u8,
    /// Request id echoed between request and response.
    pub request_id: u64,
    /// Checksummed payload bytes.
    pub payload: Vec<u8>,
}

/// Write one frame. The payload is checksummed with CRC32C.
pub fn write_frame(w: &mut impl Write, kind: u8, request_id: u64, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_PAYLOAD {
        return Err(Error::InvalidArgument(format!(
            "frame payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})",
            payload.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = VERSION;
    header[5] = kind;
    header[6..14].copy_from_slice(&request_id.to_le_bytes());
    header[14..18].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.write_all(&nova_common::checksum::crc32c(payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one frame.
///
/// Returns [`Error::Io`] for a clean close (EOF on a frame boundary) and
/// transport errors, and [`Error::ProtocolError`] for anything that poisons
/// the stream framing: bad magic, unsupported version, oversized length,
/// truncated frame or checksum mismatch. After a `ProtocolError` the stream
/// position is undefined and the connection must be closed.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    // Read the first byte separately so a clean close (EOF exactly on a
    // frame boundary) is distinguishable from a frame truncated mid-header.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(Error::Io("connection closed".into())),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    header[0] = first[0];
    read_exact_or_protocol(r, &mut header[1..], "frame header")?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(Error::ProtocolError(format!("bad frame magic {magic:#010x}")));
    }
    let version = header[4];
    if version != VERSION {
        return Err(Error::ProtocolError(format!(
            "unsupported protocol version {version} (this peer speaks {VERSION})"
        )));
    }
    let kind = header[5];
    let request_id = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(Error::ProtocolError(format!(
            "frame payload length {len} exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_or_protocol(r, &mut payload, "frame payload")?;
    let mut crc = [0u8; 4];
    read_exact_or_protocol(r, &mut crc, "frame checksum")?;
    let expected = u32::from_le_bytes(crc);
    let actual = nova_common::checksum::crc32c(&payload);
    if expected != actual {
        return Err(Error::ProtocolError(format!(
            "frame checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
        )));
    }
    Ok(Frame {
        kind,
        request_id,
        payload,
    })
}

fn read_exact_or_protocol(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(Error::ProtocolError(format!("truncated {what}")))
        }
        Err(e) => Err(e.into()),
    }
}

/// Encode and write one [`Message`].
pub fn write_message(w: &mut impl Write, request_id: u64, msg: &Message) -> Result<()> {
    write_frame(w, msg.kind() as u8, request_id, &msg.encode_payload())
}

/// Read and decode one [`Message`], returning `(request_id, message)`.
///
/// Client-side convenience; servers that want to keep a connection alive
/// across an undecodable payload should call [`read_frame`] and
/// [`Message::decode`] separately (only the former's failures poison the
/// stream).
pub fn read_message(r: &mut impl Read) -> Result<(u64, Message)> {
    let frame = read_frame(r)?;
    let msg = Message::decode(frame.kind, &frame.payload)?;
    Ok((frame.request_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping as u8, 42, b"payload").unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(frame.kind, FrameKind::Ping as u8);
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.payload, b"payload");
    }

    #[test]
    fn clean_close_is_io_not_protocol_error() {
        let empty: &[u8] = &[];
        match read_frame(&mut &empty[..]) {
            Err(Error::Io(_)) => {}
            other => panic!("expected Io for clean close, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping as u8, 1, b"x").unwrap();
        for cut in 1..HEADER_LEN {
            match read_frame(&mut &buf[..cut]) {
                Err(Error::ProtocolError(_)) => {}
                other => panic!("cut at {cut}: expected ProtocolError, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_payload_and_checksum_are_protocol_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Get as u8, 1, b"hello").unwrap();
        for cut in HEADER_LEN..buf.len() {
            assert!(
                matches!(read_frame(&mut &buf[..cut]), Err(Error::ProtocolError(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_oversize_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping as u8, 7, b"").unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut &bad_magic[..]),
            Err(Error::ProtocolError(_))
        ));
        let mut bad_version = buf.clone();
        bad_version[4] = VERSION + 1;
        assert!(matches!(
            read_frame(&mut &bad_version[..]),
            Err(Error::ProtocolError(_))
        ));
        let mut oversized = buf.clone();
        oversized[14..18].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &oversized[..]),
            Err(Error::ProtocolError(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Put as u8, 9, b"some payload").unwrap();
        buf[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(Error::ProtocolError(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn oversized_writes_are_refused() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            write_frame(&mut NullSink, FrameKind::Put as u8, 1, &payload),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn frame_kinds_round_trip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Get,
            FrameKind::Put,
            FrameKind::Delete,
            FrameKind::MultiGet,
            FrameKind::PutBatch,
            FrameKind::ScanChunk,
            FrameKind::Ping,
            FrameKind::Health,
            FrameKind::MetricsSnapshot,
            FrameKind::CreateIndex,
            FrameKind::IndexScan,
            FrameKind::DropIndex,
            FrameKind::HelloOk,
            FrameKind::Ok,
            FrameKind::Value,
            FrameKind::Values,
            FrameKind::Entries,
            FrameKind::Pong,
            FrameKind::Report,
            FrameKind::IndexEntries,
            FrameKind::Error,
        ] {
            assert_eq!(FrameKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(FrameKind::from_u8(0x00), None);
        assert_eq!(FrameKind::from_u8(0x42), None);
    }
}
