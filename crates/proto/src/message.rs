//! Typed messages and their payload codecs.
//!
//! Payloads are built from the same primitives as the SSTable format:
//! LEB128 varints and length-prefixed slices ([`nova_common::varint`]).
//! Decoders tolerate trailing bytes they do not understand (so a payload may
//! gain trailing fields within a protocol version) but reject truncated or
//! malformed fields with [`Error::ProtocolError`].

use crate::FrameKind;
use nova_common::types::{Entry, LtcId, RangeId, StocId};
use nova_common::varint::{
    decode_length_prefixed_slice, decode_varint64, put_length_prefixed_slice, put_varint64,
};
use nova_common::{Error, ErrorCode, ReadOptions, Result, ValueType, WriteOptions};

/// A typed error as it crosses the wire: the stable [`ErrorCode`]
/// discriminant, a code-specific numeric detail (epoch for `stale_config`,
/// component/range id for the `unknown_*`/`wrong_range` family, suggested
/// backoff in microseconds for `busy`) and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Raw [`ErrorCode`] discriminant (kept raw so unknown codes from a
    /// newer peer survive round-trips).
    pub code: u8,
    /// Code-specific numeric detail.
    pub detail: u64,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// The decoded classification, if this peer knows the code.
    pub fn error_code(&self) -> Option<ErrorCode> {
        ErrorCode::from_u8(self.code)
    }

    /// True if the operation may succeed if retried. Unknown codes are
    /// treated as terminal.
    pub fn is_retryable(&self) -> bool {
        self.error_code().is_some_and(|c| c.is_retryable())
    }
}

/// Map a typed [`Error`] onto its wire representation.
pub fn error_to_wire(e: &Error) -> WireError {
    let detail = match e {
        Error::StaleConfig { epoch } => *epoch,
        Error::Busy { retry_after_micros } => *retry_after_micros,
        Error::UnknownStoc(id) => id.0 as u64,
        Error::UnknownLtc(id) => id.0 as u64,
        Error::WrongRange(id) => id.0 as u64,
        _ => 0,
    };
    WireError {
        code: e.code().as_u8(),
        detail,
        message: e.to_string(),
    }
}

/// Reconstruct a typed [`Error`] from its wire representation. Unknown
/// codes (sent by a newer peer) decode to [`Error::ProtocolError`], which is
/// terminal — the conservative choice.
pub fn wire_to_error(w: &WireError) -> Error {
    let Some(code) = w.error_code() else {
        return Error::ProtocolError(format!("unknown error code {} ({})", w.code, w.message));
    };
    match code {
        ErrorCode::NotFound => Error::NotFound,
        ErrorCode::Corruption => Error::Corruption(w.message.clone()),
        ErrorCode::UnknownStoc => Error::UnknownStoc(StocId(w.detail as u32)),
        ErrorCode::UnknownLtc => Error::UnknownLtc(LtcId(w.detail as u32)),
        ErrorCode::WrongRange => Error::WrongRange(RangeId(w.detail as u32)),
        ErrorCode::UnknownFile => Error::UnknownFile(w.message.clone()),
        ErrorCode::ShuttingDown => Error::ShuttingDown,
        ErrorCode::WriteStalled => Error::WriteStalled,
        ErrorCode::LeaseExpired => Error::LeaseExpired(w.message.clone()),
        ErrorCode::FabricUnavailable => Error::FabricUnavailable(w.message.clone()),
        ErrorCode::Io => Error::Io(w.message.clone()),
        ErrorCode::InvalidArgument => Error::InvalidArgument(w.message.clone()),
        ErrorCode::Unavailable => Error::Unavailable(w.message.clone()),
        ErrorCode::StaleConfig => Error::StaleConfig { epoch: w.detail },
        ErrorCode::Busy => Error::Busy {
            retry_after_micros: w.detail,
        },
        ErrorCode::AuthFailed => Error::AuthFailed(w.message.clone()),
        ErrorCode::ProtocolError => Error::ProtocolError(w.message.clone()),
        ErrorCode::IndexNotFound => Error::IndexNotFound(w.message.clone()),
        ErrorCode::IndexNotReady => Error::IndexNotReady(w.message.clone()),
    }
}

/// Every message that can cross the wire, requests and responses alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Authentication handshake.
    Hello {
        /// Tenant name.
        tenant: String,
        /// Shared-secret token.
        token: String,
    },
    /// Point read.
    Get {
        /// Per-operation read options.
        options: ReadOptions,
        /// The key.
        key: Vec<u8>,
    },
    /// Single-record write.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Single-record delete.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
    /// Scatter-gather multi-key read.
    MultiGet {
        /// Per-operation read options.
        options: ReadOptions,
        /// The keys, in request order.
        keys: Vec<Vec<u8>>,
    },
    /// Batched write.
    PutBatch {
        /// Per-batch write options.
        options: WriteOptions,
        /// Key/value pairs.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// One chunk of a streaming range scan. `options.limit` bounds the
    /// entries returned; the client resumes with the bytewise successor of
    /// the last key it received.
    ScanChunk {
        /// Per-operation read options (`limit` is the chunk size).
        options: ReadOptions,
        /// Inclusive start key.
        start: Vec<u8>,
        /// Exclusive end key (`None` scans to the end of the keyspace).
        end: Option<Vec<u8>>,
    },
    /// Liveness probe.
    Ping,
    /// Admin: cluster health report.
    Health,
    /// Admin: metrics registry snapshot.
    MetricsSnapshot,
    /// Admin: create a secondary index and backfill it.
    CreateIndex {
        /// Index name.
        name: String,
        /// Secondary-key projection: `None` indexes the whole value,
        /// `Some((offset, len))` a fixed slice of it.
        projection: Option<(u64, u64)>,
    },
    /// One chunk of a streaming secondary-index scan. The client resumes
    /// with the opaque token from the previous [`Message::IndexEntries`].
    IndexScan {
        /// Index name.
        name: String,
        /// Inclusive secondary-key lower bound (`None` = unbounded).
        sec_start: Option<Vec<u8>>,
        /// Exclusive secondary-key upper bound (`None` = unbounded).
        sec_end: Option<Vec<u8>>,
        /// Opaque resume token from the previous chunk.
        resume: Option<Vec<u8>>,
        /// Maximum entries in this chunk.
        limit: u64,
    },
    /// Admin: drop a secondary index and purge its entries.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// Handshake accepted.
    HelloOk {
        /// Whether the authenticated tenant may issue admin frames.
        admin: bool,
    },
    /// Write acknowledged.
    Ok,
    /// Optional single value.
    Value {
        /// The value, or `None` if the key is absent.
        value: Option<Vec<u8>>,
    },
    /// Optional values, positionally matching the requested keys.
    Values {
        /// One optional value per requested key.
        values: Vec<Option<Vec<u8>>>,
    },
    /// Scan chunk results. Fewer entries than the requested limit means the
    /// scan is exhausted.
    Entries {
        /// The entries, in key order.
        entries: Vec<Entry>,
    },
    /// Liveness response.
    Pong,
    /// Admin JSON document.
    Report {
        /// The JSON body.
        json: String,
    },
    /// Index scan chunk results.
    IndexEntries {
        /// `(secondary, primary)` pairs in index order.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Pass back verbatim to fetch the next chunk; `None` means the
        /// scan is exhausted.
        resume: Option<Vec<u8>>,
    },
    /// Typed error response.
    Error(WireError),
}

impl Message {
    /// The frame kind this message travels under.
    pub fn kind(&self) -> FrameKind {
        match self {
            Message::Hello { .. } => FrameKind::Hello,
            Message::Get { .. } => FrameKind::Get,
            Message::Put { .. } => FrameKind::Put,
            Message::Delete { .. } => FrameKind::Delete,
            Message::MultiGet { .. } => FrameKind::MultiGet,
            Message::PutBatch { .. } => FrameKind::PutBatch,
            Message::ScanChunk { .. } => FrameKind::ScanChunk,
            Message::Ping => FrameKind::Ping,
            Message::Health => FrameKind::Health,
            Message::MetricsSnapshot => FrameKind::MetricsSnapshot,
            Message::CreateIndex { .. } => FrameKind::CreateIndex,
            Message::IndexScan { .. } => FrameKind::IndexScan,
            Message::DropIndex { .. } => FrameKind::DropIndex,
            Message::HelloOk { .. } => FrameKind::HelloOk,
            Message::Ok => FrameKind::Ok,
            Message::Value { .. } => FrameKind::Value,
            Message::Values { .. } => FrameKind::Values,
            Message::Entries { .. } => FrameKind::Entries,
            Message::Pong => FrameKind::Pong,
            Message::Report { .. } => FrameKind::Report,
            Message::IndexEntries { .. } => FrameKind::IndexEntries,
            Message::Error(_) => FrameKind::Error,
        }
    }

    /// Encode the payload bytes (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello { tenant, token } => {
                put_length_prefixed_slice(&mut buf, tenant.as_bytes());
                put_length_prefixed_slice(&mut buf, token.as_bytes());
            }
            Message::Get { options, key } => {
                put_read_options(&mut buf, options);
                put_length_prefixed_slice(&mut buf, key);
            }
            Message::Put { key, value } => {
                put_length_prefixed_slice(&mut buf, key);
                put_length_prefixed_slice(&mut buf, value);
            }
            Message::Delete { key } => {
                put_length_prefixed_slice(&mut buf, key);
            }
            Message::MultiGet { options, keys } => {
                put_read_options(&mut buf, options);
                put_varint64(&mut buf, keys.len() as u64);
                for key in keys {
                    put_length_prefixed_slice(&mut buf, key);
                }
            }
            Message::PutBatch { options, pairs } => {
                buf.push(options.group_commit as u8);
                put_varint64(&mut buf, pairs.len() as u64);
                for (key, value) in pairs {
                    put_length_prefixed_slice(&mut buf, key);
                    put_length_prefixed_slice(&mut buf, value);
                }
            }
            Message::ScanChunk { options, start, end } => {
                put_read_options(&mut buf, options);
                put_length_prefixed_slice(&mut buf, start);
                match end {
                    Some(end) => {
                        buf.push(1);
                        put_length_prefixed_slice(&mut buf, end);
                    }
                    None => buf.push(0),
                }
            }
            Message::Ping | Message::Health | Message::MetricsSnapshot | Message::Ok | Message::Pong => {}
            Message::CreateIndex { name, projection } => {
                put_length_prefixed_slice(&mut buf, name.as_bytes());
                match projection {
                    Some((offset, len)) => {
                        buf.push(1);
                        put_varint64(&mut buf, *offset);
                        put_varint64(&mut buf, *len);
                    }
                    None => buf.push(0),
                }
            }
            Message::IndexScan {
                name,
                sec_start,
                sec_end,
                resume,
                limit,
            } => {
                put_length_prefixed_slice(&mut buf, name.as_bytes());
                put_optional_slice(&mut buf, sec_start.as_deref());
                put_optional_slice(&mut buf, sec_end.as_deref());
                put_optional_slice(&mut buf, resume.as_deref());
                put_varint64(&mut buf, *limit);
            }
            Message::DropIndex { name } => put_length_prefixed_slice(&mut buf, name.as_bytes()),
            Message::IndexEntries { entries, resume } => {
                put_varint64(&mut buf, entries.len() as u64);
                for (secondary, primary) in entries {
                    put_length_prefixed_slice(&mut buf, secondary);
                    put_length_prefixed_slice(&mut buf, primary);
                }
                put_optional_slice(&mut buf, resume.as_deref());
            }
            Message::HelloOk { admin } => buf.push(*admin as u8),
            Message::Value { value } => put_optional_slice(&mut buf, value.as_deref()),
            Message::Values { values } => {
                put_varint64(&mut buf, values.len() as u64);
                for value in values {
                    put_optional_slice(&mut buf, value.as_deref());
                }
            }
            Message::Entries { entries } => {
                put_varint64(&mut buf, entries.len() as u64);
                for entry in entries {
                    put_length_prefixed_slice(&mut buf, &entry.key);
                    put_varint64(&mut buf, entry.sequence);
                    buf.push(entry.value_type as u8);
                    put_length_prefixed_slice(&mut buf, &entry.value);
                }
            }
            Message::Report { json } => put_length_prefixed_slice(&mut buf, json.as_bytes()),
            Message::Error(e) => {
                buf.push(e.code);
                put_varint64(&mut buf, e.detail);
                put_length_prefixed_slice(&mut buf, e.message.as_bytes());
            }
        }
        buf
    }

    /// Decode a payload for the given raw kind byte.
    ///
    /// Failures return [`Error::ProtocolError`]; the frame itself was intact
    /// (header + checksum verified), so the connection's framing survives —
    /// a server can report the error in-band and keep the connection.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Message> {
        let Some(kind) = FrameKind::from_u8(kind) else {
            return Err(Error::ProtocolError(format!("unknown frame kind {kind:#04x}")));
        };
        let mut r = Reader { buf: payload };
        let msg = match kind {
            FrameKind::Hello => Message::Hello {
                tenant: r.string()?,
                token: r.string()?,
            },
            FrameKind::Get => Message::Get {
                options: read_read_options(&mut r)?,
                key: r.slice()?.to_vec(),
            },
            FrameKind::Put => Message::Put {
                key: r.slice()?.to_vec(),
                value: r.slice()?.to_vec(),
            },
            FrameKind::Delete => Message::Delete {
                key: r.slice()?.to_vec(),
            },
            FrameKind::MultiGet => {
                let options = read_read_options(&mut r)?;
                let count = r.count(payload.len())?;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(r.slice()?.to_vec());
                }
                Message::MultiGet { options, keys }
            }
            FrameKind::PutBatch => {
                let options = WriteOptions {
                    group_commit: r.byte()? != 0,
                };
                let count = r.count(payload.len())?;
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = r.slice()?.to_vec();
                    let value = r.slice()?.to_vec();
                    pairs.push((key, value));
                }
                Message::PutBatch { options, pairs }
            }
            FrameKind::ScanChunk => {
                let options = read_read_options(&mut r)?;
                let start = r.slice()?.to_vec();
                let end = match r.byte()? {
                    0 => None,
                    _ => Some(r.slice()?.to_vec()),
                };
                Message::ScanChunk { options, start, end }
            }
            FrameKind::Ping => Message::Ping,
            FrameKind::Health => Message::Health,
            FrameKind::MetricsSnapshot => Message::MetricsSnapshot,
            FrameKind::HelloOk => Message::HelloOk {
                admin: r.byte()? != 0,
            },
            FrameKind::Ok => Message::Ok,
            FrameKind::Value => Message::Value {
                value: read_optional_slice(&mut r)?,
            },
            FrameKind::Values => {
                let count = r.count(payload.len())?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(read_optional_slice(&mut r)?);
                }
                Message::Values { values }
            }
            FrameKind::Entries => {
                let count = r.count(payload.len())?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = r.slice()?.to_vec();
                    let sequence = r.varint()?;
                    let value_type = ValueType::from_u8(r.byte()?)
                        .ok_or_else(|| Error::ProtocolError("invalid entry value type".into()))?;
                    let value = r.slice()?.to_vec();
                    entries.push(Entry {
                        key: key.into(),
                        sequence,
                        value_type,
                        value: value.into(),
                    });
                }
                Message::Entries { entries }
            }
            FrameKind::Pong => Message::Pong,
            FrameKind::Report => Message::Report { json: r.string()? },
            FrameKind::CreateIndex => {
                let name = r.string()?;
                let projection = match r.byte()? {
                    0 => None,
                    _ => Some((r.varint()?, r.varint()?)),
                };
                Message::CreateIndex { name, projection }
            }
            FrameKind::IndexScan => Message::IndexScan {
                name: r.string()?,
                sec_start: read_optional_slice(&mut r)?,
                sec_end: read_optional_slice(&mut r)?,
                resume: read_optional_slice(&mut r)?,
                limit: r.varint()?,
            },
            FrameKind::DropIndex => Message::DropIndex { name: r.string()? },
            FrameKind::IndexEntries => {
                let count = r.count(payload.len())?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let secondary = r.slice()?.to_vec();
                    let primary = r.slice()?.to_vec();
                    entries.push((secondary, primary));
                }
                let resume = read_optional_slice(&mut r)?;
                Message::IndexEntries { entries, resume }
            }
            FrameKind::Error => Message::Error(WireError {
                code: r.byte()?,
                detail: r.varint()?,
                message: r.string()?,
            }),
        };
        Ok(msg)
    }
}

fn put_read_options(buf: &mut Vec<u8>, options: &ReadOptions) {
    let mut flags = 0u8;
    if options.fill_cache {
        flags |= 0x01;
    }
    if options.readahead.is_some() {
        flags |= 0x02;
    }
    buf.push(flags);
    if let Some(readahead) = options.readahead {
        put_varint64(buf, readahead as u64);
    }
    put_varint64(buf, options.limit as u64);
}

fn read_read_options(r: &mut Reader<'_>) -> Result<ReadOptions> {
    let flags = r.byte()?;
    let readahead = if flags & 0x02 != 0 {
        Some(r.varint()? as usize)
    } else {
        None
    };
    let limit = r.varint()? as usize;
    Ok(ReadOptions {
        fill_cache: flags & 0x01 != 0,
        readahead,
        limit,
    })
}

fn put_optional_slice(buf: &mut Vec<u8>, value: Option<&[u8]>) {
    match value {
        Some(v) => {
            buf.push(1);
            put_length_prefixed_slice(buf, v);
        }
        None => buf.push(0),
    }
}

fn read_optional_slice(r: &mut Reader<'_>) -> Result<Option<Vec<u8>>> {
    match r.byte()? {
        0 => Ok(None),
        _ => Ok(Some(r.slice()?.to_vec())),
    }
}

/// Cursor over a payload buffer; every accessor maps malformed input to
/// [`Error::ProtocolError`].
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8> {
        let (&first, rest) = self
            .buf
            .split_first()
            .ok_or_else(|| Error::ProtocolError("truncated payload field".into()))?;
        self.buf = rest;
        Ok(first)
    }

    fn varint(&mut self) -> Result<u64> {
        let (v, n) =
            decode_varint64(self.buf).map_err(|e| Error::ProtocolError(format!("bad varint: {e}")))?;
        self.buf = &self.buf[n..];
        Ok(v)
    }

    fn slice(&mut self) -> Result<&'a [u8]> {
        let (s, n) = decode_length_prefixed_slice(self.buf)
            .map_err(|e| Error::ProtocolError(format!("bad length-prefixed field: {e}")))?;
        self.buf = &self.buf[n..];
        Ok(s)
    }

    fn string(&mut self) -> Result<String> {
        let s = self.slice()?;
        String::from_utf8(s.to_vec()).map_err(|_| Error::ProtocolError("non-UTF-8 string field".into()))
    }

    /// A repetition count. Bounded by the payload size (every element costs
    /// at least one byte) so a corrupt count cannot drive a huge
    /// `Vec::with_capacity`.
    fn count(&mut self, payload_len: usize) -> Result<usize> {
        let count = self.varint()? as usize;
        if count > payload_len {
            return Err(Error::ProtocolError(format!(
                "repetition count {count} exceeds payload size {payload_len}"
            )));
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(msg: &Message) -> Message {
        let payload = msg.encode_payload();
        Message::decode(msg.kind() as u8, &payload).expect("decode")
    }

    #[test]
    fn every_frame_type_round_trips() {
        let messages = vec![
            Message::Hello {
                tenant: "acme".into(),
                token: "s3cret".into(),
            },
            Message::Get {
                options: ReadOptions::no_fill().with_readahead(3),
                key: b"k1".to_vec(),
            },
            Message::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            Message::Delete {
                key: b"gone".to_vec(),
            },
            Message::MultiGet {
                options: ReadOptions::default(),
                keys: vec![b"a".to_vec(), b"b".to_vec(), Vec::new()],
            },
            Message::PutBatch {
                options: WriteOptions::no_group_commit(),
                pairs: vec![(b"k1".to_vec(), b"v1".to_vec()), (b"k2".to_vec(), Vec::new())],
            },
            Message::ScanChunk {
                options: ReadOptions::default().with_chunk(7),
                start: b"a".to_vec(),
                end: Some(b"z".to_vec()),
            },
            Message::ScanChunk {
                options: ReadOptions::default(),
                start: Vec::new(),
                end: None,
            },
            Message::Ping,
            Message::Health,
            Message::MetricsSnapshot,
            Message::CreateIndex {
                name: "by_cat".into(),
                projection: Some((4, 8)),
            },
            Message::CreateIndex {
                name: "whole".into(),
                projection: None,
            },
            Message::IndexScan {
                name: "by_cat".into(),
                sec_start: Some(b"a".to_vec()),
                sec_end: Some(b"m".to_vec()),
                resume: None,
                limit: 128,
            },
            Message::IndexScan {
                name: "by_cat".into(),
                sec_start: None,
                sec_end: None,
                resume: Some(b"\xfe\x00\x00\x00\x01token".to_vec()),
                limit: 1,
            },
            Message::DropIndex {
                name: "by_cat".into(),
            },
            Message::IndexEntries {
                entries: vec![(b"cat".to_vec(), b"k1".to_vec()), (Vec::new(), b"k2".to_vec())],
                resume: Some(b"next".to_vec()),
            },
            Message::IndexEntries {
                entries: Vec::new(),
                resume: None,
            },
            Message::HelloOk { admin: true },
            Message::Ok,
            Message::Value {
                value: Some(b"v".to_vec()),
            },
            Message::Value { value: None },
            Message::Values {
                values: vec![Some(b"x".to_vec()), None, Some(Vec::new())],
            },
            Message::Entries {
                entries: vec![Entry::put("k", 7, "v"), Entry::delete("d", 8)],
            },
            Message::Pong,
            Message::Report {
                json: "{\"ok\":true}".into(),
            },
            Message::Error(error_to_wire(&Error::StaleConfig { epoch: 3 })),
        ];
        for msg in messages {
            assert_eq!(round_trip(&msg), msg);
        }
    }

    #[test]
    fn unknown_kind_and_truncated_payloads_are_protocol_errors() {
        assert!(matches!(Message::decode(0x55, b""), Err(Error::ProtocolError(_))));
        let payload = Message::Put {
            key: b"key".to_vec(),
            value: b"value".to_vec(),
        }
        .encode_payload();
        for cut in 0..payload.len() {
            assert!(
                matches!(
                    Message::decode(FrameKind::Put as u8, &payload[..cut]),
                    Err(Error::ProtocolError(_))
                ),
                "cut at {cut}"
            );
        }
        let payload = Message::IndexScan {
            name: "by_cat".into(),
            sec_start: Some(b"a".to_vec()),
            sec_end: None,
            resume: Some(b"r".to_vec()),
            limit: 9,
        }
        .encode_payload();
        for cut in 0..payload.len() {
            assert!(
                matches!(
                    Message::decode(FrameKind::IndexScan as u8, &payload[..cut]),
                    Err(Error::ProtocolError(_))
                ),
                "index scan cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_counts_are_bounded() {
        // A Values payload claiming u64::MAX entries must be rejected
        // before any allocation happens.
        let mut payload = Vec::new();
        put_varint64(&mut payload, u64::MAX);
        assert!(matches!(
            Message::decode(FrameKind::Values as u8, &payload),
            Err(Error::ProtocolError(_))
        ));
    }

    #[test]
    fn every_error_variant_round_trips_through_the_wire() {
        let errors = vec![
            Error::NotFound,
            Error::Corruption("x".into()),
            Error::UnknownStoc(StocId(9)),
            Error::UnknownLtc(LtcId(4)),
            Error::WrongRange(RangeId(2)),
            Error::UnknownFile("f".into()),
            Error::ShuttingDown,
            Error::WriteStalled,
            Error::LeaseExpired("lease expired: l".into()),
            Error::FabricUnavailable("fabric unavailable: n".into()),
            Error::Io("i/o error: io".into()),
            Error::InvalidArgument("invalid argument: a".into()),
            Error::Unavailable("unavailable: u".into()),
            Error::StaleConfig { epoch: 88 },
            Error::Busy {
                retry_after_micros: 1_500,
            },
            Error::AuthFailed("authentication failed: t".into()),
            Error::ProtocolError("protocol error: p".into()),
            Error::IndexNotFound("index not found: i".into()),
            Error::IndexNotReady("index not ready: i".into()),
        ];
        for e in errors {
            let wire = error_to_wire(&e);
            let back = wire_to_error(&wire);
            // Codes and classification always survive; message-carrying
            // variants re-wrap the Display string, so compare codes.
            assert_eq!(back.code(), e.code());
            assert_eq!(back.is_retryable(), e.is_retryable());
            assert_eq!(wire.is_retryable(), e.is_retryable());
        }
        // Detail-carrying variants reconstruct exactly.
        assert_eq!(
            wire_to_error(&error_to_wire(&Error::StaleConfig { epoch: 12 })),
            Error::StaleConfig { epoch: 12 }
        );
        assert_eq!(
            wire_to_error(&error_to_wire(&Error::Busy {
                retry_after_micros: 7
            })),
            Error::Busy {
                retry_after_micros: 7
            }
        );
        assert_eq!(
            wire_to_error(&error_to_wire(&Error::UnknownStoc(StocId(3)))),
            Error::UnknownStoc(StocId(3))
        );
        // Unknown codes decode terminal.
        let unknown = WireError {
            code: 250,
            detail: 0,
            message: "from the future".into(),
        };
        assert!(!unknown.is_retryable());
        assert!(matches!(wire_to_error(&unknown), Error::ProtocolError(_)));
    }

    fn arb_read_options() -> impl Strategy<Value = ReadOptions> {
        (any::<bool>(), any::<bool>(), 0usize..4096, 1usize..10_000).prop_map(
            |(fill_cache, has_readahead, readahead, limit)| ReadOptions {
                fill_cache,
                readahead: has_readahead.then_some(readahead),
                limit,
            },
        )
    }

    fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..64)
    }

    fn arb_opt_bytes() -> impl Strategy<Value = Option<Vec<u8>>> {
        (any::<bool>(), arb_bytes()).prop_map(|(some, bytes)| some.then_some(bytes))
    }

    fn arb_string() -> impl Strategy<Value = String> {
        // Printable ASCII, so the UTF-8 round trip is trivially valid.
        proptest::collection::vec(0x20u8..0x7f, 0..24)
            .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
    }

    proptest! {
        #[test]
        fn prop_get_round_trips(options in arb_read_options(), key in arb_bytes()) {
            let msg = Message::Get { options, key };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_put_round_trips(key in arb_bytes(), value in arb_bytes()) {
            let msg = Message::Put { key, value };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_delete_round_trips(key in arb_bytes()) {
            let msg = Message::Delete { key };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_multi_get_round_trips(
            options in arb_read_options(),
            keys in proptest::collection::vec(arb_bytes(), 0..16),
        ) {
            let msg = Message::MultiGet { options, keys };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_put_batch_round_trips(
            group_commit in any::<bool>(),
            pairs in proptest::collection::vec((arb_bytes(), arb_bytes()), 0..16),
        ) {
            let msg = Message::PutBatch { options: WriteOptions { group_commit }, pairs };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_scan_chunk_round_trips(
            options in arb_read_options(),
            start in arb_bytes(),
            end in arb_opt_bytes(),
        ) {
            let msg = Message::ScanChunk { options, start, end };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_values_round_trips(
            values in proptest::collection::vec(arb_opt_bytes(), 0..16),
        ) {
            let msg = Message::Values { values };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_entries_round_trips(
            raw in proptest::collection::vec((arb_bytes(), any::<u64>(), any::<bool>(), arb_bytes()), 0..16),
        ) {
            let entries = raw.into_iter().map(|(key, sequence, live, value)| Entry {
                key: key.into(),
                sequence,
                value_type: if live { ValueType::Value } else { ValueType::Deletion },
                value: value.into(),
            }).collect();
            let msg = Message::Entries { entries };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_index_scan_round_trips(
            name in arb_string(),
            sec_start in arb_opt_bytes(),
            sec_end in arb_opt_bytes(),
            resume in arb_opt_bytes(),
            limit in any::<u64>(),
        ) {
            let msg = Message::IndexScan { name, sec_start, sec_end, resume, limit };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_index_entries_round_trips(
            entries in proptest::collection::vec((arb_bytes(), arb_bytes()), 0..16),
            resume in arb_opt_bytes(),
        ) {
            let msg = Message::IndexEntries { entries, resume };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_hello_and_report_round_trip(tenant in arb_string(), token in arb_string()) {
            let msg = Message::Hello { tenant: tenant.clone(), token };
            prop_assert_eq!(round_trip(&msg), msg);
            let msg = Message::Report { json: tenant };
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_error_frames_round_trip(code in any::<u8>(), detail in any::<u64>(), message in arb_string()) {
            let msg = Message::Error(WireError { code, detail, message });
            prop_assert_eq!(round_trip(&msg), msg);
        }

        #[test]
        fn prop_arbitrary_garbage_never_panics(kind in any::<u8>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding must fail cleanly (or succeed), never panic.
            let _ = Message::decode(kind, &payload);
        }

        #[test]
        fn prop_whole_frames_round_trip(request_id in any::<u64>(), key in arb_bytes(), value in arb_bytes()) {
            let msg = Message::Put { key, value };
            let mut buf = Vec::new();
            crate::write_message(&mut buf, request_id, &msg).unwrap();
            let (id, back) = crate::read_message(&mut &buf[..]).unwrap();
            prop_assert_eq!(id, request_id);
            prop_assert_eq!(back, msg);
        }
    }
}
