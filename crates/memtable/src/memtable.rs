//! The memtable: an in-memory, sorted buffer of recent writes.
//!
//! Every memtable has a unique [`MemtableId`] (`mid`) referenced by the
//! lookup index (Section 4.1.1) and a *generation id* that is incremented on
//! every Drange reorganisation (Section 4.1): flushing respects generation
//! order so that a get can stop at the first level containing its key.

use crate::skiplist::SkipList;
use bytes::Bytes;
use nova_common::types::{compare_internal_keys, pack_trailer, unpack_trailer, Entry};
use nova_common::{MemtableId, SequenceNumber, Value, ValueType};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Outcome of a point lookup against a memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The key's most recent version at or below the snapshot is a value.
    Found(Value),
    /// The key's most recent version at or below the snapshot is a tombstone.
    Deleted,
    /// The memtable contains no version of the key at or below the snapshot.
    NotFound,
}

/// An in-memory write buffer backed by a concurrent skiplist.
///
/// Entries are keyed by encoded internal key (user key + inverted sequence
/// trailer) so iteration yields versions of the same user key newest-first.
pub struct Memtable {
    id: MemtableId,
    generation: u64,
    table: SkipList,
    target_size: usize,
    immutable: AtomicBool,
}

impl std::fmt::Debug for Memtable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memtable")
            .field("id", &self.id)
            .field("generation", &self.generation)
            .field("entries", &self.table.len())
            .field("bytes", &self.table.approximate_bytes())
            .field("immutable", &self.immutable.load(Ordering::Relaxed))
            .finish()
    }
}

fn internal_compare(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    compare_internal_keys(a, b)
}

/// Encode the skiplist key for (user key, sequence, type).
fn encode_skiplist_key(user_key: &[u8], seq: SequenceNumber, vt: ValueType) -> Vec<u8> {
    let mut buf = Vec::with_capacity(user_key.len() + 8);
    buf.extend_from_slice(user_key);
    buf.extend_from_slice(&pack_trailer(seq, vt).to_le_bytes());
    buf
}

fn decode_skiplist_key(key: &[u8]) -> (&[u8], SequenceNumber, ValueType) {
    let (user, trailer) = key.split_at(key.len() - 8);
    let trailer = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let (seq, vt) = unpack_trailer(trailer);
    (user, seq, vt)
}

impl Memtable {
    /// Create an empty memtable.
    ///
    /// `target_size` is the paper's τ: once `approximate_bytes` reaches it the
    /// owning Drange marks the memtable immutable and rotates to a new one.
    pub fn new(id: MemtableId, generation: u64, target_size: usize) -> Arc<Self> {
        Arc::new(Memtable {
            id,
            generation,
            table: SkipList::new(internal_compare),
            target_size,
            immutable: AtomicBool::new(false),
        })
    }

    /// This memtable's unique id.
    pub fn id(&self) -> MemtableId {
        self.id
    }

    /// The reorganisation generation this memtable belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configured target size (τ).
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Insert a write (put or delete).
    pub fn add(&self, seq: SequenceNumber, vt: ValueType, user_key: &[u8], value: &[u8]) {
        debug_assert!(
            !self.is_immutable(),
            "writes must not target an immutable memtable"
        );
        let key = encode_skiplist_key(user_key, seq, vt);
        let inserted = self.table.insert(&key, value);
        debug_assert!(inserted, "sequence numbers make internal keys unique");
    }

    /// Insert an [`Entry`].
    pub fn add_entry(&self, entry: &Entry) {
        self.add(entry.sequence, entry.value_type, &entry.key, &entry.value);
    }

    /// Look up the newest version of `user_key` visible at `snapshot`.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> LookupResult {
        // Seek to the first entry for this user key at or below the snapshot.
        let seek_key = encode_skiplist_key(user_key, snapshot, ValueType::Value);
        let mut it = self.table.iter();
        it.seek(&seek_key);
        if !it.valid() {
            return LookupResult::NotFound;
        }
        let (found_user, _seq, vt) = decode_skiplist_key(it.key());
        if found_user != user_key {
            return LookupResult::NotFound;
        }
        match vt {
            ValueType::Value => LookupResult::Found(Bytes::copy_from_slice(it.value())),
            ValueType::Deletion => LookupResult::Deleted,
        }
    }

    /// Number of entries (all versions).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Approximate memory consumed by the memtable.
    pub fn approximate_bytes(&self) -> usize {
        self.table.approximate_bytes()
    }

    /// True once the memtable has reached its target size.
    pub fn is_full(&self) -> bool {
        self.approximate_bytes() >= self.target_size
    }

    /// Mark the memtable immutable. Returns `false` if it already was.
    pub fn mark_immutable(&self) -> bool {
        !self.immutable.swap(true, Ordering::SeqCst)
    }

    /// True if the memtable has been marked immutable.
    pub fn is_immutable(&self) -> bool {
        self.immutable.load(Ordering::SeqCst)
    }

    /// Iterate over every version in internal-key order.
    pub fn iter(&self) -> MemtableIterator<'_> {
        MemtableIterator {
            inner: self.table.iter(),
            started: false,
        }
    }

    /// The number of distinct user keys, and the smallest/largest user keys.
    ///
    /// Used by the flush path (Section 4.2): memtables with fewer unique keys
    /// than the flush threshold are merged rather than written to a StoC.
    pub fn key_statistics(&self) -> KeyStatistics {
        let mut it = self.table.iter();
        it.seek_to_first();
        let mut unique = 0usize;
        let mut smallest: Option<Vec<u8>> = None;
        let mut largest: Option<Vec<u8>> = None;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            let (user, _, _) = decode_skiplist_key(it.key());
            if prev.as_deref() != Some(user) {
                unique += 1;
                prev = Some(user.to_vec());
                if smallest.is_none() {
                    smallest = Some(user.to_vec());
                }
                largest = Some(user.to_vec());
            }
            it.next();
        }
        KeyStatistics {
            unique_keys: unique,
            smallest,
            largest,
        }
    }
}

/// Statistics about the user keys stored in a memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyStatistics {
    /// Number of distinct user keys.
    pub unique_keys: usize,
    /// Smallest user key, if any.
    pub smallest: Option<Vec<u8>>,
    /// Largest user key, if any.
    pub largest: Option<Vec<u8>>,
}

/// Iterator over a memtable yielding decoded entries in internal-key order
/// (ascending user key, newest version first).
pub struct MemtableIterator<'a> {
    inner: crate::skiplist::SkipListIter<'a>,
    started: bool,
}

impl MemtableIterator<'_> {
    /// Position at the first entry whose user key is `>= user_key`.
    pub fn seek(&mut self, user_key: &[u8]) {
        let seek_key = encode_skiplist_key(
            user_key,
            nova_common::types::MAX_SEQUENCE_NUMBER,
            ValueType::Value,
        );
        self.inner.seek(&seek_key);
        self.started = true;
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
        self.started = true;
    }

    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.started && self.inner.valid()
    }

    /// The entry at the current position. Panics if invalid.
    pub fn entry(&self) -> Entry {
        let (user, seq, vt) = decode_skiplist_key(self.inner.key());
        Entry {
            key: Bytes::copy_from_slice(user),
            sequence: seq,
            value_type: vt,
            value: Bytes::copy_from_slice(self.inner.value()),
        }
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        self.inner.next();
    }
}

impl<'a> Iterator for MemtableIterator<'a> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if !self.started {
            self.seek_to_first();
        }
        if !self.inner.valid() {
            return None;
        }
        let e = self.entry();
        self.inner.next();
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::types::MAX_SEQUENCE_NUMBER;

    fn table() -> Arc<Memtable> {
        Memtable::new(MemtableId(1), 0, 1 << 20)
    }

    #[test]
    fn put_get_latest_version() {
        let m = table();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(5, ValueType::Value, b"k", b"v2");
        m.add(3, ValueType::Value, b"k", b"ignored");
        assert_eq!(
            m.get(b"k", MAX_SEQUENCE_NUMBER),
            LookupResult::Found(Bytes::from_static(b"v2"))
        );
        // Snapshot reads see the version visible at that sequence.
        assert_eq!(
            m.get(b"k", 4),
            LookupResult::Found(Bytes::from_static(b"ignored"))
        );
        assert_eq!(m.get(b"k", 2), LookupResult::Found(Bytes::from_static(b"v1")));
        assert_eq!(m.get(b"missing", MAX_SEQUENCE_NUMBER), LookupResult::NotFound);
    }

    #[test]
    fn deletes_produce_tombstones() {
        let m = table();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", MAX_SEQUENCE_NUMBER), LookupResult::Deleted);
        assert_eq!(m.get(b"k", 1), LookupResult::Found(Bytes::from_static(b"v")));
    }

    #[test]
    fn adjacent_keys_do_not_interfere() {
        let m = table();
        m.add(1, ValueType::Value, b"aa", b"1");
        m.add(2, ValueType::Value, b"ab", b"2");
        assert_eq!(m.get(b"a", MAX_SEQUENCE_NUMBER), LookupResult::NotFound);
        assert_eq!(
            m.get(b"aa", MAX_SEQUENCE_NUMBER),
            LookupResult::Found(Bytes::from_static(b"1"))
        );
        assert_eq!(m.get(b"aaa", MAX_SEQUENCE_NUMBER), LookupResult::NotFound);
    }

    #[test]
    fn size_accounting_and_full_detection() {
        let m = Memtable::new(MemtableId(2), 0, 512);
        assert!(!m.is_full());
        for i in 0..10u64 {
            m.add(i, ValueType::Value, format!("key-{i}").as_bytes(), &[0u8; 32]);
        }
        assert!(m.is_full());
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
    }

    #[test]
    fn immutability_flag_is_sticky() {
        let m = table();
        assert!(!m.is_immutable());
        assert!(m.mark_immutable());
        assert!(m.is_immutable());
        assert!(!m.mark_immutable());
    }

    #[test]
    fn iterator_yields_sorted_entries() {
        let m = table();
        m.add(3, ValueType::Value, b"b", b"b3");
        m.add(1, ValueType::Value, b"a", b"a1");
        m.add(2, ValueType::Value, b"b", b"b2");
        let entries: Vec<Entry> = m.iter().collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].key, Bytes::from_static(b"a"));
        // Versions of "b" appear newest-first.
        assert_eq!(entries[1].sequence, 3);
        assert_eq!(entries[2].sequence, 2);
    }

    #[test]
    fn iterator_seek_by_user_key() {
        let m = table();
        for (i, k) in ["a", "c", "e"].iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, k.as_bytes(), b"v");
        }
        let mut it = m.iter();
        it.seek(b"b");
        assert!(it.valid());
        assert_eq!(it.entry().key, Bytes::from_static(b"c"));
        it.seek(b"z");
        assert!(!it.valid());
    }

    #[test]
    fn key_statistics_counts_unique_user_keys() {
        let m = table();
        m.add(1, ValueType::Value, b"a", b"");
        m.add(2, ValueType::Value, b"a", b"");
        m.add(3, ValueType::Value, b"b", b"");
        let stats = m.key_statistics();
        assert_eq!(stats.unique_keys, 2);
        assert_eq!(stats.smallest.as_deref(), Some(&b"a"[..]));
        assert_eq!(stats.largest.as_deref(), Some(&b"b"[..]));

        let empty = table();
        let stats = empty.key_statistics();
        assert_eq!(stats.unique_keys, 0);
        assert!(stats.smallest.is_none());
    }

    #[test]
    fn generation_and_id_are_preserved() {
        let m = Memtable::new(MemtableId(42), 7, 1024);
        assert_eq!(m.id(), MemtableId(42));
        assert_eq!(m.generation(), 7);
        assert_eq!(m.target_size(), 1024);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let m = Memtable::new(MemtableId(1), 0, usize::MAX);
        let m2 = Arc::clone(&m);
        let writer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                m2.add(
                    i + 1,
                    ValueType::Value,
                    format!("k{:06}", i % 1000).as_bytes(),
                    b"v",
                );
            }
        });
        for _ in 0..50 {
            let _ = m.get(b"k000500", MAX_SEQUENCE_NUMBER);
        }
        writer.join().unwrap();
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.key_statistics().unique_keys, 1000);
    }
}
