//! # nova-memtable
//!
//! The in-memory write buffer used by Nova-LSM's LTC and by the monolithic
//! baselines: a concurrent skiplist keyed by internal keys, with generation
//! ids used during Drange reorganisation (Section 4.1 of the paper) and the
//! per-memtable unique ids referenced by the lookup index (Section 4.1.1).
//!
//! The skiplist follows LevelDB's design: lock-free readers, serialized
//! writers, arena-lifetime nodes. The paper's observation that "with large
//! memory, it is beneficial to have many small memtables instead of a few
//! large ones" (Section 2.1) is why an LTC instantiates many of these — one
//! active memtable per Drange — rather than one large one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod memtable;
pub mod skiplist;

pub use memtable::{KeyStatistics, LookupResult, Memtable, MemtableIterator};
pub use skiplist::{SkipList, SkipListIter};
