//! A concurrent skiplist in the style of LevelDB's `SkipList`.
//!
//! * Writers are internally serialized by a mutex (the memtable above this
//!   structure allows many concurrent writers; the paper relies on multiple
//!   *active memtables* — one per Drange — to reduce contention on this
//!   mutex, see Section 4.1).
//! * Readers never take a lock: they traverse `AtomicPtr` links with acquire
//!   loads, which is safe because nodes are never unlinked or freed until the
//!   whole list is dropped.
//!
//! Keys are arbitrary byte strings compared with a caller-provided ordering
//! function; the memtable stores encoded internal keys so that versions of
//! the same user key are adjacent and ordered newest-first.

use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Maximum tower height. With branching factor 4 this supports hundreds of
/// millions of entries.
const MAX_HEIGHT: usize = 12;
/// Probability 1/BRANCHING of growing a tower by one level.
const BRANCHING: u32 = 4;

struct Node {
    key: Box<[u8]>,
    value: Box<[u8]>,
    next: Vec<AtomicPtr<Node>>,
}

impl Node {
    fn new(key: &[u8], value: &[u8], height: usize) -> *mut Node {
        let mut next = Vec::with_capacity(height);
        for _ in 0..height {
            next.push(AtomicPtr::new(std::ptr::null_mut()));
        }
        Box::into_raw(Box::new(Node {
            key: key.into(),
            value: value.into(),
            next,
        }))
    }

    fn head() -> *mut Node {
        Node::new(&[], &[], MAX_HEIGHT)
    }

    fn next(&self, level: usize) -> *mut Node {
        self.next[level].load(Ordering::Acquire)
    }

    fn set_next(&self, level: usize, node: *mut Node) {
        self.next[level].store(node, Ordering::Release);
    }
}

/// Comparison function over encoded keys.
pub type CompareFn = fn(&[u8], &[u8]) -> CmpOrdering;

/// The skiplist. See the module docs for the concurrency contract.
pub struct SkipList {
    head: *mut Node,
    max_height: AtomicUsize,
    compare: CompareFn,
    write_lock: Mutex<SplitMix64>,
    len: AtomicUsize,
    approximate_bytes: AtomicUsize,
}

// SAFETY: nodes are immutable once linked, never freed until drop, and all
// link updates use release stores paired with acquire loads.
unsafe impl Send for SkipList {}
unsafe impl Sync for SkipList {}

/// A tiny deterministic PRNG used to pick tower heights; seeded per list so
/// behaviour is reproducible in tests.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SkipList {
    /// Create an empty list ordered by `compare`.
    pub fn new(compare: CompareFn) -> Self {
        SkipList {
            head: Node::head(),
            max_height: AtomicUsize::new(1),
            compare,
            write_lock: Mutex::new(SplitMix64(0x9e37_79b9_7f4a_7c15)),
            len: AtomicUsize::new(0),
            approximate_bytes: AtomicUsize::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory consumed by keys and values.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes.load(Ordering::Relaxed)
    }

    fn random_height(rng: &mut SplitMix64) -> usize {
        let mut height = 1;
        while height < MAX_HEIGHT && rng.next().is_multiple_of(BRANCHING as u64) {
            height += 1;
        }
        height
    }

    /// Insert an entry. Keys must be unique (the memtable guarantees this by
    /// embedding a unique sequence number in every key); inserting a
    /// duplicate key is rejected with `false`.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> bool {
        let mut rng = self.write_lock.lock();

        let mut prev = [std::ptr::null_mut::<Node>(); MAX_HEIGHT];
        let found = self.find_greater_or_equal(key, Some(&mut prev));
        // SAFETY: found is either null or a valid node pointer owned by us.
        if !found.is_null() && (self.compare)(unsafe { &(*found).key }, key) == CmpOrdering::Equal {
            return false;
        }

        let height = Self::random_height(&mut rng);
        let current_max = self.max_height.load(Ordering::Relaxed);
        if height > current_max {
            for p in prev.iter_mut().take(height).skip(current_max) {
                *p = self.head;
            }
            // Only the single writer (holding the lock) mutates max_height.
            self.max_height.store(height, Ordering::Relaxed);
        }

        let node = Node::new(key, value, height);
        #[allow(clippy::needless_range_loop)] // `level` indexes both `prev` and the node's towers
        for level in 0..height {
            // SAFETY: prev[level] is head or a node found during the search;
            // both are valid and never freed while the list lives.
            unsafe {
                (*node).set_next(level, (*prev[level]).next(level));
                (*prev[level]).set_next(level, node);
            }
        }

        self.len.fetch_add(1, Ordering::Relaxed);
        self.approximate_bytes
            .fetch_add(key.len() + value.len() + 64, Ordering::Relaxed);
        true
    }

    /// True if an entry with exactly this key exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        let node = self.find_greater_or_equal(key, None);
        // SAFETY: node is valid or null.
        !node.is_null() && (self.compare)(unsafe { &(*node).key }, key) == CmpOrdering::Equal
    }

    /// Find the first node whose key is `>= key`; optionally record the
    /// predecessor at every level (used by insert).
    fn find_greater_or_equal(&self, key: &[u8], mut prev: Option<&mut [*mut Node; MAX_HEIGHT]>) -> *mut Node {
        let mut node = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        loop {
            // SAFETY: `node` is always head or a linked node.
            let next = unsafe { (*node).next(level) };
            let advance = if next.is_null() {
                false
            } else {
                // SAFETY: next is a linked node.
                (self.compare)(unsafe { &(*next).key }, key) == CmpOrdering::Less
            };
            if advance {
                node = next;
            } else {
                if let Some(prev) = prev.as_deref_mut() {
                    prev[level] = node;
                }
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    /// Find the last node whose key is strictly `< key` (head if none).
    fn find_less_than(&self, key: &[u8]) -> *mut Node {
        let mut node = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        loop {
            // SAFETY: node valid; see above.
            let next = unsafe { (*node).next(level) };
            let advance = if next.is_null() {
                false
            } else {
                (self.compare)(unsafe { &(*next).key }, key) == CmpOrdering::Less
            };
            if advance {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    /// Find the last node in the list (head if empty).
    fn find_last(&self) -> *mut Node {
        let mut node = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        loop {
            // SAFETY: node valid; see above.
            let next = unsafe { (*node).next(level) };
            if !next.is_null() {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    /// Create an iterator positioned before the first entry.
    pub fn iter(&self) -> SkipListIter<'_> {
        SkipListIter {
            list: self,
            node: std::ptr::null_mut(),
        }
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        // Walk the level-0 chain and free every node, then the head.
        // SAFETY: we have exclusive access during drop.
        unsafe {
            let mut node = (*self.head).next(0);
            while !node.is_null() {
                let next = (*node).next(0);
                drop(Box::from_raw(node));
                node = next;
            }
            drop(Box::from_raw(self.head));
        }
    }
}

/// An iterator over the skiplist. Valid positions point at a node; the
/// iterator is invalid before `seek*` / after running off either end.
pub struct SkipListIter<'a> {
    list: &'a SkipList,
    node: *mut Node,
}

impl<'a> SkipListIter<'a> {
    /// True if the iterator is positioned at an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// The key at the current position. Panics if invalid.
    pub fn key(&self) -> &[u8] {
        assert!(self.valid(), "iterator is not positioned at an entry");
        // SAFETY: node is valid while the list lives and never mutated.
        unsafe { &(*self.node).key }
    }

    /// The value at the current position. Panics if invalid.
    pub fn value(&self) -> &[u8] {
        assert!(self.valid(), "iterator is not positioned at an entry");
        // SAFETY: as above.
        unsafe { &(*self.node).value }
    }

    /// Position at the first entry whose key is `>= target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.node = self.list.find_greater_or_equal(target, None);
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        // SAFETY: head is always valid.
        self.node = unsafe { (*self.list.head).next(0) };
    }

    /// Position at the last entry.
    pub fn seek_to_last(&mut self) {
        let last = self.list.find_last();
        self.node = if last == self.list.head {
            std::ptr::null_mut()
        } else {
            last
        };
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        assert!(self.valid(), "cannot advance an invalid iterator");
        // SAFETY: node valid.
        self.node = unsafe { (*self.node).next(0) };
    }

    /// Retreat to the previous entry (O(log n): re-searches from the top).
    pub fn prev(&mut self) {
        assert!(self.valid(), "cannot retreat an invalid iterator");
        let key = self.key().to_vec();
        let prev = self.list.find_less_than(&key);
        self.node = if prev == self.list.head {
            std::ptr::null_mut()
        } else {
            prev
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn bytewise(a: &[u8], b: &[u8]) -> CmpOrdering {
        a.cmp(b)
    }

    #[test]
    fn empty_list() {
        let list = SkipList::new(bytewise);
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert!(!list.contains(b"x"));
        let mut it = list.iter();
        assert!(!it.valid());
        it.seek_to_first();
        assert!(!it.valid());
        it.seek_to_last();
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_lookup() {
        let list = SkipList::new(bytewise);
        assert!(list.insert(b"b", b"2"));
        assert!(list.insert(b"a", b"1"));
        assert!(list.insert(b"c", b"3"));
        // Duplicate keys are rejected.
        assert!(!list.insert(b"b", b"other"));
        assert_eq!(list.len(), 3);
        assert!(list.contains(b"a"));
        assert!(list.contains(b"b"));
        assert!(!list.contains(b"d"));
        assert!(list.approximate_bytes() > 0);

        let mut it = list.iter();
        it.seek_to_first();
        assert_eq!(it.key(), b"a");
        it.next();
        assert_eq!(it.key(), b"b");
        assert_eq!(it.value(), b"2");
        it.next();
        assert_eq!(it.key(), b"c");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn seek_and_prev() {
        let list = SkipList::new(bytewise);
        for k in ["a", "c", "e", "g"] {
            list.insert(k.as_bytes(), b"");
        }
        let mut it = list.iter();
        it.seek(b"d");
        assert_eq!(it.key(), b"e");
        it.prev();
        assert_eq!(it.key(), b"c");
        it.seek(b"a");
        assert_eq!(it.key(), b"a");
        it.prev();
        assert!(!it.valid());
        it.seek_to_last();
        assert_eq!(it.key(), b"g");
        it.seek(b"zzz");
        assert!(!it.valid());
    }

    #[test]
    fn ordering_matches_model_for_random_input() {
        let list = SkipList::new(bytewise);
        let mut model = BTreeMap::new();
        let mut state = 1u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = format!("{:08}", state % 10_000);
            let value = format!("v{state}");
            if !model.contains_key(&key) {
                model.insert(key.clone(), value.clone());
                assert!(list.insert(key.as_bytes(), value.as_bytes()));
            }
        }
        assert_eq!(list.len(), model.len());
        let mut it = list.iter();
        it.seek_to_first();
        for (k, v) in &model {
            assert!(it.valid());
            assert_eq!(it.key(), k.as_bytes());
            assert_eq!(it.value(), v.as_bytes());
            it.next();
        }
        assert!(!it.valid());
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let list = Arc::new(SkipList::new(bytewise));
        let writer = {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let key = format!("{i:08}");
                    list.insert(key.as_bytes(), b"v");
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let mut it = list.iter();
                        it.seek_to_first();
                        let mut prev: Option<Vec<u8>> = None;
                        let mut count = 0;
                        while it.valid() {
                            let k = it.key().to_vec();
                            if let Some(p) = &prev {
                                assert!(p < &k, "iteration must stay sorted under concurrency");
                            }
                            prev = Some(k);
                            count += 1;
                            it.next();
                        }
                        assert!(count <= 20_000);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(list.len(), 20_000);
    }

    #[test]
    fn concurrent_writers_from_many_threads() {
        let list = Arc::new(SkipList::new(bytewise));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let key = format!("{t:02}-{i:08}");
                        assert!(list.insert(key.as_bytes(), b"v"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.len(), 20_000);
        // Verify full sorted order.
        let mut it = list.iter();
        it.seek_to_first();
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        while it.valid() {
            let k = it.key().to_vec();
            if let Some(p) = &prev {
                assert!(p < &k);
            }
            prev = Some(k);
            n += 1;
            it.next();
        }
        assert_eq!(n, 20_000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_btreemap_model(keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..200)) {
            let list = SkipList::new(bytewise);
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for (i, k) in keys.iter().enumerate() {
                let v = vec![i as u8];
                if !model.contains_key(k) {
                    model.insert(k.clone(), v.clone());
                    prop_assert!(list.insert(k, &v));
                } else {
                    prop_assert!(!list.insert(k, &v));
                }
            }
            prop_assert_eq!(list.len(), model.len());
            // Forward iteration agrees with the model.
            let mut it = list.iter();
            it.seek_to_first();
            for (k, v) in &model {
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), &k[..]);
                prop_assert_eq!(it.value(), &v[..]);
                it.next();
            }
            prop_assert!(!it.valid());
            // Seek agrees with the model's range query.
            for k in &keys {
                let mut it = list.iter();
                it.seek(k);
                let expected = model.range(k.clone()..).next();
                match expected {
                    Some((ek, _)) => {
                        prop_assert!(it.valid());
                        prop_assert_eq!(it.key(), &ek[..]);
                    }
                    None => prop_assert!(!it.valid()),
                }
            }
        }
    }
}
