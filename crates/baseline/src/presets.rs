//! Configuration presets emulating the monolithic systems the paper compares
//! against (Section 8.3):
//!
//! * **LevelDB** — one instance per server, ω=1, α=1, δ=2.
//! * **LevelDB\*** — 64 instances per server, ω=64, α=1, δ=2.
//! * **RocksDB** — one instance per server, ω=1, α=1, δ=128.
//! * **RocksDB\*** — 64 instances per server, ω=64, α=1, δ=2.
//! * **RocksDB-tuned** — one instance with the best knobs found by a sweep.
//!
//! Each instance is a plain LSM-tree on the same substrate as Nova-LSM but
//! with everything that makes Nova-LSM *Nova-LSM* switched off: one Drange
//! (no parallel L0 compaction), no lookup/range index, no small-memtable
//! merging, SSTables on the server's local disk only (shared-nothing), no
//! compaction offloading.

use nova_common::config::{AvailabilityPolicy, LogPolicy, PlacementPolicy, RangeConfig};

/// Which monolithic system to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// One LevelDB instance per server (ω=1, α=1, δ=2).
    LevelDb,
    /// 64 LevelDB instances per server (ω=64, α=1, δ=2).
    LevelDbStar,
    /// One RocksDB instance per server (ω=1, α=1, δ=128).
    RocksDb,
    /// 64 RocksDB instances per server (ω=64, α=1, δ=2).
    RocksDbStar,
    /// One RocksDB instance with tuned knobs.
    RocksDbTuned,
}

impl BaselineKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::LevelDb => "LevelDB",
            BaselineKind::LevelDbStar => "LevelDB*",
            BaselineKind::RocksDb => "RocksDB",
            BaselineKind::RocksDbStar => "RocksDB*",
            BaselineKind::RocksDbTuned => "RocksDB-tuned",
        }
    }

    /// Number of LSM-tree instances (ranges) per server, the paper's ω.
    pub fn instances_per_server(&self) -> usize {
        match self {
            BaselineKind::LevelDb | BaselineKind::RocksDb | BaselineKind::RocksDbTuned => 1,
            BaselineKind::LevelDbStar | BaselineKind::RocksDbStar => 64,
        }
    }

    /// The per-instance configuration, scaled by the harness-supplied
    /// memtable size τ.
    pub fn range_config(&self, memtable_size_bytes: usize) -> RangeConfig {
        let (max_memtables, level0_multiplier, level1_multiplier) = match self {
            BaselineKind::LevelDb | BaselineKind::LevelDbStar | BaselineKind::RocksDbStar => (2, 4, 8),
            BaselineKind::RocksDb => (128, 4, 8),
            // The "tuned" variant: a bigger Level 0 before stalling and a
            // bigger Level 1, the two knobs the paper calls out.
            BaselineKind::RocksDbTuned => (128, 16, 32),
        };
        RangeConfig {
            // One Drange and one active memtable: a plain LSM write path.
            num_dranges: 1,
            tranges_per_drange: 1,
            active_memtables: 1,
            max_memtables,
            memtable_size_bytes,
            scatter_width: 1,
            placement: PlacementPolicy::LocalOnly,
            availability: AvailabilityPolicy::None,
            log_policy: LogPolicy::Disabled,
            // Disable the small-memtable merge optimisation: it is a Nova-LSM
            // contribution.
            unique_key_flush_threshold: 0,
            level0_stall_bytes: memtable_size_bytes as u64 * level0_multiplier,
            level_size_multiplier: 10,
            level1_max_bytes: memtable_size_bytes as u64 * level1_multiplier,
            num_levels: 4,
            compaction_threads: 2,
            offload_compaction: false,
            reorg_epsilon: 1.0,
            reorg_check_interval: u64::MAX,
            enable_lookup_index: false,
            enable_range_index: false,
            block_on_stall: true,
            block_size_bytes: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

/// All baseline kinds, in the order the paper's figures list them.
pub fn all_kinds() -> [BaselineKind; 5] {
    [
        BaselineKind::LevelDb,
        BaselineKind::LevelDbStar,
        BaselineKind::RocksDb,
        BaselineKind::RocksDbStar,
        BaselineKind::RocksDbTuned,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_instance_counts_match_the_paper() {
        assert_eq!(BaselineKind::LevelDb.label(), "LevelDB");
        assert_eq!(BaselineKind::LevelDbStar.label(), "LevelDB*");
        assert_eq!(BaselineKind::RocksDbTuned.label(), "RocksDB-tuned");
        assert_eq!(BaselineKind::LevelDb.instances_per_server(), 1);
        assert_eq!(BaselineKind::LevelDbStar.instances_per_server(), 64);
        assert_eq!(BaselineKind::RocksDbStar.instances_per_server(), 64);
        assert_eq!(all_kinds().len(), 5);
    }

    #[test]
    fn configs_disable_nova_lsm_features() {
        for kind in all_kinds() {
            let c = kind.range_config(1 << 20);
            assert!(c.validate().is_ok(), "{kind:?} config must validate");
            assert_eq!(c.num_dranges, 1);
            assert!(!c.enable_lookup_index);
            assert!(!c.enable_range_index);
            assert_eq!(c.placement, PlacementPolicy::LocalOnly);
            assert_eq!(c.unique_key_flush_threshold, 0);
            assert!(!c.offload_compaction);
        }
        // Memtable budgets follow the paper: δ=2 for LevelDB, δ=128 for RocksDB.
        assert_eq!(BaselineKind::LevelDb.range_config(1 << 20).max_memtables, 2);
        assert_eq!(BaselineKind::RocksDb.range_config(1 << 20).max_memtables, 128);
        assert!(
            BaselineKind::RocksDbTuned
                .range_config(1 << 20)
                .level0_stall_bytes
                > BaselineKind::RocksDb.range_config(1 << 20).level0_stall_bytes
        );
    }
}
