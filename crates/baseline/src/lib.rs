//! # nova-baseline
//!
//! The monolithic, shared-nothing LSM baselines Nova-LSM is compared against
//! in Section 8.3 of the paper: LevelDB, LevelDB* (64 instances per server),
//! RocksDB, RocksDB* and RocksDB-tuned.
//!
//! The baselines are built on the *same* memtable, SSTable, bloom-filter and
//! compaction substrate as Nova-LSM — only the architecture differs: one
//! Drange (so no parallel Level-0 compaction), no lookup or range index, no
//! small-memtable merging, SSTables confined to the server's local disk, and
//! no compaction offloading. This isolates exactly the architectural
//! difference the paper evaluates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod presets;

pub use cluster::BaselineCluster;
pub use presets::{all_kinds, BaselineKind};
