//! The shared-nothing monolithic cluster used as the comparison point in
//! Figures 1, 18 and 19: every server runs one or more plain LSM-tree
//! instances that store their SSTables on the server's local disk only, and
//! clients route requests by the static range partitioning.

use crate::presets::BaselineKind;
use bytes::Bytes;
use nova_common::config::{DiskConfig, FabricConfig};
use nova_common::keyspace::KeyspacePartition;
use nova_common::types::Entry;
use nova_common::{NodeId, RangeId, Result, StocId};
use nova_fabric::Fabric;
use nova_logc::LogC;
use nova_ltc::{Manifest, Placer, RangeEngine};
use nova_stoc::{SimDisk, StocClient, StocDirectory, StocServer, StocStats, StorageMedium};
use std::sync::Arc;

/// A running shared-nothing cluster of monolithic LSM servers.
pub struct BaselineCluster {
    kind: BaselineKind,
    fabric: Arc<Fabric>,
    directory: StocDirectory,
    stoc_servers: Vec<StocServer>,
    engines: Vec<Arc<RangeEngine>>,
    partition: KeyspacePartition,
    num_servers: usize,
}

impl std::fmt::Debug for BaselineCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineCluster")
            .field("kind", &self.kind)
            .field("servers", &self.num_servers)
            .field("ranges", &self.engines.len())
            .finish()
    }
}

impl BaselineCluster {
    /// Start a cluster of `num_servers` servers emulating `kind`, holding
    /// `num_keys` keys, with memtables of `memtable_size_bytes` and disks
    /// following `disk`.
    pub fn start(
        kind: BaselineKind,
        num_servers: usize,
        num_keys: u64,
        memtable_size_bytes: usize,
        disk: DiskConfig,
    ) -> Result<Self> {
        assert!(num_servers > 0, "a cluster needs at least one server");
        let fabric = Fabric::new(num_servers, &FabricConfig::default());
        let directory = StocDirectory::new();
        // One StoC per server, co-located with its LSM instances.
        let stoc_servers: Vec<StocServer> = (0..num_servers)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(disk));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();

        let instances = kind.instances_per_server();
        let total_ranges = num_servers * instances;
        let partition = KeyspacePartition::uniform(num_keys, total_ranges);
        let config = kind.range_config(memtable_size_bytes);

        let mut engines = Vec::with_capacity(total_ranges);
        for range_idx in 0..total_ranges {
            let server = range_idx / instances;
            let local_stoc = StocId(server as u32);
            let endpoint = fabric.endpoint(NodeId(server as u32));
            let client = StocClient::new(endpoint, directory.clone());
            let logc = Arc::new(LogC::new(
                client.clone(),
                config.log_policy,
                memtable_size_bytes as u64,
            ));
            let placer = Placer::new(
                client.clone(),
                config.placement,
                config.availability,
                Some(local_stoc),
                range_idx as u64 + 1,
            );
            let manifest = Manifest::new(local_stoc, &format!("{}-range-{range_idx}", kind.label()));
            // The monolithic baselines read their local disks directly, like
            // stock LevelDB with its cache off — keeping them cache-less makes
            // the Nova-LSM block cache's contribution visible in comparisons.
            let engine = RangeEngine::new(
                RangeId(range_idx as u32),
                partition.interval(RangeId(range_idx as u32)),
                config.clone(),
                client,
                logc,
                placer,
                manifest,
                None,
            )?;
            engines.push(engine);
        }

        Ok(BaselineCluster {
            kind,
            fabric,
            directory,
            stoc_servers,
            engines,
            partition,
            num_servers,
        })
    }

    /// Which baseline this cluster emulates.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of LSM instances (ranges) across the cluster.
    pub fn num_ranges(&self) -> usize {
        self.engines.len()
    }

    fn engine_for(&self, key: &[u8]) -> &Arc<RangeEngine> {
        let range = self.partition.range_of_encoded(key);
        &self.engines[range.0 as usize]
    }

    /// Write a key-value pair.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.engine_for(key).put(key, value)
    }

    /// Delete a key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.engine_for(key).delete(key)
    }

    /// Read a key.
    pub fn get(&self, key: &[u8]) -> Result<Bytes> {
        self.engine_for(key).get(key)
    }

    /// Scan `limit` records starting at `start_key`, crossing range
    /// boundaries in read-committed fashion (Section 8.1).
    pub fn scan(&self, start_key: &[u8], limit: usize) -> Result<Vec<Entry>> {
        let mut out = Vec::with_capacity(limit);
        let mut range = self.partition.range_of_encoded(start_key).0 as usize;
        let mut cursor = start_key.to_vec();
        while out.len() < limit && range < self.engines.len() {
            let chunk = self.engines[range].scan(&cursor, limit - out.len())?;
            out.extend(chunk);
            range += 1;
            if range < self.engines.len() {
                let next_start = self.partition.interval(RangeId(range as u32)).lower;
                cursor = nova_common::keyspace::encode_key(next_start);
            }
        }
        Ok(out)
    }

    /// Flush every instance (used by tests).
    pub fn flush_all(&self) -> Result<()> {
        for e in &self.engines {
            e.flush_all()?;
        }
        Ok(())
    }

    /// Per-server disk statistics (Figure 1's disk-utilization argument).
    pub fn disk_stats(&self) -> Vec<StocStats> {
        let endpoint = self.fabric.endpoint(NodeId(0));
        let client = StocClient::new(endpoint, self.directory.clone());
        (0..self.num_servers)
            .map(|i| client.stats(StocId(i as u32)).unwrap_or_default())
            .collect()
    }

    /// Aggregate write-stall count across all instances.
    pub fn total_stalls(&self) -> u64 {
        self.engines.iter().map(|e| e.stats().stalls.get()).sum()
    }

    /// Tear the cluster down.
    pub fn shutdown(self) {
        for e in &self.engines {
            e.shutdown();
        }
        for s in self.stoc_servers {
            s.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::keyspace::{decode_key, encode_key};
    use nova_common::Error;

    fn fast_disk() -> DiskConfig {
        DiskConfig {
            bandwidth_bytes_per_sec: u64::MAX / 2,
            seek_micros: 0,
            accounting_only: true,
        }
    }

    #[test]
    fn leveldb_star_cluster_round_trips() {
        let cluster =
            BaselineCluster::start(BaselineKind::LevelDbStar, 2, 10_000, 8 * 1024, fast_disk()).unwrap();
        assert_eq!(cluster.kind(), BaselineKind::LevelDbStar);
        assert_eq!(cluster.num_servers(), 2);
        assert_eq!(cluster.num_ranges(), 128);
        for i in (0..10_000u64).step_by(101) {
            cluster.put(&encode_key(i), format!("v{i}").as_bytes()).unwrap();
        }
        for i in (0..10_000u64).step_by(101) {
            assert_eq!(
                cluster.get(&encode_key(i)).unwrap().as_ref(),
                format!("v{i}").as_bytes()
            );
        }
        assert!(matches!(cluster.get(&encode_key(3)), Err(Error::NotFound)));
        cluster.delete(&encode_key(101)).unwrap();
        assert!(cluster.get(&encode_key(101)).is_err());
        cluster.shutdown();
    }

    #[test]
    fn scans_cross_range_boundaries() {
        let cluster = BaselineCluster::start(BaselineKind::LevelDb, 4, 400, 8 * 1024, fast_disk()).unwrap();
        for i in 0..400u64 {
            cluster.put(&encode_key(i), b"v").unwrap();
        }
        // Each server owns 100 keys; a scan of 10 starting at 95 must cross
        // from server 0 into server 1.
        let result = cluster.scan(&encode_key(95), 10).unwrap();
        assert_eq!(result.len(), 10);
        let keys: Vec<u64> = result.iter().map(|e| decode_key(&e.key).unwrap()).collect();
        assert_eq!(keys, (95..105).collect::<Vec<u64>>());
        cluster.shutdown();
    }

    #[test]
    fn data_stays_on_the_local_disk() {
        let cluster = BaselineCluster::start(BaselineKind::LevelDb, 2, 1_000, 4 * 1024, fast_disk()).unwrap();
        // Write only keys owned by server 0.
        for i in 0..500u64 {
            cluster.put(&encode_key(i), vec![b'x'; 64].as_slice()).unwrap();
        }
        cluster.flush_all().unwrap();
        let stats = cluster.disk_stats();
        assert!(
            stats[0].bytes_written > 0,
            "server 0's local disk must receive the SSTables"
        );
        assert_eq!(
            stats[1].bytes_written, 0,
            "shared-nothing: server 1's disk must stay idle"
        );
        cluster.shutdown();
    }
}
