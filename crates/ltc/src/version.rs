//! The LSM-tree version (which SSTables live at which level) and the MANIFEST
//! that persists it (Section 4.5).
//!
//! The three invariants of Section 4 are enforced here: entries are sorted
//! within every table, tables at Level 1 and higher are non-overlapping and
//! sorted by key, and lower levels hold more recent data than higher levels.

use nova_common::keyspace::KeyInterval;
use nova_common::varint::{
    decode_length_prefixed_slice, decode_varint32, decode_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use nova_common::{checksum, Error, FileNumber, Result, SequenceNumber, StocId};
use nova_sstable::SstableMeta;
use nova_stoc::StocClient;

/// The set of SSTables composing one range's LSM-tree, organised by level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Version {
    levels: Vec<Vec<SstableMeta>>,
}

impl Version {
    /// Create an empty version with `num_levels` levels.
    pub fn new(num_levels: usize) -> Self {
        Version {
            levels: vec![Vec::new(); num_levels.max(2)],
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Install a new table at its level. Tables at Level 1+ are kept sorted
    /// by smallest key.
    pub fn add_table(&mut self, meta: SstableMeta) {
        let level = meta.level as usize;
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(meta);
        if level > 0 {
            self.levels[level].sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
    }

    /// Remove a table by level and file number, returning its metadata.
    pub fn remove_table(&mut self, level: usize, file_number: FileNumber) -> Option<SstableMeta> {
        let tables = self.levels.get_mut(level)?;
        let pos = tables.iter().position(|t| t.file_number == file_number)?;
        Some(tables.remove(pos))
    }

    /// The tables at `level`.
    pub fn level_tables(&self, level: usize) -> &[SstableMeta] {
        self.levels.get(level).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total data bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.level_tables(level).iter().map(|t| t.data_size).sum()
    }

    /// Number of tables across all levels.
    pub fn num_tables(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Total data bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        (0..self.levels.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// The deepest level that currently holds any table.
    pub fn max_populated_level(&self) -> usize {
        self.levels.iter().rposition(|l| !l.is_empty()).unwrap_or(0)
    }

    /// Tables at `level` overlapping the user-key range `[smallest, largest]`.
    pub fn overlapping(&self, level: usize, smallest: &[u8], largest: &[u8]) -> Vec<SstableMeta> {
        self.level_tables(level)
            .iter()
            .filter(|t| t.overlaps(smallest, largest))
            .cloned()
            .collect()
    }

    /// Tables that might contain `user_key` at `level`. At Level 0 every
    /// overlapping table matters; at higher levels at most one table can
    /// contain the key (they are sorted and disjoint).
    pub fn tables_for_key(&self, level: usize, user_key: &[u8]) -> Vec<SstableMeta> {
        if level == 0 {
            return self
                .level_tables(0)
                .iter()
                .filter(|t| t.contains_key(user_key))
                .cloned()
                .collect();
        }
        let tables = self.level_tables(level);
        let idx = tables.partition_point(|t| t.largest.as_slice() < user_key);
        match tables.get(idx) {
            Some(t) if t.contains_key(user_key) => vec![t.clone()],
            _ => Vec::new(),
        }
    }

    /// Pick the level with the highest ratio of actual size to expected size
    /// (LevelDB's leveled-compaction heuristic, Section 2.1). Returns `None`
    /// when no level exceeds its budget. Level 0 is scored by byte size
    /// against the stall threshold.
    pub fn pick_compaction_level(&self, max_bytes_for_level: impl Fn(usize) -> u64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        // The bottom-most level never needs compaction into a deeper level
        // unless a deeper level exists in the configured tree.
        for level in 0..self.levels.len().saturating_sub(1) {
            let actual = self.level_bytes(level);
            if actual == 0 {
                continue;
            }
            let expected = max_bytes_for_level(level).max(1);
            let score = actual as f64 / expected as f64;
            if score >= 1.0 && best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((level, score));
            }
        }
        best.map(|(l, _)| l)
    }

    /// Every table in the version, in level order.
    pub fn all_tables(&self) -> Vec<SstableMeta> {
        self.levels.iter().flatten().cloned().collect()
    }

    /// All StoCs referenced by any table of this version.
    pub fn referenced_stocs(&self) -> Vec<StocId> {
        let mut stocs: Vec<StocId> = self.all_tables().iter().flat_map(|t| t.stocs()).collect();
        stocs.sort();
        stocs.dedup();
        stocs
    }

    /// Serialize the version.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint32(&mut out, self.levels.len() as u32);
        let tables = self.all_tables();
        put_varint32(&mut out, tables.len() as u32);
        for t in tables {
            let encoded = t.encode();
            put_length_prefixed_slice(&mut out, &encoded);
        }
        out
    }

    /// Deserialize a version, returning it and the bytes consumed.
    pub fn decode(src: &[u8]) -> Result<(Version, usize)> {
        let mut n = 0;
        let (num_levels, c) = decode_varint32(&src[n..])?;
        n += c;
        let (count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut version = Version::new(num_levels as usize);
        for _ in 0..count {
            let (encoded, c) = decode_length_prefixed_slice(&src[n..])?;
            let (meta, _) = SstableMeta::decode(encoded)?;
            version.add_table(meta);
            n += c;
        }
        Ok((version, n))
    }
}

/// Everything the MANIFEST records about a range: the LSM-tree version, the
/// Drange boundaries ("It also appends the Dranges and Tranges to the
/// MANIFEST file"), file-number and sequence-number high-water marks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManifestData {
    /// The LSM-tree version.
    pub version: Version,
    /// The Drange boundaries at the time of the snapshot.
    pub drange_boundaries: Vec<KeyInterval>,
    /// Next SSTable file number to allocate.
    pub next_file_number: FileNumber,
    /// Highest sequence number issued.
    pub last_sequence: SequenceNumber,
}

impl ManifestData {
    /// Serialize the manifest snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let version = self.version.encode();
        put_length_prefixed_slice(&mut out, &version);
        put_varint32(&mut out, self.drange_boundaries.len() as u32);
        for b in &self.drange_boundaries {
            put_varint64(&mut out, b.lower);
            put_varint64(&mut out, b.upper);
        }
        put_varint64(&mut out, self.next_file_number);
        put_varint64(&mut out, self.last_sequence);
        out
    }

    /// Deserialize a manifest snapshot.
    pub fn decode(src: &[u8]) -> Result<ManifestData> {
        let mut n = 0;
        let (version_bytes, c) = decode_length_prefixed_slice(&src[n..])?;
        let (version, _) = Version::decode(version_bytes)?;
        n += c;
        let (count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut drange_boundaries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (lower, a) = decode_varint64(&src[n..])?;
            n += a;
            let (upper, b) = decode_varint64(&src[n..])?;
            n += b;
            drange_boundaries.push(KeyInterval::new(lower, upper.max(lower)));
        }
        let (next_file_number, c) = decode_varint64(&src[n..])?;
        n += c;
        let (last_sequence, _) = decode_varint64(&src[n..])?;
        Ok(ManifestData {
            version,
            drange_boundaries,
            next_file_number,
            last_sequence,
        })
    }
}

/// The MANIFEST file of one range, persisted at a StoC. Each save appends a
/// checksummed full snapshot; recovery replays the log and keeps the last
/// valid snapshot, so a torn final record falls back to the previous one.
#[derive(Debug, Clone)]
pub struct Manifest {
    stoc: StocId,
    name: String,
}

impl Manifest {
    /// Create a manifest handle for `range_name` stored on `stoc`.
    pub fn new(stoc: StocId, range_name: &str) -> Self {
        Manifest {
            stoc,
            name: format!("manifest/{range_name}"),
        }
    }

    /// The StoC holding this manifest.
    pub fn stoc(&self) -> StocId {
        self.stoc
    }

    /// Append a snapshot.
    pub fn save(&self, client: &StocClient, data: &ManifestData) -> Result<()> {
        let payload = data.encode();
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&checksum::mask(checksum::crc32c(&payload)).to_le_bytes());
        record.extend_from_slice(&payload);
        client.append_log(self.stoc, &self.name, &record)
    }

    /// Load the most recent valid snapshot, or `None` if the manifest does
    /// not exist yet.
    pub fn load(&self, client: &StocClient) -> Result<Option<ManifestData>> {
        let buffer = match client.read_log(self.stoc, &self.name) {
            Ok(b) => b,
            Err(Error::UnknownFile(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut offset = 0usize;
        let mut last: Option<ManifestData> = None;
        while offset + 8 <= buffer.len() {
            let size = u32::from_le_bytes(buffer[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            if size == 0 || offset + 8 + size > buffer.len() {
                break;
            }
            let stored_crc = checksum::unmask(u32::from_le_bytes(
                buffer[offset + 4..offset + 8].try_into().expect("4 bytes"),
            ));
            let payload = &buffer[offset + 8..offset + 8 + size];
            if checksum::crc32c(payload) == stored_crc {
                if let Ok(data) = ManifestData::decode(payload) {
                    last = Some(data);
                }
            }
            offset += 8 + size;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(file: FileNumber, level: u32, smallest: &str, largest: &str, size: u64) -> SstableMeta {
        SstableMeta {
            file_number: file,
            level,
            smallest: smallest.as_bytes().to_vec(),
            largest: largest.as_bytes().to_vec(),
            num_entries: 10,
            data_size: size,
            fragments: vec![],
            meta_blocks: vec![],
            parity: None,
            drange: None,
        }
    }

    #[test]
    fn add_remove_and_query_tables() {
        let mut v = Version::new(4);
        v.add_table(table(1, 0, "a", "m", 100));
        v.add_table(table(2, 0, "k", "z", 100));
        v.add_table(table(3, 1, "n", "t", 100));
        v.add_table(table(4, 1, "a", "m", 100));
        assert_eq!(v.num_tables(), 4);
        assert_eq!(v.level_bytes(0), 200);
        assert_eq!(v.total_bytes(), 400);
        assert_eq!(v.max_populated_level(), 1);
        // Level 1 is sorted by smallest key after insertion.
        let l1: Vec<_> = v.level_tables(1).iter().map(|t| t.file_number).collect();
        assert_eq!(l1, vec![4, 3]);
        // Key lookup: L0 returns all overlapping, L1 at most one.
        assert_eq!(v.tables_for_key(0, b"l").len(), 2);
        assert_eq!(v.tables_for_key(0, b"zz").len(), 0);
        assert_eq!(v.tables_for_key(1, b"p").len(), 1);
        assert_eq!(v.tables_for_key(1, b"p")[0].file_number, 3);
        assert_eq!(v.tables_for_key(1, b"zz").len(), 0);
        // Overlap queries.
        assert_eq!(v.overlapping(1, b"a", b"z").len(), 2);
        assert_eq!(v.overlapping(1, b"u", b"z").len(), 0);
        let removed = v.remove_table(0, 1).unwrap();
        assert_eq!(removed.file_number, 1);
        assert!(v.remove_table(0, 1).is_none());
        assert_eq!(v.num_tables(), 3);
    }

    #[test]
    fn compaction_level_picking() {
        let mut v = Version::new(4);
        // Level budgets: L0=100, L1=1000, L2=10000.
        let budget = |level: usize| match level {
            0 => 100u64,
            1 => 1000,
            _ => 10_000,
        };
        assert_eq!(v.pick_compaction_level(budget), None);
        v.add_table(table(1, 0, "a", "m", 150));
        assert_eq!(v.pick_compaction_level(budget), Some(0));
        // A more over-budget level wins.
        v.add_table(table(2, 1, "a", "m", 5000));
        assert_eq!(v.pick_compaction_level(budget), Some(1));
        // The bottom-most configured level is never picked.
        let mut bottom = Version::new(2);
        bottom.add_table(table(3, 1, "a", "m", 1 << 40));
        assert_eq!(bottom.pick_compaction_level(|_| 1), None);
    }

    #[test]
    fn version_round_trips() {
        let mut v = Version::new(3);
        v.add_table(table(1, 0, "a", "m", 100));
        v.add_table(table(2, 2, "k", "z", 300));
        let (decoded, n) = Version::decode(&v.encode()).unwrap();
        assert_eq!(n, v.encode().len());
        assert_eq!(decoded.num_tables(), 2);
        assert_eq!(decoded.level_bytes(2), 300);
    }

    #[test]
    fn manifest_data_round_trips() {
        let mut v = Version::new(3);
        v.add_table(table(7, 1, "b", "c", 42));
        let data = ManifestData {
            version: v,
            drange_boundaries: vec![KeyInterval::new(0, 10), KeyInterval::new(10, 100)],
            next_file_number: 88,
            last_sequence: 1234,
        };
        let decoded = ManifestData::decode(&data.encode()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn manifest_save_and_load_via_stoc() {
        use nova_common::config::DiskConfig;
        use nova_common::NodeId;
        use nova_fabric::Fabric;
        use nova_stoc::{SimDisk, StocDirectory, StocServer, StorageMedium};
        use std::sync::Arc;

        let fabric = Fabric::with_defaults(2);
        let directory = StocDirectory::new();
        let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: u64::MAX / 2,
            seek_micros: 0,
            accounting_only: true,
        }));
        let server = StocServer::start(StocId(0), NodeId(1), &fabric, directory.clone(), medium, 2, 1);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);

        let manifest = Manifest::new(StocId(0), "range-0");
        assert_eq!(manifest.stoc(), StocId(0));
        assert!(manifest.load(&client).unwrap().is_none());

        let mut version = Version::new(3);
        version.add_table(table(1, 0, "a", "b", 10));
        let snap1 = ManifestData {
            version: version.clone(),
            drange_boundaries: vec![KeyInterval::new(0, 50)],
            next_file_number: 2,
            last_sequence: 10,
        };
        manifest.save(&client, &snap1).unwrap();
        version.add_table(table(2, 1, "c", "d", 20));
        let snap2 = ManifestData {
            version,
            drange_boundaries: vec![KeyInterval::new(0, 25), KeyInterval::new(25, 50)],
            next_file_number: 3,
            last_sequence: 20,
        };
        manifest.save(&client, &snap2).unwrap();

        let loaded = manifest.load(&client).unwrap().unwrap();
        assert_eq!(loaded, snap2, "the most recent snapshot wins");
        server.stop();
    }
}
