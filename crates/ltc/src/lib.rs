//! # nova-ltc
//!
//! The LSM-tree Component (LTC) — the primary contribution of the Nova-LSM
//! paper (Section 4).
//!
//! An LTC serves ω application ranges. For each range it maintains an
//! LSM-tree whose Level-0 write path is divided into θ dynamic ranges
//! (Dranges) so that flushes and Level-0 compactions proceed in parallel, a
//! lookup index that sends a get to the single memtable or Level-0 SSTable
//! holding the latest value of its key, and a range index that lets a scan
//! search only the memtables/L0 tables overlapping its interval. SSTables are
//! scattered across ρ StoCs chosen with power-of-d, protected by replication
//! or a parity block, and compactions may be offloaded to StoCs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compaction;
pub mod drange;
pub mod lookup_index;
pub mod ltc;
pub mod migration;
pub mod placement;
pub mod range;
pub mod range_index;
pub mod version;

pub use drange::{Drange, DrangeSet, ReorgStats, Trange};
pub use lookup_index::{LookupIndex, TableLocation};
pub use ltc::{Ltc, LtcStats};
pub use migration::RangeSnapshot;
pub use placement::Placer;
pub use range::{BatchOp, RangeEngine, RangeStats, ScanResult};
pub use range_index::{RangeIndex, RangeIndexPartition};
pub use version::{Manifest, ManifestData, Version};
