//! The range index (Section 4.1.2, Figure 7).
//!
//! "An LTC maintains a range index to process a scan using only those
//! memtables and Level 0 SSTables with a range overlapping the scan." Each
//! partition of the index corresponds to a key interval and lists pointers to
//! the memtables and Level-0 SSTable file numbers whose contents overlap that
//! interval. Partitions are split when a Drange reorganisation makes the
//! layout finer-grained; new partitions inherit the parent's lists.

use nova_common::keyspace::KeyInterval;
use nova_common::{FileNumber, MemtableId};
use nova_memtable::Memtable;
use parking_lot::RwLock;
use std::sync::Arc;

/// One partition of the range index.
#[derive(Debug, Clone)]
pub struct RangeIndexPartition {
    /// The key interval this partition covers.
    pub interval: KeyInterval,
    /// Memtables overlapping the interval.
    pub memtables: Vec<Arc<Memtable>>,
    /// Level-0 SSTables overlapping the interval.
    pub level0_files: Vec<FileNumber>,
}

impl RangeIndexPartition {
    fn new(interval: KeyInterval) -> Self {
        RangeIndexPartition {
            interval,
            memtables: Vec::new(),
            level0_files: Vec::new(),
        }
    }
}

/// The range index: an ordered list of partitions tiling the range.
#[derive(Debug)]
pub struct RangeIndex {
    partitions: RwLock<Vec<RangeIndexPartition>>,
}

impl RangeIndex {
    /// Create an index with one partition per interval. Intervals must tile
    /// the range in order.
    pub fn new(intervals: &[KeyInterval]) -> Self {
        // Duplicated Dranges share an interval; the index needs each interval
        // only once.
        let mut seen = Vec::new();
        for &i in intervals {
            if seen.last() != Some(&i) {
                seen.push(i);
            }
        }
        if seen.is_empty() {
            seen.push(KeyInterval::all());
        }
        RangeIndex {
            partitions: RwLock::new(seen.into_iter().map(RangeIndexPartition::new).collect()),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.read().len()
    }

    /// Register a new active memtable covering `interval` ("when a new active
    /// memtable for a Drange … is created, LTC appends it to all partitions
    /// of the index that overlap").
    pub fn add_memtable(&self, interval: KeyInterval, memtable: &Arc<Memtable>) {
        let mut partitions = self.partitions.write();
        for p in partitions.iter_mut() {
            if p.interval.overlaps(&interval) {
                p.memtables.push(Arc::clone(memtable));
            }
        }
    }

    /// Register a new Level-0 SSTable covering `interval`.
    pub fn add_level0_file(&self, interval: KeyInterval, file: FileNumber) {
        let mut partitions = self.partitions.write();
        for p in partitions.iter_mut() {
            if p.interval.overlaps(&interval) {
                p.level0_files.push(file);
            }
        }
    }

    /// Remove a flushed memtable from every partition.
    pub fn remove_memtable(&self, mid: MemtableId) {
        let mut partitions = self.partitions.write();
        for p in partitions.iter_mut() {
            p.memtables.retain(|m| m.id() != mid);
        }
    }

    /// Remove a deleted Level-0 SSTable from every partition.
    pub fn remove_level0_file(&self, file: FileNumber) {
        let mut partitions = self.partitions.write();
        for p in partitions.iter_mut() {
            p.level0_files.retain(|f| *f != file);
        }
    }

    /// The partition containing `key` (by binary search), cloned so the
    /// caller can search it without holding the index lock.
    pub fn partition_for(&self, key: u64) -> RangeIndexPartition {
        let partitions = self.partitions.read();
        let idx = partitions.partition_point(|p| p.interval.upper <= key);
        partitions[idx.min(partitions.len() - 1)].clone()
    }

    /// Every partition overlapping `[start, end)`, in key order.
    pub fn partitions_overlapping(&self, start: u64, end: u64) -> Vec<RangeIndexPartition> {
        let query = KeyInterval::new(start, end.max(start));
        self.partitions
            .read()
            .iter()
            .filter(|p| p.interval.overlaps(&query))
            .cloned()
            .collect()
    }

    /// Split partitions along new Drange boundaries after a reorganisation;
    /// new partitions inherit the memtables and Level-0 files of the
    /// partition they came from.
    pub fn refine(&self, boundaries: &[KeyInterval]) {
        let mut unique = Vec::new();
        for &b in boundaries {
            if unique.last() != Some(&b) {
                unique.push(b);
            }
        }
        let mut partitions = self.partitions.write();
        let mut refined: Vec<RangeIndexPartition> = Vec::with_capacity(unique.len());
        for boundary in unique {
            // Collect everything overlapping the new boundary.
            let mut part = RangeIndexPartition::new(boundary);
            for old in partitions.iter() {
                if old.interval.overlaps(&boundary) {
                    for m in &old.memtables {
                        if !part.memtables.iter().any(|x| x.id() == m.id()) {
                            part.memtables.push(Arc::clone(m));
                        }
                    }
                    for f in &old.level0_files {
                        if !part.level0_files.contains(f) {
                            part.level0_files.push(*f);
                        }
                    }
                }
            }
            refined.push(part);
        }
        if !refined.is_empty() {
            *partitions = refined;
        }
    }

    /// Approximate memory used by the index (the paper reports ~6 KB).
    pub fn approximate_bytes(&self) -> usize {
        let partitions = self.partitions.read();
        partitions
            .iter()
            .map(|p| 16 + p.memtables.len() * 8 + p.level0_files.len() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memtable(id: u64) -> Arc<Memtable> {
        Memtable::new(MemtableId(id), 0, 1 << 20)
    }

    fn intervals(bounds: &[(u64, u64)]) -> Vec<KeyInterval> {
        bounds.iter().map(|&(a, b)| KeyInterval::new(a, b)).collect()
    }

    #[test]
    fn partitions_follow_drange_boundaries() {
        let index = RangeIndex::new(&intervals(&[(0, 100), (100, 200), (200, 300)]));
        assert_eq!(index.num_partitions(), 3);
        assert_eq!(index.partition_for(0).interval, KeyInterval::new(0, 100));
        assert_eq!(index.partition_for(150).interval, KeyInterval::new(100, 200));
        // Out-of-range keys clamp to the last partition.
        assert_eq!(index.partition_for(999).interval, KeyInterval::new(200, 300));
    }

    #[test]
    fn duplicated_boundaries_collapse_to_one_partition() {
        let index = RangeIndex::new(&intervals(&[(0, 1), (0, 1), (1, 100)]));
        assert_eq!(index.num_partitions(), 2);
    }

    #[test]
    fn membership_tracks_memtables_and_files() {
        let index = RangeIndex::new(&intervals(&[(0, 100), (100, 200)]));
        let m = memtable(1);
        index.add_memtable(KeyInterval::new(0, 100), &m);
        index.add_level0_file(KeyInterval::new(50, 150), 7);

        let p0 = index.partition_for(10);
        assert_eq!(p0.memtables.len(), 1);
        assert_eq!(p0.level0_files, vec![7]);
        let p1 = index.partition_for(150);
        assert!(p1.memtables.is_empty());
        assert_eq!(
            p1.level0_files,
            vec![7],
            "file spanning both partitions appears in both"
        );

        index.remove_memtable(MemtableId(1));
        index.remove_level0_file(7);
        assert!(index.partition_for(10).memtables.is_empty());
        assert!(index.partition_for(150).level0_files.is_empty());
    }

    #[test]
    fn scans_see_only_overlapping_partitions() {
        let index = RangeIndex::new(&intervals(&[(0, 100), (100, 200), (200, 300)]));
        let overlapping = index.partitions_overlapping(50, 150);
        assert_eq!(overlapping.len(), 2);
        let all = index.partitions_overlapping(0, 300);
        assert_eq!(all.len(), 3);
        let one = index.partitions_overlapping(250, 260);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn refine_splits_partitions_and_inherits_contents() {
        let index = RangeIndex::new(&intervals(&[(0, 200)]));
        let m = memtable(1);
        index.add_memtable(KeyInterval::new(0, 200), &m);
        index.add_level0_file(KeyInterval::new(0, 200), 9);
        index.refine(&intervals(&[(0, 100), (100, 200)]));
        assert_eq!(index.num_partitions(), 2);
        for key in [10u64, 150] {
            let p = index.partition_for(key);
            assert_eq!(p.memtables.len(), 1, "split partitions inherit memtables");
            assert_eq!(p.level0_files, vec![9]);
        }
        assert!(index.approximate_bytes() > 0);
    }
}
