//! The per-range LSM-tree engine: the write path with Dranges and write-stall
//! handling, the read path with the lookup and range indexes, memtable
//! flushing with the small-memtable merge optimisation, and the hooks the
//! compaction coordinator and migration machinery build on.

use crate::compaction;
use crate::drange::DrangeSet;
use crate::lookup_index::{LookupIndex, TableLocation};
use crate::placement::Placer;
use crate::range_index::RangeIndex;
use crate::version::{Manifest, ManifestData, Version};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nova_cache::{BlockCache, CachingFetcher};
use nova_common::config::RangeConfig;
use nova_common::keyspace::{decode_key, KeyInterval};
use nova_common::rate::{BusyTime, Counter};
use nova_common::types::{Entry, MAX_SEQUENCE_NUMBER};
use nova_common::{
    Error, FileNumber, MemtableId, RangeId, ReadOptions, Result, SequenceNumber, ValueType, WriteOptions,
};
use nova_logc::{LogC, LogRecord};
use nova_memtable::{LookupResult, Memtable};
use nova_sstable::{
    compact_entries, BlockFetcher, EntryIterator, MergingIterator, SstableMeta, TableBuilder, TableLookup,
    TableOptions, TableReader, VecIterator,
};
use nova_stoc::{delete_table, read_meta_block, write_table, ScatteredBlockFetcher, StocClient};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics exposed by a range engine.
#[derive(Debug, Default)]
pub struct RangeStats {
    /// Puts and deletes processed.
    pub writes: Counter,
    /// Gets processed.
    pub gets: Counter,
    /// Scans processed.
    pub scans: Counter,
    /// Gets answered from the lookup index (one memtable / one L0 table).
    pub lookup_index_hits: Counter,
    /// Number of write stalls encountered.
    pub stalls: Counter,
    /// Total time writers spent stalled.
    pub stall_time: BusyTime,
    /// SSTable bytes written by flushes.
    pub bytes_flushed: Counter,
    /// Immutable memtables merged instead of flushed (Section 4.2).
    pub memtable_merges: Counter,
    /// Number of memtable flushes that produced an SSTable.
    pub flushes: Counter,
    /// Number of compactions installed.
    pub compactions: Counter,
    /// Number of Drange reorganisations.
    pub reorganizations: Counter,
}

/// The result of a scan: at most `limit` live entries in key order.
pub type ScanResult = Vec<Entry>;

/// One operation of a write batch ([`RangeEngine::write_batch`]). Borrows
/// the caller's key/value bytes; nothing is copied until the records are
/// encoded for the log and applied to a memtable.
#[derive(Debug, Clone, Copy)]
pub enum BatchOp<'a> {
    /// Insert or update a key.
    Put {
        /// User key.
        key: &'a [u8],
        /// Value bytes.
        value: &'a [u8],
    },
    /// Delete a key (writes a tombstone).
    Delete {
        /// User key.
        key: &'a [u8],
    },
}

impl<'a> BatchOp<'a> {
    fn key(&self) -> &'a [u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } => key,
        }
    }

    fn value(&self) -> &'a [u8] {
        match self {
            BatchOp::Put { value, .. } => value,
            BatchOp::Delete { .. } => &[],
        }
    }

    fn value_type(&self) -> ValueType {
        match self {
            BatchOp::Put { .. } => ValueType::Value,
            BatchOp::Delete { .. } => ValueType::Deletion,
        }
    }
}

/// Upper bound on how many data blocks a scan prefetches past its cursor per
/// table; the effective window is the smaller of this and the StoC client's
/// I/O parallelism. Bounds wasted reads when a scan stops early.
const MAX_SCAN_READAHEAD_BLOCKS: usize = 8;

/// State owned by one Drange: its active memtable and immutable memtables.
#[derive(Debug)]
struct DrangeState {
    active: Arc<Memtable>,
    immutables: Vec<Arc<Memtable>>,
}

/// Everything the write path needs under one lock.
struct WriteState {
    dranges: DrangeSet,
    states: Vec<DrangeState>,
}

/// Background work items handled by the compaction threads.
enum BackgroundTask {
    Flush {
        drange: usize,
        memtable: Arc<Memtable>,
        /// Force an SSTable even if the memtable has few unique keys (used to
        /// break stalls caused by merged memtables piling up).
        force: bool,
    },
    Compaction,
    Shutdown,
}

/// The per-range LSM-tree engine.
pub struct RangeEngine {
    range_id: RangeId,
    interval: KeyInterval,
    config: RangeConfig,
    client: StocClient,
    logc: Arc<LogC>,
    placer: Placer,
    manifest: Manifest,

    write_state: RwLock<WriteState>,
    sequence: AtomicU64,
    next_memtable_id: AtomicU64,
    next_file_number: AtomicU64,

    lookup_index: LookupIndex,
    range_index: RangeIndex,
    version: Mutex<Version>,
    table_cache: Mutex<HashMap<FileNumber, Arc<TableReader>>>,
    /// The LTC-wide data-block cache, shared by every range of the LTC.
    /// `None` when caching is disabled in the cluster configuration.
    block_cache: Option<Arc<BlockCache>>,
    /// Memtables that a background task has claimed for flushing (or already
    /// flushed). Duplicate flush tasks — the stall loop re-nudges the queue —
    /// become cheap no-ops instead of producing duplicate SSTables.
    claimed_flushes: Mutex<std::collections::HashSet<MemtableId>>,

    task_tx: Sender<BackgroundTask>,
    task_rx: Receiver<BackgroundTask>,
    /// Queued *plus currently executing* flush/compaction tasks. The task
    /// queue alone cannot tell "idle" from "mid-flush": a reorganisation
    /// force-flushes memtables that are in no Drange's immutable list, so a
    /// drain that only checks immutables + queue emptiness can return while
    /// such a flush is still installing its SSTable.
    background_inflight: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Generation counter + condvar that wake stalled writers the moment a
    /// flush or compaction completes, instead of a sleep-poll loop. Uses the
    /// std primitives because the vendored `parking_lot` shim has no condvar.
    progress_gate: std::sync::Mutex<u64>,
    progress_cv: std::sync::Condvar,
    shutdown: AtomicBool,
    compaction_scheduled: AtomicBool,
    /// Serializes compaction rounds: two concurrent rounds would compute
    /// overlapping jobs from stale version snapshots and install conflicting
    /// outputs.
    compaction_mutex: Mutex<()>,
    /// Serializes MANIFEST persistence (snapshot + append as one unit).
    /// Without it two concurrent flushes can append their snapshots out of
    /// order, leaving a record that lacks the newest SSTable as the
    /// MANIFEST's last word — which recovery would then trust, silently
    /// dropping that table's keys.
    manifest_mutex: Mutex<()>,
    /// Set when a manifest persist fails (say its pinned home StoC is down):
    /// the in-memory version is then newer than the durable MANIFEST, and a
    /// failover before a successful re-persist would resolve stale metadata.
    /// The self-healing supervisor counts this as replication debt and
    /// retries [`RangeEngine::sync_dirty_manifest`] until it clears.
    manifest_dirty: AtomicBool,
    frozen: AtomicBool,
    /// Set at migration commit: the range changed hands, so even reads must
    /// bounce with [`Error::StaleConfig`] — a reader that resolved this
    /// engine before the flip would otherwise miss writes acknowledged by
    /// the new owner.
    retired: AtomicBool,
    /// The configuration epoch at which this engine's LTC became the range's
    /// owner. Requests carrying an older epoch were routed with a stale
    /// configuration and are rejected with [`Error::StaleConfig`].
    owner_epoch: AtomicU64,
    /// While frozen for migration: the epoch a rejected writer must observe
    /// before retrying (the commit epoch the in-flight migration will
    /// create). Advisory — the writer refreshes until routing changes.
    refresh_epoch: AtomicU64,

    writes_since_reorg_check: AtomicU64,
    stats: RangeStats,
}

impl std::fmt::Debug for RangeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeEngine")
            .field("range", &self.range_id)
            .field("interval", &self.interval)
            .finish()
    }
}

impl RangeEngine {
    /// Create a new, empty range engine and start its background threads.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        range_id: RangeId,
        interval: KeyInterval,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<BlockCache>>,
    ) -> Result<Arc<Self>> {
        config.validate().map_err(Error::InvalidArgument)?;
        let dranges = DrangeSet::new(interval, config.num_dranges, config.tranges_per_drange);
        Self::build(
            range_id,
            interval,
            config,
            client,
            logc,
            placer,
            manifest,
            block_cache,
            dranges,
            Version::new(4),
            1,
            0,
            Vec::new(),
        )
    }

    /// Recover a range engine from its MANIFEST and log records (Section 4.5).
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        range_id: RangeId,
        interval: KeyInterval,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<BlockCache>>,
        recovery_threads: usize,
    ) -> Result<Arc<Self>> {
        config.validate().map_err(Error::InvalidArgument)?;
        let data = manifest.load(&client)?.unwrap_or_default();
        let dranges = if data.drange_boundaries.is_empty() {
            DrangeSet::new(interval, config.num_dranges, config.tranges_per_drange)
        } else {
            DrangeSet::from_boundaries(
                interval,
                config.num_dranges,
                config.tranges_per_drange,
                &data.drange_boundaries,
            )
        };
        let version = if data.version.num_tables() > 0 {
            data.version.clone()
        } else {
            Version::new(config.num_levels)
        };
        let recovered_logs = logc.recover_range(range_id, recovery_threads)?;
        let mut entries: Vec<Entry> = Vec::new();
        let mut max_seq = data.last_sequence;
        for records in recovered_logs.values() {
            for r in records {
                max_seq = max_seq.max(r.sequence);
                entries.push(r.to_entry());
            }
        }
        // Replay in global write order: records of one key may be spread
        // across several log files (one per memtable), and the iteration
        // order of `recovered_logs` is not the order they were written in.
        entries.sort_by_key(|e| e.sequence);
        let engine = Self::build(
            range_id,
            interval,
            config,
            client,
            logc,
            placer,
            manifest,
            block_cache,
            dranges,
            version,
            data.next_file_number.max(1),
            max_seq,
            entries,
        )?;
        Ok(engine)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        range_id: RangeId,
        interval: KeyInterval,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<BlockCache>>,
        dranges: DrangeSet,
        version: Version,
        next_file_number: u64,
        last_sequence: u64,
        replay: Vec<Entry>,
    ) -> Result<Arc<Self>> {
        let (task_tx, task_rx) = unbounded();
        let range_index = RangeIndex::new(&dranges.boundaries());
        let num_dranges = dranges.len();
        let engine = Arc::new(RangeEngine {
            range_id,
            interval,
            config,
            client,
            logc,
            placer,
            manifest,
            write_state: RwLock::new(WriteState {
                dranges,
                states: Vec::new(),
            }),
            sequence: AtomicU64::new(last_sequence),
            next_memtable_id: AtomicU64::new(1),
            next_file_number: AtomicU64::new(next_file_number),
            lookup_index: LookupIndex::new(),
            range_index,
            version: Mutex::new(version),
            table_cache: Mutex::new(HashMap::new()),
            block_cache,
            claimed_flushes: Mutex::new(std::collections::HashSet::new()),
            task_tx,
            task_rx,
            background_inflight: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            progress_gate: std::sync::Mutex::new(0),
            progress_cv: std::sync::Condvar::new(),
            shutdown: AtomicBool::new(false),
            compaction_scheduled: AtomicBool::new(false),
            compaction_mutex: Mutex::new(()),
            manifest_mutex: Mutex::new(()),
            manifest_dirty: AtomicBool::new(false),
            frozen: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            owner_epoch: AtomicU64::new(0),
            refresh_epoch: AtomicU64::new(0),
            writes_since_reorg_check: AtomicU64::new(0),
            stats: RangeStats::default(),
        });

        // Create the initial active memtable of every Drange.
        {
            let mut state = engine.write_state.write();
            let boundaries = state.dranges.boundaries();
            for (i, boundary) in boundaries.iter().enumerate().take(num_dranges) {
                let memtable = engine.new_memtable(0);
                engine.lookup_index.register_memtable(&memtable);
                engine.range_index.add_memtable(*boundary, &memtable);
                let _ = engine.logc.create_log_file(range_id, memtable.id());
                state.states.push(DrangeState {
                    active: memtable,
                    immutables: Vec::new(),
                });
                let _ = i;
            }
        }

        // Populate the lookup index with the keys of recovered Level-0 tables
        // so gets keep finding them through the index after a crash.
        let level0_best = engine.index_recovered_level0()?;

        // Start background compaction threads.
        let threads = engine.config.compaction_threads.max(1);
        let mut workers = engine.workers.lock();
        for t in 0..threads {
            let engine_clone = Arc::clone(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("range-{}-compaction-{t}", range_id.0))
                    .spawn(move || engine_clone.background_loop())
                    .expect("spawn compaction thread"),
            );
        }
        drop(workers);

        // Replay recovered log records into the fresh memtables, remembering
        // the newest replayed sequence per key: a key's newest version may
        // have been *flushed* before the crash while an older version's log
        // record survived (its memtable hadn't flushed yet), and the
        // last-write-wins lookup index must not end up pointing at the stale
        // replayed copy.
        let mut replay_best: HashMap<Vec<u8>, SequenceNumber> = HashMap::new();
        for entry in replay {
            if let Some(best) = replay_best.get_mut(entry.key.as_ref()) {
                *best = (*best).max(entry.sequence);
            } else {
                replay_best.insert(entry.key.to_vec(), entry.sequence);
            }
            match entry.value_type {
                ValueType::Value => engine.put_with_sequence(&entry.key, &entry.value, entry.sequence)?,
                ValueType::Deletion => engine.delete_with_sequence(&entry.key, entry.sequence)?,
            }
        }
        // Re-point keys whose newest Level-0 version outranks every replayed
        // one back at the Level-0 file.
        for (key, (l0_seq, mid)) in level0_best {
            if replay_best.get(&key).is_none_or(|replayed| *replayed < l0_seq) {
                engine.lookup_index.update_key(&key, mid);
            }
        }

        Ok(engine)
    }

    /// Register recovered Level-0 tables in the range and lookup indexes.
    /// Returns the newest Level-0 `(sequence, synthetic memtable id)` per
    /// key, so the caller can arbitrate against replayed log records.
    fn index_recovered_level0(&self) -> Result<HashMap<Vec<u8>, (SequenceNumber, MemtableId)>> {
        let level0: Vec<SstableMeta> = self.version.lock().level_tables(0).to_vec();
        let mut best: HashMap<Vec<u8>, (SequenceNumber, MemtableId)> = HashMap::new();
        for meta in level0 {
            // Register the file in the range index.
            if let (Some(lo), Some(hi)) = (decode_key(&meta.smallest), decode_key(&meta.largest)) {
                self.range_index
                    .add_level0_file(KeyInterval::new(lo, hi + 1), meta.file_number);
            } else {
                self.range_index.add_level0_file(self.interval, meta.file_number);
            }
            if !self.config.enable_lookup_index {
                continue;
            }
            // Enumerate its keys into the lookup index via a synthetic
            // memtable id that maps straight to the file. Level-0 files
            // overlap, so per key the newest version across all of them
            // wins, not the last file enumerated.
            let mid = MemtableId(u64::MAX - meta.file_number);
            self.lookup_index.memtable_flushed(mid, meta.file_number);
            if let Ok(entries) = nova_stoc::load_table_entries(&self.client, &meta) {
                for e in entries {
                    match best.get_mut(e.key.as_ref()) {
                        Some(slot) if slot.0 >= e.sequence => {}
                        Some(slot) => *slot = (e.sequence, mid),
                        None => {
                            best.insert(e.key.to_vec(), (e.sequence, mid));
                        }
                    }
                }
            }
        }
        for (key, (_, mid)) in &best {
            self.lookup_index.update_key(key, *mid);
        }
        Ok(best)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The range served by this engine.
    pub fn range_id(&self) -> RangeId {
        self.range_id
    }

    /// The key interval served.
    pub fn interval(&self) -> KeyInterval {
        self.interval
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RangeConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &RangeStats {
        &self.stats
    }

    /// Current reorganisation statistics of the Drange set.
    pub fn drange_stats(&self) -> crate::drange::ReorgStats {
        self.write_state.read().dranges.stats()
    }

    /// Current Drange load imbalance (standard deviation of write shares).
    pub fn drange_load_imbalance(&self) -> f64 {
        self.write_state.read().dranges.load_imbalance()
    }

    /// Number of Dranges in the current layout.
    pub fn num_dranges(&self) -> usize {
        self.write_state.read().dranges.len()
    }

    /// Level-0 data bytes (drives the write-stall threshold).
    pub fn level0_bytes(&self) -> u64 {
        self.version.lock().level_bytes(0)
    }

    /// Total number of SSTables.
    pub fn num_tables(&self) -> usize {
        self.version.lock().num_tables()
    }

    /// A snapshot of the LSM-tree version.
    pub fn version_snapshot(&self) -> Version {
        self.version.lock().clone()
    }

    /// Highest sequence number issued.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.sequence.load(Ordering::SeqCst)
    }

    /// The StoC client used by this range.
    pub(crate) fn stoc_client(&self) -> &StocClient {
        &self.client
    }

    /// The placement policy object.
    pub fn placer(&self) -> &Placer {
        &self.placer
    }

    /// Allocate a new SSTable file number.
    pub(crate) fn allocate_file_number(&self) -> FileNumber {
        self.next_file_number.fetch_add(1, Ordering::SeqCst)
    }

    /// Allocate a block of `count` file numbers, returning them.
    pub(crate) fn allocate_file_numbers(&self, count: usize) -> Vec<FileNumber> {
        let start = self.next_file_number.fetch_add(count as u64, Ordering::SeqCst);
        (start..start + count as u64).collect()
    }

    fn new_memtable(&self, generation: u64) -> Arc<Memtable> {
        let id = MemtableId(self.next_memtable_id.fetch_add(1, Ordering::SeqCst));
        Memtable::new(id, generation, self.config.memtable_size_bytes)
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Insert or update a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let seq = self.sequence.fetch_add(1, Ordering::SeqCst) + 1;
        self.put_with_sequence(key, value, seq)
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let seq = self.sequence.fetch_add(1, Ordering::SeqCst) + 1;
        self.delete_with_sequence(key, seq)
    }

    fn put_with_sequence(&self, key: &[u8], value: &[u8], seq: SequenceNumber) -> Result<()> {
        self.write_internal(key, value, seq, ValueType::Value)
    }

    fn delete_with_sequence(&self, key: &[u8], seq: SequenceNumber) -> Result<()> {
        self.write_internal(key, &[], seq, ValueType::Deletion)
    }

    fn write_internal(&self, key: &[u8], value: &[u8], seq: SequenceNumber, vt: ValueType) -> Result<()> {
        if self.frozen.load(Ordering::SeqCst) {
            return Err(self.stale_config_error());
        }
        let numeric = decode_key(key).unwrap_or(self.interval.lower);
        loop {
            // Fast path: find the Drange and append to its active memtable.
            // The append happens under the read lock so that a rotation (which
            // needs the write lock) can never mark the memtable immutable
            // while a writer is mid-append.
            let (full, drange_idx) = {
                let state = self.write_state.read();
                // Re-check under the lock: `export_for_migration` freezes and
                // then takes the write lock as a barrier, so any writer that
                // slipped past the entry check either finishes its append
                // before the snapshot is cut (and is captured by it) or
                // observes the freeze here.
                if self.frozen.load(Ordering::SeqCst) {
                    return Err(self.stale_config_error());
                }
                let idx = state.dranges.drange_for_write(numeric, seq);
                state.dranges.record_write(idx, numeric);
                let active = &state.states[idx].active;
                if !active.is_full() && !active.is_immutable() {
                    // Log first (Section 5: "generates a log record prior to
                    // writing to the memtable"), then apply.
                    if self.logc.policy().enabled() {
                        let record = LogRecord {
                            memtable_id: active.id(),
                            key: key.to_vec(),
                            value: value.to_vec(),
                            sequence: seq,
                            value_type: vt,
                        };
                        self.logc.append(self.range_id, &record)?;
                    }
                    active.add(seq, vt, key, value);
                    if self.config.enable_lookup_index {
                        self.lookup_index.update_key(key, active.id());
                    }
                    drop(state);
                    self.stats.writes.incr();
                    self.maybe_reorganize();
                    return Ok(());
                }
                (Arc::clone(active), idx)
            };
            self.rotate_memtable(drange_idx, &full)?;
        }
    }

    /// Apply a batch of writes with consecutive sequence numbers.
    ///
    /// The batch takes the Drange write state once per segment instead of
    /// once per record, and every segment's log records travel to the StoCs
    /// as one group-commit write per destination memtable instead of one
    /// fabric round trip per record. A segment is a contiguous run of the
    /// batch bounded by the `group_commit_max_records` knob, cut early when
    /// a destination memtable fills (the rotation happens between segments,
    /// off the lock, like the single-put path).
    ///
    /// Atomicity is per destination-memtable group, not batch-wide: on an
    /// error a prefix of the batch may be applied (and is readable), and log
    /// records of other groups in the failing segment may replay at recovery
    /// as unacknowledged writes. Callers that retry on the retriable errors
    /// simply re-apply the whole batch; puts are idempotent under
    /// re-execution with fresh sequence numbers.
    pub fn write_batch(&self, ops: &[BatchOp<'_>]) -> Result<()> {
        self.write_batch_with(ops, &WriteOptions::default())
    }

    /// [`RangeEngine::write_batch`] honoring per-operation [`WriteOptions`]:
    /// with `group_commit = false` every record of the batch is logged with
    /// its own write (segments of one record — the pre-group-commit
    /// protocol), regardless of the cluster's group-commit knobs.
    pub fn write_batch_with(&self, ops: &[BatchOp<'_>], options: &WriteOptions) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        if self.frozen.load(Ordering::SeqCst) {
            return Err(self.stale_config_error());
        }
        let base = self.sequence.fetch_add(ops.len() as u64, Ordering::SeqCst);
        let logging = self.logc.policy().enabled();
        let (group_bytes, group_max_records) = self.logc.group_commit_bounds();
        let segment_cap = if options.group_commit {
            group_max_records.max(1)
        } else {
            1
        };
        // Segments are bounded by bytes as well as records: a segment's log
        // records are enqueued as one unit, so an unbounded segment of large
        // values could exceed the log file's capacity (a terminal error)
        // where the same puts issued one by one would simply rotate the
        // memtable. Half a memtable keeps a comfortable margin below the
        // log capacity (sized at a small multiple of the memtable) and also
        // caps how far a segment can overshoot a filling memtable, since
        // `is_full` only reflects records applied in *earlier* segments.
        let segment_byte_cap = group_bytes.min(self.config.memtable_size_bytes / 2).max(1);
        let mut idx = 0usize;
        // Budget for the log-full escape hatch below: concurrent batch
        // writers can collectively over-stage a shared log file even though
        // each stays under the byte cap, and the single-writer cap itself
        // only holds when the log is sized at a multiple of the memtable.
        let mut log_full_retries = 0usize;
        while idx < ops.len() {
            let segment_start = idx;
            let mut rotate: Option<(usize, Arc<Memtable>)> = None;
            // Memtables whose log file filled mid-segment: rotated below so
            // the retried segment logs into fresh files, exactly what the
            // same puts issued one by one would have caused.
            let mut log_full: Vec<(usize, Arc<Memtable>)> = Vec::new();
            let mut applied = 0u64;
            {
                let state = self.write_state.read();
                // Same re-check as the single-put path: a freeze-then-barrier
                // sequence must not let a batch segment slip past the
                // migration snapshot.
                if self.frozen.load(Ordering::SeqCst) {
                    return Err(self.stale_config_error());
                }
                let mut staged: Vec<(usize, Arc<Memtable>, usize)> = Vec::new();
                let mut records: Vec<LogRecord> = Vec::new();
                let mut staged_bytes = 0usize;
                while idx < ops.len() && staged.len() < segment_cap {
                    let op = &ops[idx];
                    // Cut the segment when the next record would blow the
                    // byte budget (a single oversized record still travels
                    // alone so the batch makes progress).
                    let op_bytes = op.key().len() + op.value().len();
                    if !staged.is_empty() && staged_bytes + op_bytes > segment_byte_cap {
                        break;
                    }
                    let seq = base + idx as u64 + 1;
                    let numeric = decode_key(op.key()).unwrap_or(self.interval.lower);
                    let drange_idx = state.dranges.drange_for_write(numeric, seq);
                    state.dranges.record_write(drange_idx, numeric);
                    let active = &state.states[drange_idx].active;
                    if active.is_full() || active.is_immutable() {
                        rotate = Some((drange_idx, Arc::clone(active)));
                        break;
                    }
                    staged_bytes += op_bytes;
                    if logging {
                        records.push(LogRecord {
                            memtable_id: active.id(),
                            key: op.key().to_vec(),
                            value: op.value().to_vec(),
                            sequence: seq,
                            value_type: op.value_type(),
                        });
                    }
                    staged.push((drange_idx, Arc::clone(active), idx));
                    idx += 1;
                }
                if !staged.is_empty() {
                    // Log first (Section 5: "generates a log record prior to
                    // writing to the memtable") — one group per destination
                    // memtable — then apply the whole segment.
                    let logged = if logging {
                        self.logc.append_batch(self.range_id, &records)
                    } else {
                        Ok(())
                    };
                    match logged {
                        Ok(()) => {
                            for (_, memtable, op_idx) in &staged {
                                let op = &ops[*op_idx];
                                memtable.add(
                                    base + *op_idx as u64 + 1,
                                    op.value_type(),
                                    op.key(),
                                    op.value(),
                                );
                                if self.config.enable_lookup_index {
                                    self.lookup_index.update_key(op.key(), memtable.id());
                                }
                            }
                            applied = staged.len() as u64;
                            self.stats.writes.add(applied);
                        }
                        // A full log file is not a terminal condition for a
                        // batch any more than a full memtable is: rotate the
                        // segment's memtables (fresh memtable = fresh log
                        // file) and retry the segment. Nothing was applied;
                        // any group that did commit before the failure
                        // replays at recovery as an unacknowledged write,
                        // which the retry then re-acknowledges.
                        Err(Error::Unavailable(_)) if log_full_retries < 3 => {
                            log_full_retries += 1;
                            idx = segment_start;
                            for (drange_idx, memtable, _) in &staged {
                                if !log_full.iter().any(|(_, m)| m.id() == memtable.id()) {
                                    log_full.push((*drange_idx, Arc::clone(memtable)));
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            if applied > 0 {
                log_full_retries = 0;
                self.maybe_reorganize_n(applied);
            }
            for (drange_idx, memtable) in &log_full {
                self.rotate_memtable(*drange_idx, memtable)?;
            }
            if let Some((drange_idx, full)) = rotate {
                self.rotate_memtable(drange_idx, &full)?;
            }
        }
        Ok(())
    }

    /// Rotate a full active memtable out of its Drange, stalling if the
    /// Drange already holds its quota of immutable memtables or Level 0 is
    /// over its size budget (Challenge 1).
    fn rotate_memtable(&self, drange_idx: usize, full: &Arc<Memtable>) -> Result<()> {
        let immutable_limit = (self.config.memtables_per_drange()).saturating_sub(1).max(1);
        let stall_start = Instant::now();
        let mut stalled = false;
        loop {
            // Snapshot the progress generation before inspecting state: if a
            // flush or compaction completes between the inspection below and
            // the wait, the generation has moved and the wait returns
            // immediately instead of missing the wakeup.
            let observed_progress = *self.progress_gate.lock().expect("progress gate poisoned");
            {
                let mut state = self.write_state.write();
                if drange_idx >= state.states.len() {
                    return Ok(());
                }
                if state.states[drange_idx].active.id() != full.id() {
                    // Another writer already rotated this Drange.
                    if stalled {
                        self.stats.stall_time.add(stall_start.elapsed());
                    }
                    return Ok(());
                }
                let immutables_full = state.states[drange_idx].immutables.len() >= immutable_limit;
                let l0_stalled = self.level0_bytes() >= self.config.level0_stall_bytes;
                if !immutables_full && !l0_stalled {
                    // Perform the rotation.
                    let old = Arc::clone(&state.states[drange_idx].active);
                    old.mark_immutable();
                    state.states[drange_idx].immutables.push(Arc::clone(&old));
                    let generation = state.dranges.generation();
                    let boundary = state
                        .dranges
                        .dranges()
                        .get(drange_idx)
                        .map(|d| d.interval())
                        .unwrap_or(self.interval);
                    let fresh = self.new_memtable(generation);
                    self.lookup_index.register_memtable(&fresh);
                    self.range_index.add_memtable(boundary, &fresh);
                    let _ = self.logc.create_log_file(self.range_id, fresh.id());
                    state.states[drange_idx].active = fresh;
                    drop(state);
                    self.send_flush(drange_idx, old, false);
                    if stalled {
                        self.stats.stall_time.add(stall_start.elapsed());
                    }
                    return Ok(());
                }
                // We must stall. Make sure something will unblock us: force a
                // flush of the oldest immutable if they are all waiting, and
                // nudge the compaction coordinator if Level 0 is over budget.
                if immutables_full {
                    if let Some(oldest) = state.states[drange_idx].immutables.first() {
                        self.send_flush(drange_idx, Arc::clone(oldest), true);
                    }
                }
                if l0_stalled {
                    self.schedule_compaction();
                }
            }
            if !self.config.block_on_stall {
                self.stats.stalls.incr();
                return Err(Error::WriteStalled);
            }
            if !stalled {
                stalled = true;
                self.stats.stalls.incr();
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(Error::ShuttingDown);
            }
            // A migration froze the range while we were stalled: bail out
            // with the retriable stale-config error (the write has not been
            // applied) instead of waiting for an engine that is about to be
            // retired and would surface a terminal ShuttingDown.
            if self.frozen.load(Ordering::SeqCst) {
                return Err(self.stale_config_error());
            }
            self.wait_for_progress(observed_progress);
        }
    }

    /// Block until the progress generation advances past `observed` (a flush
    /// or compaction completed, or shutdown began). The timeout is a safety
    /// net, not a poll interval: in the normal case the notify wakes the
    /// writer immediately.
    fn wait_for_progress(&self, observed: u64) {
        let mut gen = self.progress_gate.lock().expect("progress gate poisoned");
        while *gen == observed && !self.shutdown.load(Ordering::SeqCst) {
            let (guard, timeout) = self
                .progress_cv
                .wait_timeout(gen, Duration::from_millis(20))
                .expect("progress gate poisoned");
            gen = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }

    /// Record that background work finished and wake every stalled writer.
    fn notify_progress(&self) {
        *self.progress_gate.lock().expect("progress gate poisoned") += 1;
        self.progress_cv.notify_all();
    }

    /// Periodically check whether the Drange layout needs rebalancing
    /// (Section 4.1).
    fn maybe_reorganize(&self) {
        self.maybe_reorganize_n(1);
    }

    /// [`RangeEngine::maybe_reorganize`] advancing the write counter by a
    /// whole batch segment: the check fires when the counter crosses a
    /// multiple of the configured interval.
    fn maybe_reorganize_n(&self, count: u64) {
        let after = self.writes_since_reorg_check.fetch_add(count, Ordering::Relaxed) + count;
        let interval = self.config.reorg_check_interval.max(1);
        if after / interval == (after - count) / interval {
            return;
        }
        let needs = {
            self.write_state
                .read()
                .dranges
                .needs_reorganization(self.config.reorg_epsilon)
        };
        if !needs {
            return;
        }
        let mut state = self.write_state.write();
        if !state.dranges.needs_reorganization(self.config.reorg_epsilon) {
            return;
        }
        // A reorganisation marks the impacted active memtables as immutable,
        // increments the generation id and creates new active memtables with
        // the new generation id (Section 4.1, second technique).
        let old_states = std::mem::take(&mut state.states);
        for (idx, old) in old_states.into_iter().enumerate() {
            old.active.mark_immutable();
            if !old.active.is_empty() {
                self.send_flush(idx, Arc::clone(&old.active), true);
            } else {
                self.range_index.remove_memtable(old.active.id());
            }
            for immutable in old.immutables {
                self.send_flush(idx, immutable, true);
            }
        }
        let generation = state.dranges.reorganize(self.config.reorg_epsilon);
        let boundaries = state.dranges.boundaries();
        self.range_index.refine(&boundaries);
        for boundary in &boundaries {
            let fresh = self.new_memtable(generation);
            self.lookup_index.register_memtable(&fresh);
            self.range_index.add_memtable(*boundary, &fresh);
            let _ = self.logc.create_log_file(self.range_id, fresh.id());
            state.states.push(DrangeState {
                active: fresh,
                immutables: Vec::new(),
            });
        }
        self.stats.reorganizations.incr();
    }

    // ------------------------------------------------------------------
    // Background work
    // ------------------------------------------------------------------

    fn background_loop(self: Arc<Self>) {
        loop {
            match self.task_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(BackgroundTask::Flush {
                    drange,
                    memtable,
                    force,
                }) => {
                    if let Err(e) = self.flush_memtable(drange, &memtable, force) {
                        // A failed flush leaves the memtable immutable and in
                        // place; release the claim so a later force flush can
                        // retry it.
                        self.claimed_flushes.lock().remove(&memtable.id());
                        if !matches!(e, Error::ShuttingDown) {
                            eprintln!("nova-ltc: flush of {} failed: {e}", memtable.id());
                        }
                    }
                    // Decrement before the notify so a drain woken by it
                    // observes this task as finished.
                    self.background_inflight.fetch_sub(1, Ordering::SeqCst);
                    // Immutable quota may have freed up; wake stalled writers.
                    self.notify_progress();
                }
                Ok(BackgroundTask::Compaction) => {
                    self.compaction_scheduled.store(false, Ordering::SeqCst);
                    // Compactions delete their input files. A range frozen or
                    // retired for migration has exported (or is exporting) a
                    // version that still references those inputs, so running
                    // one here would pull SSTables out from under the
                    // destination. Skip; an aborted migration reschedules on
                    // the next flush.
                    if !self.frozen.load(Ordering::SeqCst) && !self.retired.load(Ordering::SeqCst) {
                        if let Err(e) = compaction::run_compaction(&self) {
                            if !matches!(e, Error::ShuttingDown) {
                                eprintln!("nova-ltc: compaction failed: {e}");
                            }
                        }
                    }
                    self.background_inflight.fetch_sub(1, Ordering::SeqCst);
                    // Level 0 may have shrunk below the stall threshold.
                    self.notify_progress();
                }
                Ok(BackgroundTask::Shutdown) => return,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Queue a flush task, keeping the in-flight counter in step with the
    /// queue (the worker decrements when the task completes).
    fn send_flush(&self, drange: usize, memtable: Arc<Memtable>, force: bool) {
        self.background_inflight.fetch_add(1, Ordering::SeqCst);
        if self
            .task_tx
            .send(BackgroundTask::Flush {
                drange,
                memtable,
                force,
            })
            .is_err()
        {
            self.background_inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Ask the compaction coordinator to look at the tree.
    pub(crate) fn schedule_compaction(&self) {
        if !self.compaction_scheduled.swap(true, Ordering::SeqCst) {
            self.background_inflight.fetch_add(1, Ordering::SeqCst);
            if self.task_tx.send(BackgroundTask::Compaction).is_err() {
                self.background_inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Serialize compaction rounds (held for the whole round by
    /// [`compaction::run_compaction`]).
    pub(crate) fn compaction_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.compaction_mutex.lock()
    }

    /// Flush one immutable memtable (Section 4.2). If the memtable holds
    /// fewer unique keys than the threshold and `force` is false, it is
    /// merged with the Drange's other small immutable memtables instead of
    /// being written to a StoC.
    fn flush_memtable(&self, drange_idx: usize, memtable: &Arc<Memtable>, force: bool) -> Result<()> {
        // Claim the memtable: duplicate tasks (the stall loop re-sends force
        // flushes) must not flush it twice.
        if !self.claimed_flushes.lock().insert(memtable.id()) {
            return Ok(());
        }
        if memtable.is_empty() {
            self.remove_immutable(memtable.id());
            self.range_index.remove_memtable(memtable.id());
            let _ = self.logc.delete_log_file(self.range_id, memtable.id());
            return Ok(());
        }

        let stats = memtable.key_statistics();
        if !force && stats.unique_keys < self.config.unique_key_flush_threshold {
            return self.merge_small_memtable(drange_idx, memtable);
        }

        // Compact the memtable: keep only the latest version of each key.
        let entries: Vec<Entry> = memtable.iter().collect();
        let mut iter = VecIterator::new(entries);
        let survivors = compact_entries(&mut iter, MAX_SEQUENCE_NUMBER, false)?;
        if survivors.is_empty() {
            self.remove_immutable(memtable.id());
            self.range_index.remove_memtable(memtable.id());
            let _ = self.logc.delete_log_file(self.range_id, memtable.id());
            return Ok(());
        }

        let mut builder = TableBuilder::new(TableOptions {
            block_size: self.config.block_size_bytes,
            bloom_bits_per_key: self.config.bloom_bits_per_key,
            num_fragments: self.config.scatter_width,
        });
        for e in &survivors {
            builder.add(e);
        }
        let built = builder.finish()?;
        let file_number = self.allocate_file_number();
        let spec = self
            .placer
            .build_spec(file_number, 0, Some(drange_idx as u32), built.fragments.len())?;
        let meta = write_table(&self.client, &built, &spec)?;
        self.stats.bytes_flushed.add(meta.data_size);
        self.stats.flushes.incr();

        // Install in the version and the indexes.
        let table_interval = match (decode_key(&meta.smallest), decode_key(&meta.largest)) {
            (Some(lo), Some(hi)) => KeyInterval::new(lo, hi + 1),
            _ => self.interval,
        };
        self.version.lock().add_table(meta);
        self.lookup_index.memtable_flushed(memtable.id(), file_number);
        self.range_index.add_level0_file(table_interval, file_number);
        self.range_index.remove_memtable(memtable.id());
        self.remove_immutable(memtable.id());
        let _ = self.logc.delete_log_file(self.range_id, memtable.id());
        self.persist_manifest()?;

        // Level 0 may now be over budget.
        if self.level0_bytes() >= self.config.level0_stall_bytes {
            self.schedule_compaction();
        }
        Ok(())
    }

    /// Merge a small immutable memtable with its Drange's other small
    /// immutable memtables into a new memtable instead of flushing it
    /// (Section 4.2). "With a skewed pattern of writes, this technique
    /// reduces the amount of data written to StoCs by 65%."
    fn merge_small_memtable(&self, drange_idx: usize, memtable: &Arc<Memtable>) -> Result<()> {
        let mut state = self.write_state.write();
        if drange_idx >= state.states.len() {
            // The Drange layout changed (reorganisation); just force-flush.
            drop(state);
            self.claimed_flushes.lock().remove(&memtable.id());
            return self.flush_memtable(0, memtable, true);
        }
        let drange_state = &mut state.states[drange_idx];
        if !drange_state.immutables.iter().any(|m| m.id() == memtable.id()) {
            // Already handled elsewhere.
            return Ok(());
        }
        // Gather every small immutable memtable of this Drange (including the
        // one being flushed).
        let threshold = self.config.unique_key_flush_threshold;
        let (small, kept): (Vec<Arc<Memtable>>, Vec<Arc<Memtable>>) = drange_state
            .immutables
            .drain(..)
            .partition(|m| m.key_statistics().unique_keys < threshold);
        drange_state.immutables = kept;
        if small.is_empty() {
            return Ok(());
        }
        if small.len() == 1 && small[0].id() == memtable.id() && drange_state.immutables.is_empty() {
            // Nothing to merge with; keep it as-is (it will be merged later or
            // force-flushed if the Drange stalls). Release the claim so that a
            // later force flush can take it.
            drange_state.immutables.push(Arc::clone(&small[0]));
            self.claimed_flushes.lock().remove(&memtable.id());
            return Ok(());
        }

        // Merge: keep the newest version of each key across the small tables.
        // Claim every participant so their own pending flush tasks no-op.
        {
            let mut claimed = self.claimed_flushes.lock();
            for m in &small {
                claimed.insert(m.id());
            }
        }
        let children: Vec<VecIterator> = small
            .iter()
            .map(|m| VecIterator::new(m.iter().collect()))
            .collect();
        let mut merged_iter = MergingIterator::new(children);
        let survivors = compact_entries(&mut merged_iter, MAX_SEQUENCE_NUMBER, false)?;

        let generation = state.dranges.generation();
        let merged = self.new_memtable(generation);
        for e in &survivors {
            merged.add(e.sequence, e.value_type, &e.key, &e.value);
        }
        merged.mark_immutable();
        self.lookup_index.register_memtable(&merged);
        // Re-point the lookup index entries of the merged memtables.
        for m in &small {
            self.lookup_index.memtable_merged(m.id(), merged.id());
            self.range_index.remove_memtable(m.id());
            let _ = self.logc.delete_log_file(self.range_id, m.id());
        }
        // The merged memtable needs a log file so its contents survive an LTC
        // failure.
        let _ = self.logc.create_log_file(self.range_id, merged.id());
        if self.logc.policy().enabled() {
            for e in &survivors {
                let record = LogRecord {
                    memtable_id: merged.id(),
                    key: e.key.to_vec(),
                    value: e.value.to_vec(),
                    sequence: e.sequence,
                    value_type: e.value_type,
                };
                let _ = self.logc.append(self.range_id, &record);
            }
        }
        let boundary = state
            .dranges
            .dranges()
            .get(drange_idx)
            .map(|d| d.interval())
            .unwrap_or(self.interval);
        self.range_index.add_memtable(boundary, &merged);
        state.states[drange_idx].immutables.push(merged);
        self.stats.memtable_merges.add(small.len() as u64);
        Ok(())
    }

    fn remove_immutable(&self, mid: MemtableId) {
        let mut state = self.write_state.write();
        for s in state.states.iter_mut() {
            s.immutables.retain(|m| m.id() != mid);
        }
    }

    /// Persist the MANIFEST (called after every metadata mutation).
    pub(crate) fn persist_manifest(&self) -> Result<()> {
        // A frozen or retired range must not touch its MANIFEST: after the
        // export the destination persists (and then owns) the same pinned
        // MANIFEST log, and appending the source's pre-migration state after
        // the destination's record would make recovery resolve stale
        // metadata — silently dropping everything the destination flushed
        // since. An aborted migration re-syncs via `sync_manifest`.
        // Snapshot-and-append is one critical section: concurrent flushes
        // persisting independently could append an older snapshot after a
        // newer one, and recovery trusts the last record.
        let _serialized = self.manifest_mutex.lock();
        // Checked *inside* the critical section, and export_for_migration
        // drains this mutex right after freezing: a persist that was already
        // past an outside check when the freeze landed could otherwise
        // append a stale record after the destination took over the
        // MANIFEST.
        if self.frozen.load(Ordering::SeqCst) || self.retired.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Snapshot the version and the Drange boundaries in two separate
        // statements. Building `ManifestData` in a single expression kept the
        // `version` mutex guard alive (temporaries live to the end of the
        // full expression) while acquiring `write_state`, inverting the
        // write_state -> version order used by the write path
        // (`rotate_memtable` holds `write_state.write()` and then calls
        // `level0_bytes()`), which deadlocked writers against flush workers.
        let version = self.version.lock().clone();
        let drange_boundaries = self.write_state.read().dranges.boundaries();
        let data = ManifestData {
            version,
            drange_boundaries,
            next_file_number: self.next_file_number.load(Ordering::SeqCst),
            last_sequence: self.sequence.load(Ordering::SeqCst),
        };
        let result = self.manifest.save(&self.client, &data);
        // Track durability of the metadata itself: a failed save leaves the
        // durable MANIFEST behind the in-memory version (the flush that
        // triggered it may already have deleted its log file), so recovery
        // would lose acknowledged writes until a later save succeeds.
        self.manifest_dirty.store(result.is_err(), Ordering::SeqCst);
        result
    }

    /// Install the results of a compaction: remove the inputs, add the
    /// outputs, fix up both indexes, delete the input files.
    pub(crate) fn install_compaction(
        &self,
        inputs: &[SstableMeta],
        outputs: Vec<SstableMeta>,
        level0_input_keys: &[Vec<u8>],
    ) -> Result<()> {
        {
            let mut version = self.version.lock();
            for input in inputs {
                version.remove_table(input.level as usize, input.file_number);
            }
            for output in outputs {
                version.add_table(output);
            }
        }
        for input in inputs {
            if input.level == 0 {
                self.range_index.remove_level0_file(input.file_number);
                self.lookup_index
                    .remove_keys_of_level0_file(level0_input_keys, input.file_number);
            }
            self.table_cache.lock().remove(&input.file_number);
            // Drop the table's data blocks from the block cache before its
            // StoC files are deleted. Only the primary replica matters:
            // `CachingFetcher` keys every block by the primary's file id.
            // (Stale entries could never be *served* — StoC file ids are
            // unique forever — but they would waste cache capacity until
            // evicted.)
            if let Some(cache) = &self.block_cache {
                for fragment in &input.fragments {
                    if let Some(primary) = fragment.primary() {
                        cache.invalidate_file(primary.file);
                    }
                }
            }
            delete_table(&self.client, input);
        }
        self.stats.compactions.incr();
        self.persist_manifest()
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Obtain (and cache) the reader for a table's metadata block.
    pub(crate) fn table_reader(&self, meta: &SstableMeta) -> Result<Arc<TableReader>> {
        if let Some(reader) = self.table_cache.lock().get(&meta.file_number) {
            return Ok(Arc::clone(reader));
        }
        let bytes = read_meta_block(&self.client, meta)?;
        let reader = Arc::new(TableReader::open(&bytes)?);
        self.table_cache
            .lock()
            .insert(meta.file_number, Arc::clone(&reader));
        Ok(reader)
    }

    fn get_from_table(
        &self,
        meta: &SstableMeta,
        key: &[u8],
        options: &ReadOptions,
    ) -> Result<Option<Option<Bytes>>> {
        let reader = self.table_reader(meta)?;
        let fetcher = ScatteredBlockFetcher::new(&self.client, meta);
        let lookup = match &self.block_cache {
            Some(cache) => {
                let caching = CachingFetcher::with_fill(&fetcher, cache, meta, options.fill_cache);
                reader.get(&caching, key, MAX_SEQUENCE_NUMBER)?
            }
            None => reader.get(&fetcher, key, MAX_SEQUENCE_NUMBER)?,
        };
        match lookup {
            TableLookup::Found(e) => Ok(Some(Some(e.value))),
            TableLookup::Deleted(_) => Ok(Some(None)),
            TableLookup::NotFound => Ok(None),
        }
    }

    /// The LTC-wide block cache this range reads through, if enabled.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// Get the latest value of `key`, or `Err(NotFound)`.
    pub fn get(&self, key: &[u8]) -> Result<Bytes> {
        self.get_with_options(key, &ReadOptions::default())
    }

    /// [`RangeEngine::get`] honoring per-operation [`ReadOptions`]
    /// (`fill_cache = false` reads through the block cache without
    /// populating it).
    pub fn get_with_options(&self, key: &[u8], options: &ReadOptions) -> Result<Bytes> {
        // A frozen (mid-migration) range still serves reads; a *retired* one
        // has lost ownership and would miss the new owner's writes.
        if self.retired.load(Ordering::SeqCst) {
            return Err(self.stale_config_error());
        }
        self.stats.gets.incr();
        // 1. Lookup index: at most one memtable or one Level-0 table.
        if self.config.enable_lookup_index {
            if let Some(location) = self.lookup_index.lookup(key) {
                self.stats.lookup_index_hits.incr();
                match location {
                    TableLocation::Memtable(memtable) => match memtable.get(key, MAX_SEQUENCE_NUMBER) {
                        LookupResult::Found(v) => return Ok(v),
                        LookupResult::Deleted => return Err(Error::NotFound),
                        LookupResult::NotFound => { /* fall through to levels */ }
                    },
                    TableLocation::Level0Sstable(file) => {
                        let meta = self
                            .version
                            .lock()
                            .level_tables(0)
                            .iter()
                            .find(|t| t.file_number == file)
                            .cloned();
                        if let Some(meta) = meta {
                            if let Some(result) = self.get_from_table(&meta, key, options)? {
                                return result.ok_or(Error::NotFound);
                            }
                        }
                    }
                    TableLocation::Merged(_) => { /* unreachable: lookup() resolves */ }
                }
            }
        } else {
            // Without the lookup index: search the Drange's memtables newest
            // first, then every overlapping Level-0 table.
            let numeric = decode_key(key).unwrap_or(self.interval.lower);
            let memtables: Vec<Arc<Memtable>> = {
                let state = self.write_state.read();
                let mut out = Vec::new();
                for idx in state.dranges.candidates_for(numeric) {
                    if let Some(s) = state.states.get(idx) {
                        out.push(Arc::clone(&s.active));
                        out.extend(s.immutables.iter().rev().cloned());
                    }
                }
                out
            };
            let mut best: Option<Entry> = None;
            for memtable in memtables {
                match memtable.get(key, MAX_SEQUENCE_NUMBER) {
                    LookupResult::Found(v) => {
                        // Without per-memtable sequence tracking we rely on the
                        // active-then-immutable order; first hit wins.
                        return Ok(v);
                    }
                    LookupResult::Deleted => return Err(Error::NotFound),
                    LookupResult::NotFound => {}
                }
            }
            let _ = best.take();
            let level0 = self.version.lock().tables_for_key(0, key);
            // Newest Level-0 tables have the highest file numbers.
            let mut level0 = level0;
            level0.sort_by_key(|t| std::cmp::Reverse(t.file_number));
            for meta in level0 {
                if let Some(result) = self.get_from_table(&meta, key, options)? {
                    return result.ok_or(Error::NotFound);
                }
            }
        }

        // 2. Higher levels (sorted, at most one table per level).
        let num_levels = self.version.lock().num_levels();
        for level in 1..num_levels {
            let tables = self.version.lock().tables_for_key(level, key);
            for meta in tables {
                if let Some(result) = self.get_from_table(&meta, key, options)? {
                    return result.ok_or(Error::NotFound);
                }
            }
        }
        Err(Error::NotFound)
    }

    /// Scan `limit` live entries starting at `start_key` (inclusive), staying
    /// within this range's interval.
    pub fn scan(&self, start_key: &[u8], limit: usize) -> Result<ScanResult> {
        self.scan_range(start_key, None, limit, &ReadOptions::default())
    }

    /// Scan up to `limit` live entries of `[start_key, end_key)` (an absent
    /// `end_key` means "to the end of this range's interval"), honoring
    /// per-operation [`ReadOptions`]: the table-iterator readahead width
    /// comes from the options (falling back to the client's I/O
    /// parallelism), and `fill_cache = false` keeps scanned blocks out of
    /// the block cache. The end bound prunes candidate SSTables and
    /// memtable partitions up front, so a bounded scan never reads blocks
    /// past the requested interval.
    pub fn scan_range(
        &self,
        start_key: &[u8],
        end_key: Option<&[u8]>,
        limit: usize,
        options: &ReadOptions,
    ) -> Result<ScanResult> {
        if self.retired.load(Ordering::SeqCst) {
            return Err(self.stale_config_error());
        }
        self.stats.scans.incr();
        // Lower-bound decoding, not whole-key decoding: a resumed cursor's
        // start key carries a 0x00 suffix (the bytewise successor of the
        // last yielded key), and falling back to `interval.lower` for it
        // would silently disable index pruning for every chunk after the
        // first.
        let start_numeric =
            nova_common::keyspace::decode_key_lower_bound(start_key).unwrap_or(self.interval.lower);
        // The effective (exclusive) numeric upper bound: the caller's end
        // key clipped to this range's interval. Non-numeric end keys fall
        // back to the interval bound for pruning but still cut the merge
        // loop bytewise below.
        let scan_upper = end_key
            .and_then(decode_key)
            .map_or(self.interval.upper, |e| e.min(self.interval.upper));

        // Gather candidate memtables and Level-0 tables from the range index
        // (only partitions at or after the scan start).
        let (memtables, level0_files) = if self.config.enable_range_index {
            let partitions = self.range_index.partitions_overlapping(start_numeric, scan_upper);
            let mut memtables: Vec<Arc<Memtable>> = Vec::new();
            let mut files: Vec<FileNumber> = Vec::new();
            for p in partitions {
                for m in p.memtables {
                    if !memtables.iter().any(|x| x.id() == m.id()) {
                        memtables.push(m);
                    }
                }
                for f in p.level0_files {
                    if !files.contains(&f) {
                        files.push(f);
                    }
                }
            }
            (memtables, files)
        } else {
            let state = self.write_state.read();
            let mut memtables = Vec::new();
            for s in &state.states {
                memtables.push(Arc::clone(&s.active));
                memtables.extend(s.immutables.iter().cloned());
            }
            let files = self
                .version
                .lock()
                .level_tables(0)
                .iter()
                .map(|t| t.file_number)
                .collect();
            (memtables, files)
        };

        let version = self.version.lock().clone();
        let mut table_metas: Vec<SstableMeta> = version
            .level_tables(0)
            .iter()
            .filter(|t| level0_files.contains(&t.file_number))
            .cloned()
            .collect();
        // The (inclusive) byte upper bound for pruning L1+ tables. A numeric
        // end key prunes at the encoded predecessor; a non-numeric end key
        // (the index keyspace sorts after every decimal key) is its own
        // tightest bound; an unbounded scan must run to the top of the byte
        // keyspace, NOT to the encoded interval bound — index-entry tables
        // sort after every decimal key and would otherwise be skipped.
        let last_key: Vec<u8> = match end_key {
            Some(end) if decode_key(end).is_none() => end.to_vec(),
            Some(_) => nova_common::keyspace::encode_key(scan_upper.saturating_sub(1)),
            None => vec![0xFF; nova_common::keyspace::KEY_WIDTH + 1],
        };
        for level in 1..version.num_levels() {
            table_metas.extend(version.overlapping(level, start_key, &last_key));
        }

        // Build the merged iterator.
        let readers: Vec<(Arc<TableReader>, SstableMeta)> = table_metas
            .iter()
            .map(|m| self.table_reader(m).map(|r| (r, m.clone())))
            .collect::<Result<Vec<_>>>()?;
        let fetchers: Vec<ScatteredBlockFetcher<'_>> = readers
            .iter()
            .map(|(_, m)| ScatteredBlockFetcher::new(&self.client, m))
            .collect();
        // When the block cache is enabled, wrap every table's StoC fetcher so
        // scan block reads hit (and populate) the cache too.
        let caching_fetchers: Vec<CachingFetcher<'_>> = match &self.block_cache {
            Some(cache) => readers
                .iter()
                .zip(fetchers.iter())
                .map(|((_, m), f)| CachingFetcher::with_fill(f, cache, m, options.fill_cache))
                .collect(),
            None => Vec::new(),
        };

        enum Child<'a> {
            Mem(VecIterator),
            Table(nova_sstable::TableIterator<'a>),
        }
        impl EntryIterator for Child<'_> {
            fn valid(&self) -> bool {
                match self {
                    Child::Mem(i) => i.valid(),
                    Child::Table(i) => i.valid(),
                }
            }
            fn seek_to_first(&mut self) -> Result<()> {
                match self {
                    Child::Mem(i) => i.seek_to_first(),
                    Child::Table(i) => i.seek_to_first(),
                }
            }
            fn seek(&mut self, key: &[u8]) -> Result<()> {
                match self {
                    Child::Mem(i) => i.seek(key),
                    Child::Table(i) => i.seek(key),
                }
            }
            fn entry(&self) -> Entry {
                match self {
                    Child::Mem(i) => i.entry(),
                    Child::Table(i) => i.entry(),
                }
            }
            fn next(&mut self) -> Result<()> {
                match self {
                    Child::Mem(i) => i.next(),
                    Child::Table(i) => i.next(),
                }
            }
        }

        let mut children: Vec<Child<'_>> = Vec::new();
        for memtable in &memtables {
            children.push(Child::Mem(VecIterator::new(memtable.iter().collect())));
        }
        // Prefetch ahead of each table's cursor so scan block reads travel
        // to the StoCs as one concurrent batch (and pre-populate the block
        // cache when it is enabled). The width comes from the caller's
        // ReadOptions; the automatic width follows the client's I/O pool
        // (at width 1 the batch would be fetched serially anyway, so it
        // stays on strict on-demand fetching).
        let readahead = options.effective_readahead(self.client.io_parallelism(), MAX_SCAN_READAHEAD_BLOCKS);
        for (i, (reader, _)) in readers.iter().enumerate() {
            let fetcher: &dyn BlockFetcher = match caching_fetchers.get(i) {
                Some(caching) => caching,
                None => &fetchers[i],
            };
            children.push(Child::Table(reader.iter_with_readahead(fetcher, readahead)));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek(start_key)?;

        let mut out = Vec::with_capacity(limit);
        let mut last_key: Option<Vec<u8>> = None;
        while merged.valid() && out.len() < limit {
            let e = merged.entry();
            // The (exclusive) end bound cuts the merge bytewise, so the scan
            // never surfaces — or keeps reading past — keys outside the
            // requested interval.
            if end_key.is_some_and(|end| e.key.as_ref() >= end) {
                break;
            }
            merged.next()?;
            if last_key.as_deref() == Some(e.key.as_ref()) {
                continue;
            }
            last_key = Some(e.key.to_vec());
            if e.is_tombstone() {
                continue;
            }
            out.push(e);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Freeze the range for migration: new writes fail with the retriable
    /// [`Error::StaleConfig`] carrying `refresh_epoch` (the epoch the
    /// in-flight migration will commit at), while reads keep being served
    /// from the source (Section 9: the handoff window is invisible to
    /// readers).
    pub fn freeze(&self, refresh_epoch: u64) {
        self.refresh_epoch.store(refresh_epoch, Ordering::SeqCst);
        self.frozen.store(true, Ordering::SeqCst);
    }

    /// Unfreeze the range (migration aborted: the source resumes serving
    /// reads and writes as if nothing happened).
    pub fn unfreeze(&self) {
        self.retired.store(false, Ordering::SeqCst);
        self.frozen.store(false, Ordering::SeqCst);
    }

    /// Retire the range at migration commit: ownership moved, so reads are
    /// rejected with the retriable [`Error::StaleConfig`] as well — serving
    /// them from this engine would silently miss writes acknowledged by the
    /// new owner. Cleared by [`RangeEngine::unfreeze`] if the commit is
    /// rolled back.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
    }

    /// Raise this engine's owner epoch to `epoch` with a full write fence:
    /// freeze (in-flight writers bounce with the retriable `StaleConfig`),
    /// barrier on the write state so every write acknowledged before the
    /// fence is visible, flip the owner epoch, unfreeze, and re-sync the
    /// MANIFEST (persists are suppressed while frozen).
    ///
    /// This is the create-index catch-up fence: after `fence_epoch(E)`
    /// returns, every writer still running with a pre-`E` configuration has
    /// either completed (its writes are visible to the backfill scan) or
    /// will be rejected and re-plan against the post-`E` catalog — so no
    /// base write can slip between the backfill's snapshot and the index's
    /// maintenance coverage. No-op when the epoch is not an increase.
    pub fn fence_epoch(&self, epoch: u64) -> Result<()> {
        if self.owner_epoch.load(Ordering::SeqCst) >= epoch {
            return Ok(());
        }
        self.freeze(epoch);
        self.write_barrier();
        self.set_owner_epoch(epoch);
        self.unfreeze();
        self.sync_manifest()
    }

    /// Persist the MANIFEST now (no-op while frozen/retired). Called by an
    /// aborted migration after [`RangeEngine::unfreeze`] to record anything
    /// a flush completed while manifest persistence was suppressed during
    /// the freeze.
    pub fn sync_manifest(&self) -> Result<()> {
        self.persist_manifest()
    }

    /// Delete every SSTable in this engine's version whose file number is
    /// not in `keep`. Called on the retired source after a committed
    /// migration (and after [`RangeEngine::shutdown`] has joined the
    /// workers): a flush racing the freeze may have installed tables the
    /// exported snapshot never references — their entries migrated through
    /// the memtable capture, so the files would otherwise leak on the StoCs
    /// forever. Returns how many tables were purged.
    pub fn purge_tables_not_in(&self, keep: &std::collections::HashSet<FileNumber>) -> usize {
        let mut purged = 0;
        for meta in self.version_snapshot().all_tables() {
            if !keep.contains(&meta.file_number) {
                delete_table(&self.client, &meta);
                purged += 1;
            }
        }
        purged
    }

    /// Install a repaired copy of a table's metadata — same `file_number`
    /// and `level`, extended replica lists — produced by background
    /// re-replication. Returns `Ok(false)` without touching anything when
    /// the table no longer exists in the version (compacted away while the
    /// copy was in flight: the freshly written replica block leaks on its
    /// StoC, which is acceptable — the race window is one repair copy wide)
    /// or when the range is frozen/retired for migration.
    pub fn install_table_replicas(&self, meta: SstableMeta) -> Result<bool> {
        if self.is_frozen() || self.is_retired() {
            return Ok(false);
        }
        {
            let mut version = self.version.lock();
            if version
                .remove_table(meta.level as usize, meta.file_number)
                .is_none()
            {
                return Ok(false);
            }
            version.add_table(meta);
        }
        self.persist_manifest()?;
        Ok(true)
    }

    /// The log component this range appends to. The self-healing supervisor
    /// inspects it for log replicas stranded on unhealthy StoCs.
    pub fn log_component(&self) -> &Arc<LogC> {
        &self.logc
    }

    /// True if the durable MANIFEST is behind the in-memory version because
    /// a persist failed (e.g. the pinned manifest-home StoC is down). A
    /// failover in this state would resolve stale metadata, so the
    /// supervisor reports it as replication debt and keeps retrying
    /// [`RangeEngine::sync_dirty_manifest`].
    pub fn manifest_dirty(&self) -> bool {
        self.manifest_dirty.load(Ordering::SeqCst)
    }

    /// Retry a failed manifest persist; clears [`RangeEngine::manifest_dirty`]
    /// on success.
    pub fn sync_dirty_manifest(&self) -> Result<()> {
        self.persist_manifest()
    }

    /// True if the range has been retired by a committed migration.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    /// True if the range is frozen for migration.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// Background flush/compaction/reorganisation tasks queued or currently
    /// executing. A persistently non-zero value means the range is falling
    /// behind its write load (the health report's compaction backlog).
    pub fn background_backlog(&self) -> u64 {
        self.background_inflight.load(Ordering::SeqCst)
    }

    /// The configuration epoch at which this engine's LTC acquired the
    /// range (0 = unknown, accepts any caller).
    pub fn owner_epoch(&self) -> u64 {
        self.owner_epoch.load(Ordering::SeqCst)
    }

    /// Record the configuration epoch at which this engine's LTC became the
    /// range's owner (set by the cluster layer at creation, migration commit
    /// and failover recovery).
    pub fn set_owner_epoch(&self, epoch: u64) {
        self.owner_epoch.store(epoch, Ordering::SeqCst);
    }

    /// Validate a caller's cached configuration epoch against the epoch at
    /// which this engine acquired the range. A caller whose configuration
    /// predates the acquisition routed here by stale information and must
    /// refresh; newer epochs are fine (ownership has not changed since).
    pub fn check_epoch(&self, caller_epoch: u64) -> Result<()> {
        let owner = self.owner_epoch.load(Ordering::SeqCst);
        if caller_epoch < owner {
            return Err(Error::StaleConfig { epoch: owner });
        }
        Ok(())
    }

    /// The error a writer receives while the range is frozen for migration.
    fn stale_config_error(&self) -> Error {
        Error::StaleConfig {
            epoch: self.refresh_epoch.load(Ordering::SeqCst),
        }
    }

    /// The current Drange boundaries (persisted in the MANIFEST and shipped
    /// during migration).
    pub fn drange_boundaries(&self) -> Vec<KeyInterval> {
        self.write_state.read().dranges.boundaries()
    }

    /// The next file number that would be allocated (without allocating it).
    pub(crate) fn peek_next_file_number(&self) -> FileNumber {
        self.next_file_number.load(Ordering::SeqCst)
    }

    /// Acquire and release the write-state write lock. Because writers append
    /// under the read lock and re-check the freeze flag inside it, a
    /// freeze-then-barrier sequence guarantees no acknowledged write can slip
    /// past a subsequent snapshot of the memtables.
    pub(crate) fn write_barrier(&self) {
        drop(self.write_state.write());
    }

    /// Wait out any in-flight MANIFEST persist. Persists re-check the freeze
    /// flag inside this mutex, so freeze-then-barrier guarantees no source
    /// record can land after the migration's destination takes over the
    /// MANIFEST.
    pub(crate) fn manifest_barrier(&self) {
        drop(self.manifest_mutex.lock());
    }

    /// Build an engine from migrated state: an existing version plus buffered
    /// memtable entries to replay.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn import_snapshot_internal(
        range_id: RangeId,
        interval: KeyInterval,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<BlockCache>>,
        data: ManifestData,
        replay: Vec<Entry>,
    ) -> Result<Arc<Self>> {
        config.validate().map_err(Error::InvalidArgument)?;
        let dranges = if data.drange_boundaries.is_empty() {
            DrangeSet::new(interval, config.num_dranges, config.tranges_per_drange)
        } else {
            DrangeSet::from_boundaries(
                interval,
                config.num_dranges,
                config.tranges_per_drange,
                &data.drange_boundaries,
            )
        };
        let version = if data.version.num_tables() > 0 {
            data.version.clone()
        } else {
            Version::new(config.num_levels)
        };
        Self::build(
            range_id,
            interval,
            config,
            client,
            logc,
            placer,
            manifest,
            block_cache,
            dranges,
            version,
            data.next_file_number.max(1),
            data.last_sequence,
            replay,
        )
    }

    /// Collect every entry currently buffered in memtables (active and
    /// immutable), used by migration.
    pub(crate) fn memtable_entries(&self) -> Vec<Entry> {
        let state = self.write_state.read();
        let mut out = Vec::new();
        for s in &state.states {
            out.extend(s.active.iter());
            for m in &s.immutables {
                out.extend(m.iter());
            }
        }
        out
    }

    /// Rotate every non-empty active memtable onto a fresh log file and
    /// queue its flush, without waiting for the background queue to drain.
    /// The self-healing supervisor calls this when a StoC fails: open log
    /// files replicated on the dead StoC would reject every append, so
    /// rotation re-homes the write path onto placement-eligible StoCs while
    /// the flushes retire the stranded files in the background.
    pub fn rotate_memtables(&self) {
        let mut state = self.write_state.write();
        let boundaries = state.dranges.boundaries();
        let generation = state.dranges.generation();
        for (idx, s) in state.states.iter_mut().enumerate() {
            if s.active.is_empty() {
                // Nothing to flush, but the empty memtable's log file may
                // still replicate to StoCs that have since left placement
                // (failed or draining). Re-creating it re-homes the replicas
                // onto the current placeable set; the file name is unchanged
                // so later appends and the flush-time delete are unaffected.
                let _ = self.logc.create_log_file(self.range_id, s.active.id());
                continue;
            }
            let old = Arc::clone(&s.active);
            old.mark_immutable();
            s.immutables.push(Arc::clone(&old));
            let fresh = self.new_memtable(generation);
            self.lookup_index.register_memtable(&fresh);
            let boundary = boundaries.get(idx).copied().unwrap_or(self.interval);
            self.range_index.add_memtable(boundary, &fresh);
            let _ = self.logc.create_log_file(self.range_id, fresh.id());
            s.active = fresh;
            self.send_flush(idx, old, true);
        }
    }

    /// Re-queue a force flush for every immutable memtable still in place.
    /// Flushes that failed transiently — say their target StoC died before
    /// the supervisor drained it — released their claim, so this retries
    /// them; flushes already in flight are deduplicated by the claim set.
    pub fn retry_stuck_flushes(&self) {
        let state = self.write_state.read();
        for (idx, s) in state.states.iter().enumerate() {
            for m in &s.immutables {
                self.send_flush(idx, Arc::clone(m), true);
            }
        }
    }

    /// Flush every memtable and wait for the background queue to drain.
    /// Useful in tests and before a graceful shutdown.
    pub fn flush_all(&self) -> Result<()> {
        self.rotate_memtables();
        // Also force-flush existing immutables (merged small memtables that
        // nothing would otherwise force out).
        self.retry_stuck_flushes();
        self.wait_for_background_idle(Duration::from_secs(30))
    }

    /// Wait until no immutable memtables remain and the task queue is empty.
    /// Waits on the progress condvar the write-stall path uses, so the drain
    /// wakes the moment a flush or compaction completes instead of polling
    /// on a sleep loop.
    pub fn wait_for_background_idle(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            // Snapshot the progress generation *before* inspecting state: if
            // background work completes between the inspection and the wait,
            // the generation has moved and the wait returns immediately.
            let observed = *self.progress_gate.lock().expect("progress gate poisoned");
            let pending_immutables: usize = self
                .write_state
                .read()
                .states
                .iter()
                .map(|s| s.immutables.len())
                .sum();
            // Queued-or-running, not just queued: a reorganisation's
            // force-flushes target memtables that are in no immutable list,
            // so "no immutables + empty queue" alone can observe a moment
            // where such a flush is mid-install.
            if pending_immutables == 0 && self.background_inflight.load(Ordering::SeqCst) == 0 {
                return Ok(());
            }
            if pending_immutables > 0 && self.task_rx.is_empty() {
                // Lingering immutables without queued work: typically merged
                // small memtables that nothing forces out. Force-flush them so
                // the drain completes.
                let state = self.write_state.read();
                for (idx, s) in state.states.iter().enumerate() {
                    for m in &s.immutables {
                        self.send_flush(idx, Arc::clone(m), true);
                    }
                }
            }
            if Instant::now() > deadline {
                return Err(Error::Unavailable("background work did not drain in time".into()));
            }
            self.wait_for_progress(observed);
        }
    }

    /// Stop background threads. Pending flushes are abandoned (the MANIFEST
    /// and logs allow recovery).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock writers waiting in the stall loop so they can observe the
        // shutdown flag.
        self.notify_progress();
        for _ in 0..self.config.compaction_threads.max(1) {
            let _ = self.task_tx.send(BackgroundTask::Shutdown);
        }
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RangeEngine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::config::{AvailabilityPolicy, DiskConfig, LogPolicy, PlacementPolicy};
    use nova_common::keyspace::encode_key;
    use nova_common::{NodeId, StocId};
    use nova_fabric::Fabric;
    use nova_stoc::{SimDisk, StocDirectory, StocServer, StorageMedium};

    /// A self-contained test cluster: one client node plus `num_stocs` StoCs
    /// with instantaneous disks.
    struct TestCluster {
        _fabric: Arc<Fabric>,
        servers: Vec<StocServer>,
        client: StocClient,
    }

    impl TestCluster {
        fn new(num_stocs: usize) -> Self {
            let fabric = Fabric::with_defaults(num_stocs + 1);
            let directory = StocDirectory::new();
            let servers = (0..num_stocs)
                .map(|i| {
                    let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                        bandwidth_bytes_per_sec: u64::MAX / 2,
                        seek_micros: 0,
                        accounting_only: true,
                    }));
                    StocServer::start(
                        StocId(i as u32),
                        NodeId(i as u32 + 1),
                        &fabric,
                        directory.clone(),
                        medium,
                        2,
                        1,
                    )
                })
                .collect();
            let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);
            TestCluster {
                _fabric: fabric,
                servers,
                client,
            }
        }

        fn stop(self) {
            for s in self.servers {
                s.stop();
            }
        }
    }

    fn small_config() -> RangeConfig {
        RangeConfig {
            num_dranges: 4,
            tranges_per_drange: 4,
            active_memtables: 4,
            max_memtables: 16,
            memtable_size_bytes: 8 * 1024,
            scatter_width: 1,
            placement: PlacementPolicy::PowerOfD,
            availability: AvailabilityPolicy::None,
            log_policy: LogPolicy::Disabled,
            unique_key_flush_threshold: 4,
            level0_stall_bytes: 256 * 1024,
            level_size_multiplier: 10,
            level1_max_bytes: 128 * 1024,
            num_levels: 4,
            compaction_threads: 2,
            offload_compaction: false,
            reorg_epsilon: 0.05,
            reorg_check_interval: 1_000,
            enable_lookup_index: true,
            enable_range_index: true,
            block_on_stall: true,
            block_size_bytes: 1024,
            bloom_bits_per_key: 10,
        }
    }

    fn engine_with(cluster: &TestCluster, config: RangeConfig, num_keys: u64) -> Arc<RangeEngine> {
        engine_with_cache(cluster, config, num_keys, None)
    }

    fn engine_with_cache(
        cluster: &TestCluster,
        config: RangeConfig,
        num_keys: u64,
        block_cache: Option<Arc<BlockCache>>,
    ) -> Arc<RangeEngine> {
        let logc = Arc::new(LogC::new(
            cluster.client.clone(),
            config.log_policy,
            config.memtable_size_bytes as u64 * 4,
        ));
        let placer = Placer::new(
            cluster.client.clone(),
            config.placement,
            config.availability,
            Some(StocId(0)),
            7,
        );
        let manifest = Manifest::new(StocId(0), "range-0");
        RangeEngine::new(
            RangeId(0),
            KeyInterval::new(0, num_keys),
            config,
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            block_cache,
        )
        .unwrap()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let cluster = TestCluster::new(1);
        let engine = engine_with(&cluster, small_config(), 10_000);
        for i in 0..500u64 {
            engine
                .put(&encode_key(i), format!("value-{i}").as_bytes())
                .unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(
                engine.get(&encode_key(i)).unwrap().as_ref(),
                format!("value-{i}").as_bytes()
            );
        }
        assert!(engine.get(&encode_key(9_999)).is_err());
        engine.delete(&encode_key(42)).unwrap();
        assert!(matches!(engine.get(&encode_key(42)), Err(Error::NotFound)));
        // Overwrites return the newest value.
        engine.put(&encode_key(7), b"new-value").unwrap();
        assert_eq!(engine.get(&encode_key(7)).unwrap().as_ref(), b"new-value");
        assert!(engine.stats().lookup_index_hits.get() > 0);
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn write_batch_round_trips_across_rotations() {
        let cluster = TestCluster::new(2);
        let engine = engine_with(&cluster, small_config(), 10_000);
        // A batch far larger than one memtable (8 KB): segments must cut at
        // full memtables, rotate off the lock and resume.
        let keys: Vec<Vec<u8>> = (0..2_000u64).map(encode_key).collect();
        let values: Vec<Vec<u8>> = (0..2_000u64).map(|i| format!("b-{i}").into_bytes()).collect();
        let ops: Vec<BatchOp<'_>> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| BatchOp::Put { key: k, value: v })
            .collect();
        engine.write_batch(&ops).unwrap();
        assert_eq!(engine.stats().writes.get(), 2_000);
        for i in (0..2_000u64).step_by(71) {
            assert_eq!(
                engine.get(&encode_key(i)).unwrap().as_ref(),
                format!("b-{i}").as_bytes()
            );
        }
        // Mixed puts and deletes with consecutive sequence numbers: the
        // delete must win over the earlier put of the same batch.
        let seq_before = engine.last_sequence();
        let key = encode_key(77);
        let mixed = vec![
            BatchOp::Put {
                key: &key,
                value: b"shadowed",
            },
            BatchOp::Delete { key: &key },
        ];
        engine.write_batch(&mixed).unwrap();
        assert_eq!(engine.last_sequence(), seq_before + 2, "consecutive sequences");
        assert!(matches!(engine.get(&key), Err(Error::NotFound)));
        // An empty batch is a no-op.
        engine.write_batch(&[]).unwrap();
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn write_batch_of_large_values_rotates_instead_of_overflowing_the_log() {
        // A batch of values so large that a record-count-bounded segment
        // would exceed the log file's capacity in one enqueue: the byte
        // bound must cut segments small enough that the batch succeeds just
        // like the same puts issued serially (rotating memtables along the
        // way), instead of failing with a terminal "log file is full".
        let cluster = TestCluster::new(2);
        let mut config = small_config();
        config.log_policy = LogPolicy::InMemoryReplicated { replicas: 1 };
        // 8 KiB memtables; engine_with sizes the log file at 4x that.
        let engine = engine_with(&cluster, config, 10_000);
        let keys: Vec<Vec<u8>> = (0..32u64).map(encode_key).collect();
        let values: Vec<Vec<u8>> = (0..32u64)
            .map(|i| vec![b'0' + (i % 10) as u8; 4 * 1024])
            .collect();
        let ops: Vec<BatchOp<'_>> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| BatchOp::Put { key: k, value: v })
            .collect();
        engine.write_batch(&ops).unwrap();
        for (key, value) in keys.iter().zip(&values) {
            assert_eq!(engine.get(key).unwrap().as_ref(), &value[..]);
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn write_batch_rotates_memtables_when_the_log_file_fills_first() {
        // Log files sized *below* the memtable: the batch hits "log file is
        // full" while the destination memtable still has room. That must
        // not surface as a terminal error — the engine rotates the affected
        // memtables (fresh memtable = fresh log file) and retries the
        // segment, mirroring what per-record writes would have caused.
        let cluster = TestCluster::new(1);
        let mut config = small_config();
        config.log_policy = LogPolicy::InMemoryReplicated { replicas: 1 };
        config.num_dranges = 1;
        let logc = Arc::new(LogC::new(
            cluster.client.clone(),
            config.log_policy,
            // Half a memtable of log capacity: fills first, guaranteed.
            (config.memtable_size_bytes / 2) as u64,
        ));
        let placer = Placer::new(
            cluster.client.clone(),
            config.placement,
            config.availability,
            Some(StocId(0)),
            7,
        );
        let manifest = Manifest::new(StocId(0), "range-logfull");
        let engine = RangeEngine::new(
            RangeId(0),
            KeyInterval::new(0, 10_000),
            config,
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
        )
        .unwrap();
        let keys: Vec<Vec<u8>> = (0..64u64).map(encode_key).collect();
        let values: Vec<Vec<u8>> = (0..64u64).map(|i| vec![b'a' + (i % 26) as u8; 512]).collect();
        let ops: Vec<BatchOp<'_>> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| BatchOp::Put { key: k, value: v })
            .collect();
        engine.write_batch(&ops).unwrap();
        for (key, value) in keys.iter().zip(&values) {
            assert_eq!(engine.get(key).unwrap().as_ref(), &value[..]);
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn batched_writes_with_logging_survive_a_crash() {
        let cluster = TestCluster::new(3);
        let mut config = small_config();
        config.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
        config.memtable_size_bytes = 64 * 1024;

        let build = |manifest_name: &str| {
            let logc = Arc::new(LogC::new(cluster.client.clone(), config.log_policy, 1 << 20));
            let placer = Placer::new(
                cluster.client.clone(),
                config.placement,
                config.availability,
                None,
                3,
            );
            (logc, placer, Manifest::new(StocId(0), manifest_name))
        };
        let (logc, placer, manifest) = build("range-batch-crash");
        let engine = RangeEngine::new(
            RangeId(0),
            KeyInterval::new(0, 10_000),
            config.clone(),
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
        )
        .unwrap();
        let keys: Vec<Vec<u8>> = (0..300u64).map(encode_key).collect();
        let values: Vec<Vec<u8>> = (0..300u64).map(|i| format!("crash-{i}").into_bytes()).collect();
        let ops: Vec<BatchOp<'_>> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| BatchOp::Put { key: k, value: v })
            .collect();
        engine.write_batch(&ops).unwrap();
        // Crash without flushing: group-committed log records are the only
        // copy.
        engine.shutdown();
        drop(engine);

        let (logc, placer, manifest) = build("range-batch-crash");
        let recovered = RangeEngine::recover(
            RangeId(0),
            KeyInterval::new(0, 10_000),
            config.clone(),
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
            4,
        )
        .unwrap();
        for i in 0..300u64 {
            assert_eq!(
                recovered.get(&encode_key(i)).unwrap().as_ref(),
                format!("crash-{i}").as_bytes(),
                "batched key {i} must survive the crash via group-committed log replay"
            );
        }
        recovered.shutdown();
        cluster.stop();
    }

    #[test]
    fn flushes_produce_sstables_and_reads_still_work() {
        let cluster = TestCluster::new(3);
        let engine = engine_with(&cluster, small_config(), 100_000);
        // Write enough data (with values big enough) to force many flushes.
        for i in 0..3_000u64 {
            engine
                .put(&encode_key(i % 1_000), vec![b'x'; 100].as_slice())
                .unwrap();
        }
        engine.flush_all().unwrap();
        assert!(engine.num_tables() > 0, "flushes must have produced SSTables");
        assert!(engine.stats().flushes.get() > 0);
        assert!(engine.stats().bytes_flushed.get() > 0);
        // Every key remains readable after its memtable was flushed.
        for i in 0..1_000u64 {
            assert!(engine.get(&encode_key(i)).is_ok(), "key {i} lost after flush");
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn compaction_moves_data_to_level_one_and_preserves_reads() {
        let cluster = TestCluster::new(2);
        let mut config = small_config();
        config.level0_stall_bytes = 48 * 1024;
        let engine = engine_with(&cluster, config, 100_000);
        for round in 0..6u64 {
            for i in 0..1_000u64 {
                engine
                    .put(&encode_key(i), format!("round-{round}-value-{i}").as_bytes())
                    .unwrap();
            }
        }
        engine.flush_all().unwrap();
        // Give the compaction coordinator a chance to run.
        engine.schedule_compaction();
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            let v = engine.version_snapshot();
            if v.level_bytes(1) > 0 || v.level_bytes(2) > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let version = engine.version_snapshot();
        assert!(
            version.level_bytes(1) > 0 || version.level_bytes(2) > 0,
            "compaction should have populated deeper levels: L0={} tables={}",
            version.level_bytes(0),
            version.num_tables()
        );
        assert!(engine.stats().compactions.get() > 0);
        // All keys readable with their latest values.
        for i in (0..1_000u64).step_by(37) {
            let value = engine.get(&encode_key(i)).unwrap();
            assert_eq!(value.as_ref(), format!("round-5-value-{i}").as_bytes());
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn scans_return_sorted_live_keys_across_memtables_and_sstables() {
        let cluster = TestCluster::new(2);
        let engine = engine_with(&cluster, small_config(), 10_000);
        for i in 0..2_000u64 {
            engine.put(&encode_key(i), format!("v{i}").as_bytes()).unwrap();
        }
        // Flush half of the data so the scan spans memtables and SSTables.
        engine.flush_all().unwrap();
        for i in 2_000..2_500u64 {
            engine.put(&encode_key(i), format!("v{i}").as_bytes()).unwrap();
        }
        engine.delete(&encode_key(105)).unwrap();

        let result = engine.scan(&encode_key(100), 10).unwrap();
        assert_eq!(result.len(), 10);
        let keys: Vec<u64> = result.iter().map(|e| decode_key(&e.key).unwrap()).collect();
        // Key 105 was deleted, so the 10 results starting at 100 skip it.
        assert_eq!(keys, vec![100, 101, 102, 103, 104, 106, 107, 108, 109, 110]);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Scan starting past the end returns nothing.
        assert!(engine.scan(&encode_key(9_999), 10).unwrap().is_empty());
        assert!(engine.stats().scans.get() >= 2);
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn small_memtables_are_merged_not_flushed() {
        let cluster = TestCluster::new(1);
        let mut config = small_config();
        // A tiny memtable with a huge unique-key threshold: every flush takes
        // the merge path.
        config.memtable_size_bytes = 2 * 1024;
        config.unique_key_flush_threshold = 1_000;
        config.num_dranges = 1;
        config.max_memtables = 8;
        let engine = engine_with(&cluster, config, 1_000);
        // Hammer a handful of hot keys (a skewed write pattern).
        for i in 0..3_000u64 {
            engine.put(&encode_key(i % 4), vec![b'v'; 64].as_slice()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            engine.stats().memtable_merges.get() > 0,
            "skewed writes to few keys must trigger the memtable-merge optimisation"
        );
        // The hot keys are still readable with their latest values.
        for i in 0..4u64 {
            assert!(engine.get(&encode_key(i)).is_ok());
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn non_blocking_stall_policy_returns_write_stalled() {
        let cluster = TestCluster::new(1);
        let mut config = small_config();
        config.block_on_stall = false;
        config.num_dranges = 1;
        config.active_memtables = 1;
        config.max_memtables = 2;
        config.memtable_size_bytes = 1024;
        // Make Level 0 stall immediately so rotation cannot proceed.
        config.level0_stall_bytes = 1;
        let engine = engine_with(&cluster, config, 1_000);
        let mut stalled = false;
        for i in 0..10_000u64 {
            match engine.put(&encode_key(i % 100), vec![b'x'; 128].as_slice()) {
                Ok(()) => {}
                Err(Error::WriteStalled) => {
                    stalled = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(
            stalled,
            "the engine must report write stalls when configured not to block"
        );
        assert!(engine.stats().stalls.get() > 0);
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn stalled_writers_are_woken_by_flush_completion() {
        let cluster = TestCluster::new(2);
        let mut config = small_config();
        // One active + one immutable memtable per Drange: rotation stalls as
        // soon as a flush falls behind, so writers exercise the condvar wait
        // path instead of returning immediately.
        config.num_dranges = 2;
        config.active_memtables = 2;
        config.max_memtables = 4;
        config.memtable_size_bytes = 4 * 1024;
        config.unique_key_flush_threshold = 1;
        let engine = engine_with(&cluster, config, 100_000);
        let start = Instant::now();
        for i in 0..4_000u64 {
            engine
                .put(&encode_key(i % 500), vec![b'y'; 64].as_slice())
                .unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "writers stalled without being woken"
        );
        assert!(
            engine.stats().stalls.get() > 0,
            "configuration was expected to force at least one stall"
        );
        // Every write is still readable after the stalls.
        for i in 0..500u64 {
            assert!(engine.get(&encode_key(i)).is_ok());
        }
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn skewed_writes_reorganize_dranges() {
        let cluster = TestCluster::new(1);
        let mut config = small_config();
        config.num_dranges = 8;
        config.reorg_check_interval = 2_000;
        config.memtable_size_bytes = 64 * 1024;
        let engine = engine_with(&cluster, config, 10_000);
        for i in 0..30_000u64 {
            // 80% of writes hit key 0.
            let key = if i % 5 == 0 { i % 10_000 } else { 0 };
            engine.put(&encode_key(key), b"v").unwrap();
        }
        assert!(
            engine.stats().reorganizations.get() > 0,
            "a heavily skewed write load must trigger Drange reorganisation"
        );
        // Reads still work after the reorganisation.
        assert!(engine.get(&encode_key(0)).is_ok());
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn crash_recovery_with_logging_restores_memtable_contents() {
        let cluster = TestCluster::new(3);
        let mut config = small_config();
        config.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
        config.memtable_size_bytes = 64 * 1024;

        let logc = Arc::new(LogC::new(cluster.client.clone(), config.log_policy, 1 << 20));
        let placer = Placer::new(
            cluster.client.clone(),
            config.placement,
            config.availability,
            None,
            3,
        );
        let manifest = Manifest::new(StocId(0), "range-crash");
        let engine = RangeEngine::new(
            RangeId(0),
            KeyInterval::new(0, 10_000),
            config.clone(),
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
        )
        .unwrap();
        for i in 0..200u64 {
            engine
                .put(&encode_key(i), format!("durable-{i}").as_bytes())
                .unwrap();
        }
        // Simulate an LTC crash: drop the engine without flushing.
        engine.shutdown();
        drop(engine);

        let logc = Arc::new(LogC::new(cluster.client.clone(), config.log_policy, 1 << 20));
        let placer = Placer::new(
            cluster.client.clone(),
            config.placement,
            config.availability,
            None,
            3,
        );
        let manifest = Manifest::new(StocId(0), "range-crash");
        let recovered = RangeEngine::recover(
            RangeId(0),
            KeyInterval::new(0, 10_000),
            config,
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
            4,
        )
        .unwrap();
        for i in 0..200u64 {
            assert_eq!(
                recovered.get(&encode_key(i)).unwrap().as_ref(),
                format!("durable-{i}").as_bytes(),
                "key {i} must survive the crash via log replay"
            );
        }
        recovered.shutdown();
        cluster.stop();
    }

    #[test]
    fn migration_snapshot_rebuilds_an_equivalent_range() {
        let cluster = TestCluster::new(2);
        let config = small_config();
        let engine = engine_with(&cluster, config.clone(), 10_000);
        for i in 0..1_500u64 {
            engine.put(&encode_key(i), format!("m-{i}").as_bytes()).unwrap();
        }
        engine.flush_all().unwrap();
        for i in 1_500..1_700u64 {
            engine.put(&encode_key(i), format!("m-{i}").as_bytes()).unwrap();
        }

        let snapshot = engine.export_for_migration(42).unwrap();
        assert!(engine.is_frozen());
        // Writes during the handoff window are rejected with the retriable
        // StaleConfig error carrying the epoch to refresh to...
        assert!(matches!(
            engine.put(&encode_key(1), b"x"),
            Err(Error::StaleConfig { epoch: 42 })
        ));
        // ...while the frozen source keeps serving reads.
        assert_eq!(
            engine.get(&encode_key(7)).unwrap().as_ref(),
            b"m-7",
            "the source must keep serving reads while frozen"
        );
        assert!(snapshot.metadata_bytes() > 0);
        assert!(snapshot.memtable_bytes() > 0);

        let logc = Arc::new(LogC::new(cluster.client.clone(), config.log_policy, 1 << 20));
        let placer = Placer::new(
            cluster.client.clone(),
            config.placement,
            config.availability,
            None,
            9,
        );
        let manifest = Manifest::new(StocId(1), "range-0-migrated");
        let destination = RangeEngine::import_from_migration(
            snapshot,
            config,
            cluster.client.clone(),
            logc,
            placer,
            manifest,
            None,
        )
        .unwrap();
        for i in (0..1_700u64).step_by(61) {
            assert_eq!(
                destination.get(&encode_key(i)).unwrap().as_ref(),
                format!("m-{i}").as_bytes(),
                "key {i} must be readable on the destination LTC"
            );
        }
        // The destination accepts new writes; the source stays frozen.
        destination.put(&encode_key(1_800), b"after-migration").unwrap();
        assert_eq!(
            destination.get(&encode_key(1_800)).unwrap().as_ref(),
            b"after-migration"
        );
        // Commit retires the source: reads bounce too, since serving them
        // would miss the new owner's writes.
        engine.retire();
        assert!(engine.is_retired());
        assert!(matches!(
            engine.get(&encode_key(7)),
            Err(Error::StaleConfig { .. })
        ));
        assert!(matches!(
            engine.scan(&encode_key(0), 5),
            Err(Error::StaleConfig { .. })
        ));
        // A rolled-back commit (unfreeze) restores reads and writes alike.
        engine.unfreeze();
        assert_eq!(engine.get(&encode_key(7)).unwrap().as_ref(), b"m-7");
        engine.put(&encode_key(7), b"rolled-back").unwrap();
        assert_eq!(engine.get(&encode_key(7)).unwrap().as_ref(), b"rolled-back");
        engine.shutdown();
        destination.shutdown();
        cluster.stop();
    }

    #[test]
    fn frozen_range_suppresses_manifest_writes_until_resynced() {
        // A flush completing while the range is frozen for migration must
        // not append to the (shared, pinned) MANIFEST: the destination owns
        // it from the import onwards, and a stale source record appended
        // after the destination's would win at recovery. An aborted
        // migration heals via sync_manifest.
        let cluster = TestCluster::new(1);
        let engine = engine_with(&cluster, small_config(), 10_000);
        let manifest = Manifest::new(StocId(0), "range-0");
        for i in 0..1_000u64 {
            engine.put(&encode_key(i), vec![b'm'; 32].as_slice()).unwrap();
        }
        engine.flush_all().unwrap();
        let persisted = manifest.load(&cluster.client).unwrap().expect("manifest exists");
        let tables_before = persisted.version.num_tables();
        assert!(tables_before > 0);

        // Buffer a batch small enough to stay in the active memtable (no
        // background rotation), then freeze with it unflushed: the flush
        // below emulates a pre-freeze flush completing mid-handoff.
        for i in 1_000..1_040u64 {
            engine.put(&encode_key(i), vec![b'n'; 32].as_slice()).unwrap();
        }
        engine.freeze(9);
        engine.flush_all().unwrap();
        assert!(engine.num_tables() > tables_before, "the flush itself ran");
        let during = manifest.load(&cluster.client).unwrap().expect("manifest exists");
        assert_eq!(
            during.version.num_tables(),
            tables_before,
            "a frozen range must not append MANIFEST records"
        );

        // The aborted migration unfreezes and re-syncs whatever the frozen
        // window flushed.
        engine.unfreeze();
        engine.sync_manifest().unwrap();
        let healed = manifest.load(&cluster.client).unwrap().expect("manifest exists");
        assert!(healed.version.num_tables() > tables_before);
        assert!(healed.last_sequence > persisted.last_sequence);
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn hybrid_availability_survives_a_stoc_failure() {
        let cluster = TestCluster::new(4);
        let mut config = small_config();
        config.scatter_width = 3;
        config.availability = AvailabilityPolicy::Hybrid;
        let engine = engine_with(&cluster, config, 10_000);
        for i in 0..2_000u64 {
            engine.put(&encode_key(i), vec![b'h'; 64].as_slice()).unwrap();
        }
        engine.flush_all().unwrap();
        assert!(engine.num_tables() > 0);
        // Fail one StoC that holds data fragments.
        let version = engine.version_snapshot();
        let victim = version.all_tables()[0].fragments[0].replicas[0].stoc;
        let victim_node = cluster.client.directory().node_of(victim).unwrap();
        cluster._fabric.fail_node(victim_node);
        // Reads still succeed through parity reconstruction / replicas.
        let mut readable = 0;
        for i in (0..2_000u64).step_by(97) {
            if engine.get(&encode_key(i)).is_ok() {
                readable += 1;
            }
        }
        assert!(
            readable >= 18,
            "most keys must stay readable with one failed StoC, got {readable}"
        );
        cluster._fabric.recover_node(victim_node);
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn concurrent_writers_and_readers_make_progress() {
        let cluster = TestCluster::new(2);
        let mut config = small_config();
        config.memtable_size_bytes = 32 * 1024;
        let engine = engine_with(&cluster, config, 100_000);
        let writers: Vec<_> = (0..3u64)
            .map(|t| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = t * 10_000 + i;
                        engine
                            .put(&encode_key(key), format!("t{t}-{i}").as_bytes())
                            .unwrap();
                    }
                })
            })
            .collect();
        let reader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for i in 0..2_000u64 {
                    if engine.get(&encode_key(i)).is_ok() {
                        hits += 1;
                    }
                }
                hits
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let _ = reader.join().unwrap();
        assert_eq!(engine.stats().writes.get(), 6_000);
        for t in 0..3u64 {
            assert_eq!(
                engine.get(&encode_key(t * 10_000 + 1_999)).unwrap().as_ref(),
                format!("t{t}-1999").as_bytes()
            );
        }
        engine.shutdown();
        cluster.stop();
    }

    fn stoc_bytes_read(cluster: &TestCluster) -> u64 {
        cluster
            .client
            .directory()
            .all()
            .into_iter()
            .map(|s| cluster.client.stats(s).map(|st| st.bytes_read).unwrap_or(0))
            .sum()
    }

    #[test]
    fn second_get_of_same_key_skips_the_stoc_round_trip() {
        let cluster = TestCluster::new(1);
        let cache = Arc::new(BlockCache::new(1 << 20, 4, false));
        let engine = engine_with_cache(&cluster, small_config(), 10_000, Some(Arc::clone(&cache)));
        for i in 0..2_000u64 {
            engine
                .put(&encode_key(i), format!("cached-{i}").as_bytes())
                .unwrap();
        }
        engine.flush_all().unwrap();
        assert!(
            engine.num_tables() > 0,
            "data must be in SSTables for the cache to matter"
        );

        // First read: goes to the StoC and populates the cache.
        assert_eq!(engine.get(&encode_key(777)).unwrap().as_ref(), b"cached-777");
        let bytes_read_before = stoc_bytes_read(&cluster);
        let hits_before = cache.stats().hits;

        // Second read of the same key: served from the block cache, so the
        // StoCs see no additional medium reads.
        assert_eq!(engine.get(&encode_key(777)).unwrap().as_ref(), b"cached-777");
        assert_eq!(
            stoc_bytes_read(&cluster),
            bytes_read_before,
            "a cached get must not touch the StoCs"
        );
        assert!(
            cache.stats().hits > hits_before,
            "the second get must hit the cache"
        );
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn scans_read_through_the_block_cache() {
        let cluster = TestCluster::new(1);
        let cache = Arc::new(BlockCache::new(1 << 20, 4, false));
        let engine = engine_with_cache(&cluster, small_config(), 10_000, Some(Arc::clone(&cache)));
        for i in 0..2_000u64 {
            engine.put(&encode_key(i), format!("s{i}").as_bytes()).unwrap();
        }
        engine.flush_all().unwrap();

        let first = engine.scan(&encode_key(100), 50).unwrap();
        assert_eq!(first.len(), 50);
        assert!(cache.stats().insertions > 0, "scan must populate the cache");
        let bytes_read_before = stoc_bytes_read(&cluster);
        let second = engine.scan(&encode_key(100), 50).unwrap();
        assert_eq!(first, second, "cached and uncached scans must agree");
        assert_eq!(
            stoc_bytes_read(&cluster),
            bytes_read_before,
            "a fully cached scan must not touch the StoCs"
        );
        engine.shutdown();
        cluster.stop();
    }

    #[test]
    fn compaction_invalidates_cached_blocks_of_deleted_tables() {
        let cluster = TestCluster::new(2);
        let cache = Arc::new(BlockCache::new(4 << 20, 4, false));
        let mut config = small_config();
        config.level0_stall_bytes = 48 * 1024;
        let engine = engine_with_cache(&cluster, config, 100_000, Some(Arc::clone(&cache)));
        for round in 0..6u64 {
            for i in 0..1_000u64 {
                engine
                    .put(&encode_key(i), format!("r{round}-{i}").as_bytes())
                    .unwrap();
            }
            // Read between rounds so Level-0 blocks enter the cache before
            // compaction deletes their tables.
            for i in (0..1_000u64).step_by(101) {
                let _ = engine.get(&encode_key(i));
            }
        }
        engine.flush_all().unwrap();
        engine.schedule_compaction();
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline && engine.stats().compactions.get() == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(engine.stats().compactions.get() > 0, "compaction must have run");
        assert!(
            cache.stats().invalidations > 0,
            "compaction must invalidate cached blocks of its input tables"
        );
        // Reads after invalidation still return the newest values.
        for i in (0..1_000u64).step_by(37) {
            assert_eq!(
                engine.get(&encode_key(i)).unwrap().as_ref(),
                format!("r5-{i}").as_bytes()
            );
        }
        engine.shutdown();
        cluster.stop();
    }
}
