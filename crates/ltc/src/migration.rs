//! Range migration between LTCs (Section 9, "Adding and Removing LTCs" and
//! the load-balancing experiment of Section 8.2.6 / Table 6).
//!
//! "Scaling LTCs migrates one or more ranges from a source LTC to one or more
//! destination LTCs. It requires the source LTC to inform the destination LTC
//! of the metadata of the migrating range. This includes the metadata of
//! LSM-tree, Dranges, Tranges, lookup index, range index, and locations of
//! log record replicas. … The destination LTC uses this metadata to
//! reconstruct the range."
//!
//! In this reproduction the snapshot carries the manifest-level metadata plus
//! the contents of partially-full memtables; when logging is enabled the
//! destination could instead replay log records, but carrying the entries
//! keeps migration correct under every logging policy.

use crate::placement::Placer;
use crate::range::RangeEngine;
use crate::version::{Manifest, ManifestData};
use nova_common::config::RangeConfig;
use nova_common::keyspace::KeyInterval;
use nova_common::types::Entry;
use nova_common::{RangeId, Result};
use nova_logc::LogC;
use nova_stoc::StocClient;
use std::sync::Arc;

/// Everything needed to reconstruct a range on another LTC.
#[derive(Debug, Clone)]
pub struct RangeSnapshot {
    /// The migrating range.
    pub range_id: RangeId,
    /// The key interval it serves.
    pub interval: KeyInterval,
    /// LSM-tree metadata: version, Drange boundaries, counters.
    pub manifest: ManifestData,
    /// Entries buffered in memtables at the time of the snapshot.
    pub memtable_entries: Vec<Entry>,
}

impl RangeSnapshot {
    /// Bytes of metadata transferred (the paper reports ~613 KB of a 45 MB
    /// migration being metadata).
    pub fn metadata_bytes(&self) -> usize {
        self.manifest.encode().len()
    }

    /// Bytes of memtable state transferred (the remaining ~99% in the paper,
    /// which it reconstructs from log records).
    pub fn memtable_bytes(&self) -> usize {
        self.memtable_entries.iter().map(|e| e.approximate_size()).sum()
    }

    /// Total bytes transferred by the migration.
    pub fn total_bytes(&self) -> usize {
        self.metadata_bytes() + self.memtable_bytes()
    }
}

impl RangeEngine {
    /// Export the range for migration (phase 1, *prepare*): freeze writes,
    /// wait out in-flight appends, then capture the manifest metadata and
    /// the buffered memtable entries. Reads keep being served by the source
    /// throughout; rejected writers receive a retriable
    /// [`nova_common::Error::StaleConfig`] carrying `refresh_epoch`.
    pub fn export_for_migration(&self, refresh_epoch: u64) -> Result<RangeSnapshot> {
        self.freeze(refresh_epoch);
        // Barrier: writers append under the write-state read lock and
        // re-check the freeze flag inside it, so once this write lock has
        // been acquired every acknowledged write is either in a memtable
        // (captured below) or was rejected with StaleConfig.
        self.write_barrier();
        // Drain any in-flight MANIFEST persist: persists re-check the freeze
        // flag under this mutex, so after the barrier the source can no
        // longer append a record behind the destination's back.
        self.manifest_barrier();
        // Drain any in-flight compaction round before snapshotting (rounds
        // serialize on this guard): a round finishing after the snapshot
        // would delete input SSTables the exported version still references.
        // New rounds are gated off while the range is frozen.
        let _compactions_drained = self.compaction_guard();
        // Capture memtable entries *before* the version: a flush completing
        // in between then lands the same entries in both the replay set and
        // the version, and replay-by-sequence-number deduplicates them. The
        // opposite order would lose entries whose memtable retired after the
        // version snapshot was taken.
        let memtable_entries = self.memtable_entries();
        let manifest = ManifestData {
            version: self.version_snapshot(),
            drange_boundaries: self.drange_boundaries(),
            next_file_number: self.peek_next_file_number(),
            last_sequence: self.last_sequence(),
        };
        Ok(RangeSnapshot {
            range_id: self.range_id(),
            interval: self.interval(),
            manifest,
            memtable_entries,
        })
    }

    /// Reconstruct a range from a migration snapshot on the destination LTC.
    ///
    /// SSTables are not copied: they stay on the StoCs and the destination
    /// simply references them through the migrated metadata — this is what
    /// makes migration take only seconds in the paper.
    #[allow(clippy::too_many_arguments)]
    pub fn import_from_migration(
        snapshot: RangeSnapshot,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<nova_cache::BlockCache>>,
    ) -> Result<Arc<Self>> {
        let engine = RangeEngine::import_snapshot_internal(
            snapshot.range_id,
            snapshot.interval,
            config,
            client,
            logc,
            placer,
            manifest,
            block_cache,
            snapshot.manifest,
            snapshot.memtable_entries,
        )?;
        if let Err(e) = engine.persist_manifest() {
            // Abort: tear the half-built engine down (its background threads
            // hold Arc clones and would otherwise live forever) so the caller
            // can unfreeze the source and report the failure.
            engine.shutdown();
            return Err(e);
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_accounting() {
        let snapshot = RangeSnapshot {
            range_id: RangeId(1),
            interval: KeyInterval::new(0, 100),
            manifest: ManifestData::default(),
            memtable_entries: vec![Entry::put(&b"key"[..], 1, vec![0u8; 100])],
        };
        assert!(snapshot.metadata_bytes() > 0);
        assert!(snapshot.memtable_bytes() > 100);
        assert_eq!(
            snapshot.total_bytes(),
            snapshot.metadata_bytes() + snapshot.memtable_bytes()
        );
    }
}
