//! Range migration between LTCs (Section 9, "Adding and Removing LTCs" and
//! the load-balancing experiment of Section 8.2.6 / Table 6).
//!
//! "Scaling LTCs migrates one or more ranges from a source LTC to one or more
//! destination LTCs. It requires the source LTC to inform the destination LTC
//! of the metadata of the migrating range. This includes the metadata of
//! LSM-tree, Dranges, Tranges, lookup index, range index, and locations of
//! log record replicas. … The destination LTC uses this metadata to
//! reconstruct the range."
//!
//! In this reproduction the snapshot carries the manifest-level metadata plus
//! the contents of partially-full memtables; when logging is enabled the
//! destination could instead replay log records, but carrying the entries
//! keeps migration correct under every logging policy.

use crate::placement::Placer;
use crate::range::RangeEngine;
use crate::version::{Manifest, ManifestData};
use nova_common::config::RangeConfig;
use nova_common::keyspace::KeyInterval;
use nova_common::types::Entry;
use nova_common::{RangeId, Result};
use nova_logc::LogC;
use nova_stoc::StocClient;
use std::sync::Arc;

/// Everything needed to reconstruct a range on another LTC.
#[derive(Debug, Clone)]
pub struct RangeSnapshot {
    /// The migrating range.
    pub range_id: RangeId,
    /// The key interval it serves.
    pub interval: KeyInterval,
    /// LSM-tree metadata: version, Drange boundaries, counters.
    pub manifest: ManifestData,
    /// Entries buffered in memtables at the time of the snapshot.
    pub memtable_entries: Vec<Entry>,
}

impl RangeSnapshot {
    /// Bytes of metadata transferred (the paper reports ~613 KB of a 45 MB
    /// migration being metadata).
    pub fn metadata_bytes(&self) -> usize {
        self.manifest.encode().len()
    }

    /// Bytes of memtable state transferred (the remaining ~99% in the paper,
    /// which it reconstructs from log records).
    pub fn memtable_bytes(&self) -> usize {
        self.memtable_entries.iter().map(|e| e.approximate_size()).sum()
    }

    /// Total bytes transferred by the migration.
    pub fn total_bytes(&self) -> usize {
        self.metadata_bytes() + self.memtable_bytes()
    }
}

impl RangeEngine {
    /// Export the range for migration: freeze writes, then capture the
    /// manifest metadata and the buffered memtable entries.
    pub fn export_for_migration(&self) -> Result<RangeSnapshot> {
        self.freeze();
        let manifest = ManifestData {
            version: self.version_snapshot(),
            drange_boundaries: Vec::new(),
            next_file_number: 0,
            last_sequence: self.last_sequence(),
        };
        // Re-load boundaries and counters through the public surface to keep
        // the snapshot consistent with what persist_manifest would write.
        let mut manifest = manifest;
        manifest.drange_boundaries = self.drange_boundaries();
        manifest.next_file_number = self.peek_next_file_number();
        Ok(RangeSnapshot {
            range_id: self.range_id(),
            interval: self.interval(),
            manifest,
            memtable_entries: self.memtable_entries(),
        })
    }

    /// Reconstruct a range from a migration snapshot on the destination LTC.
    ///
    /// SSTables are not copied: they stay on the StoCs and the destination
    /// simply references them through the migrated metadata — this is what
    /// makes migration take only seconds in the paper.
    #[allow(clippy::too_many_arguments)]
    pub fn import_from_migration(
        snapshot: RangeSnapshot,
        config: RangeConfig,
        client: StocClient,
        logc: Arc<LogC>,
        placer: Placer,
        manifest: Manifest,
        block_cache: Option<Arc<nova_cache::BlockCache>>,
    ) -> Result<Arc<Self>> {
        let engine = RangeEngine::import_snapshot_internal(
            snapshot.range_id,
            snapshot.interval,
            config,
            client,
            logc,
            placer,
            manifest,
            block_cache,
            snapshot.manifest,
            snapshot.memtable_entries,
        )?;
        engine.persist_manifest()?;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_accounting() {
        let snapshot = RangeSnapshot {
            range_id: RangeId(1),
            interval: KeyInterval::new(0, 100),
            manifest: ManifestData::default(),
            memtable_entries: vec![Entry::put(&b"key"[..], 1, vec![0u8; 100])],
        };
        assert!(snapshot.metadata_bytes() > 0);
        assert!(snapshot.memtable_bytes() > 100);
        assert_eq!(
            snapshot.total_bytes(),
            snapshot.metadata_bytes() + snapshot.memtable_bytes()
        );
    }
}
