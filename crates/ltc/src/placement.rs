//! SSTable placement across StoCs (Section 4.4) and availability
//! (Section 4.4.1).
//!
//! An LTC configured with scatter width ρ partitions each SSTable into ρ
//! fragments and chooses the StoCs that receive them using one of three
//! policies: the StoC local to the LTC's node (shared-nothing), ρ StoCs
//! chosen uniformly at random, or *power-of-d*: peek at the disk queues of 2ρ
//! randomly selected StoCs and pick the ρ with the shortest queues.

use nova_common::config::{AvailabilityPolicy, PlacementPolicy};
use nova_common::{Error, FileNumber, Result, StocId};
use nova_stoc::{StocClient, TableWriteSpec};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Chooses StoCs for new SSTables.
pub struct Placer {
    client: StocClient,
    policy: PlacementPolicy,
    availability: AvailabilityPolicy,
    /// The StoC co-located with this LTC (used by the shared-nothing
    /// configuration of Figure 1).
    local_stoc: Option<StocId>,
    rng: Mutex<StdRng>,
}

impl std::fmt::Debug for Placer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Placer")
            .field("policy", &self.policy)
            .field("availability", &self.availability)
            .field("local_stoc", &self.local_stoc)
            .finish()
    }
}

impl Placer {
    /// Create a placer.
    pub fn new(
        client: StocClient,
        policy: PlacementPolicy,
        availability: AvailabilityPolicy,
        local_stoc: Option<StocId>,
        seed: u64,
    ) -> Self {
        Placer {
            client,
            policy,
            availability,
            local_stoc,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The configured placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The configured availability policy.
    pub fn availability(&self) -> AvailabilityPolicy {
        self.availability
    }

    /// Pick `rho` StoCs for the fragments of one SSTable. Only
    /// placement-eligible StoCs are considered: a draining StoC keeps
    /// serving reads of its existing blocks but receives no new tables.
    pub fn choose_stocs(&self, rho: usize) -> Result<Vec<StocId>> {
        let all = self.client.directory().placeable();
        if all.is_empty() {
            return Err(Error::Unavailable(
                "no placement-eligible StoCs registered".into(),
            ));
        }
        let rho = rho.clamp(1, all.len());
        match self.policy {
            PlacementPolicy::LocalOnly => {
                let stoc = self.local_stoc.unwrap_or(all[0]);
                Ok(vec![stoc; rho])
            }
            PlacementPolicy::Random => {
                let mut rng = self.rng.lock();
                let mut candidates = (*all).clone();
                candidates.shuffle(&mut *rng);
                Ok(candidates.into_iter().take(rho).collect())
            }
            PlacementPolicy::PowerOfD => {
                // Peek at the queues of d = 2ρ randomly selected StoCs and
                // keep the ρ shortest (Section 4.4).
                let d = (rho * 2).min(all.len());
                let mut candidates = (*all).clone();
                {
                    let mut rng = self.rng.lock();
                    candidates.shuffle(&mut *rng);
                }
                candidates.truncate(d);
                let mut with_depth: Vec<(u64, StocId)> = candidates
                    .into_iter()
                    .map(|s| (self.client.queue_depth(s).unwrap_or(u64::MAX), s))
                    .collect();
                with_depth.sort_by_key(|(depth, _)| *depth);
                Ok(with_depth.into_iter().take(rho).map(|(_, s)| s).collect())
            }
        }
    }

    /// Build the full write spec for a new table: fragment placement,
    /// replication, parity and metadata-block placement according to the
    /// availability policy.
    pub fn build_spec(
        &self,
        file_number: FileNumber,
        level: u32,
        drange: Option<u32>,
        num_fragments: usize,
    ) -> Result<TableWriteSpec> {
        let all = self.client.directory().placeable();
        if all.is_empty() {
            return Err(Error::Unavailable(
                "no placement-eligible StoCs registered".into(),
            ));
        }
        let primaries = self.choose_stocs(num_fragments)?;
        let data_copies = self.availability.data_copies() as usize;

        // Each fragment gets `data_copies` distinct StoCs, starting with its
        // primary and continuing round the directory.
        let mut fragment_placement = Vec::with_capacity(num_fragments);
        for (i, &primary) in primaries.iter().enumerate() {
            let mut replicas = vec![primary];
            if data_copies > 1 {
                let start = all.iter().position(|&s| s == primary).unwrap_or(i);
                let mut offset = 1;
                while replicas.len() < data_copies.min(all.len()) {
                    let candidate = all[(start + offset) % all.len()];
                    if !replicas.contains(&candidate) {
                        replicas.push(candidate);
                    }
                    offset += 1;
                }
            }
            fragment_placement.push(replicas);
        }

        // Metadata block replicas: small, so the Hybrid policy replicates
        // them 3× (Section 4.4.1).
        let meta_copies = (self.availability.metadata_replicas() as usize)
            .min(all.len())
            .max(1);
        let meta_start = all.iter().position(|&s| s == primaries[0]).unwrap_or(0);
        let meta_placement: Vec<StocId> = (0..meta_copies)
            .map(|i| all[(meta_start + i) % all.len()])
            .collect();

        // Parity goes to a StoC not already holding a data fragment when
        // possible.
        let parity_placement = if self.availability.uses_parity() {
            let used: Vec<StocId> = fragment_placement.iter().flatten().copied().collect();
            let candidate = all
                .iter()
                .copied()
                .find(|s| !used.contains(s))
                .unwrap_or(all[(meta_start + 1) % all.len()]);
            Some(candidate)
        } else {
            None
        };

        Ok(TableWriteSpec {
            file_number,
            level,
            drange,
            fragment_placement,
            meta_placement,
            parity_placement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::config::DiskConfig;
    use nova_common::NodeId;
    use nova_fabric::Fabric;
    use nova_stoc::{SimDisk, StocDirectory, StocServer, StorageMedium};
    use std::sync::Arc;

    fn cluster(num_stocs: usize) -> (Arc<Fabric>, Vec<StocServer>, StocClient) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);
        (fabric, servers, client)
    }

    #[test]
    fn local_only_uses_the_local_stoc() {
        let (_f, servers, client) = cluster(4);
        let placer = Placer::new(
            client,
            PlacementPolicy::LocalOnly,
            AvailabilityPolicy::None,
            Some(StocId(2)),
            1,
        );
        assert_eq!(
            placer.choose_stocs(3).unwrap(),
            vec![StocId(2), StocId(2), StocId(2)]
        );
        assert_eq!(placer.policy(), PlacementPolicy::LocalOnly);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn random_placement_picks_distinct_stocs() {
        let (_f, servers, client) = cluster(6);
        let placer = Placer::new(
            client,
            PlacementPolicy::Random,
            AvailabilityPolicy::None,
            None,
            42,
        );
        for _ in 0..10 {
            let chosen = placer.choose_stocs(3).unwrap();
            assert_eq!(chosen.len(), 3);
            let mut unique = chosen.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), 3, "random placement must not repeat StoCs");
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn rho_is_clamped_to_the_number_of_stocs() {
        let (_f, servers, client) = cluster(2);
        let placer = Placer::new(client, PlacementPolicy::Random, AvailabilityPolicy::None, None, 7);
        assert_eq!(placer.choose_stocs(10).unwrap().len(), 2);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn power_of_d_prefers_short_queues() {
        let (_f, servers, client) = cluster(4);
        // Make StoC 0 appear busy by loading it with large writes through a
        // slow disk? Instead, simply verify the mechanism returns the
        // requested number of distinct StoCs and consults queue depths.
        let placer = Placer::new(
            client,
            PlacementPolicy::PowerOfD,
            AvailabilityPolicy::None,
            None,
            3,
        );
        let chosen = placer.choose_stocs(2).unwrap();
        assert_eq!(chosen.len(), 2);
        let mut unique = chosen.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 2);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn replication_spec_gives_each_fragment_distinct_copies() {
        let (_f, servers, client) = cluster(5);
        let placer = Placer::new(
            client,
            PlacementPolicy::Random,
            AvailabilityPolicy::Replicate(3),
            None,
            11,
        );
        let spec = placer.build_spec(9, 0, Some(1), 2).unwrap();
        assert_eq!(spec.fragment_placement.len(), 2);
        for replicas in &spec.fragment_placement {
            assert_eq!(replicas.len(), 3);
            let mut unique = replicas.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), 3, "replicas must land on distinct StoCs");
        }
        assert_eq!(spec.parity_placement, None);
        assert_eq!(spec.meta_placement.len(), 3);
        assert_eq!(spec.file_number, 9);
        assert_eq!(spec.drange, Some(1));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn hybrid_spec_has_parity_and_replicated_metadata() {
        let (_f, servers, client) = cluster(6);
        let placer = Placer::new(
            client,
            PlacementPolicy::PowerOfD,
            AvailabilityPolicy::Hybrid,
            None,
            5,
        );
        let spec = placer.build_spec(3, 0, None, 3).unwrap();
        assert_eq!(spec.fragment_placement.len(), 3);
        assert!(
            spec.fragment_placement.iter().all(|r| r.len() == 1),
            "hybrid does not replicate data fragments"
        );
        let parity = spec.parity_placement.expect("hybrid computes a parity block");
        let primaries: Vec<StocId> = spec.fragment_placement.iter().map(|r| r[0]).collect();
        assert!(
            !primaries.contains(&parity),
            "parity should avoid the data fragments' StoCs"
        );
        assert_eq!(spec.meta_placement.len(), 3);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn empty_directory_is_an_error() {
        let fabric = Fabric::with_defaults(1);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), StocDirectory::new());
        let placer = Placer::new(client, PlacementPolicy::Random, AvailabilityPolicy::None, None, 1);
        assert!(placer.choose_stocs(1).is_err());
        assert!(placer.build_spec(1, 0, None, 1).is_err());
    }
}
