//! The lookup index (Section 4.1.1).
//!
//! "Each LTC maintains a lookup index to identify the memtable or the SSTable
//! at Level 0 that contains the latest value of a key." The index maps a user
//! key to a memtable id; an *indirect* map `MIDToTable` maps that memtable id
//! to either a live memtable pointer or the Level-0 SSTable it was flushed
//! into. The indirection lets a flush atomically re-point every key of a
//! memtable by updating one entry.

use nova_common::{FileNumber, MemtableId};
use nova_memtable::Memtable;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Where the latest value of a key lives.
#[derive(Debug, Clone)]
pub enum TableLocation {
    /// Still in a memtable.
    Memtable(Arc<Memtable>),
    /// Flushed into the Level-0 SSTable with this file number.
    Level0Sstable(FileNumber),
    /// The memtable was merged into another memtable during the
    /// small-memtable merge optimisation (Section 4.2); follow the new id.
    Merged(MemtableId),
}

/// The lookup index plus the `MIDToTable` indirection.
#[derive(Debug, Default)]
pub struct LookupIndex {
    /// user key -> memtable id that holds its latest value.
    keys: RwLock<HashMap<Vec<u8>, MemtableId>>,
    /// memtable id -> current location of that memtable's data.
    mid_to_table: RwLock<HashMap<MemtableId, TableLocation>>,
}

impl LookupIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a live memtable so keys can point at it.
    pub fn register_memtable(&self, memtable: &Arc<Memtable>) {
        self.mid_to_table
            .write()
            .insert(memtable.id(), TableLocation::Memtable(Arc::clone(memtable)));
    }

    /// Record that `key`'s latest value now lives in `mid`. Called by every
    /// write after appending to the memtable.
    pub fn update_key(&self, key: &[u8], mid: MemtableId) {
        self.keys.write().insert(key.to_vec(), mid);
    }

    /// Look up where the latest value of `key` lives, following `Merged`
    /// indirections.
    pub fn lookup(&self, key: &[u8]) -> Option<TableLocation> {
        let mid = *self.keys.read().get(key)?;
        let tables = self.mid_to_table.read();
        let mut current = tables.get(&mid)?;
        // Follow at most a handful of merge indirections.
        for _ in 0..16 {
            match current {
                TableLocation::Merged(next) => match tables.get(next) {
                    Some(next_location) => current = next_location,
                    None => return None,
                },
                other => return Some(other.clone()),
            }
        }
        None
    }

    /// Atomically re-point a flushed memtable at its Level-0 SSTable
    /// ("a compaction thread … atomically updates the entry of mid in
    /// MIDToTable to store the file number of the SSTable and marks the
    /// pointer to the memtable as invalid").
    pub fn memtable_flushed(&self, mid: MemtableId, file: FileNumber) {
        self.mid_to_table
            .write()
            .insert(mid, TableLocation::Level0Sstable(file));
    }

    /// Record that `mid` was merged into `target` (small-memtable merge).
    pub fn memtable_merged(&self, mid: MemtableId, target: MemtableId) {
        self.mid_to_table
            .write()
            .insert(mid, TableLocation::Merged(target));
    }

    /// Remove keys that were compacted out of Level 0: "once a SSTable at
    /// Level 0 is compacted into Level 1, its keys are enumerated. For each
    /// key, if its entry in MIDToTable identifies the SSTable at Level 0
    /// then the key is removed from the lookup index."
    pub fn remove_keys_of_level0_file(&self, keys: &[Vec<u8>], file: FileNumber) {
        let tables = self.mid_to_table.read();
        let mut index = self.keys.write();
        for key in keys {
            if let Some(mid) = index.get(key) {
                if let Some(TableLocation::Level0Sstable(f)) = tables.get(mid) {
                    if *f == file {
                        index.remove(key);
                    }
                }
            }
        }
    }

    /// Drop the `MIDToTable` entry of a memtable whose Level-0 file has been
    /// fully compacted away and whose keys have been removed.
    pub fn forget_memtable(&self, mid: MemtableId) {
        self.mid_to_table.write().remove(&mid);
    }

    /// Number of keys currently indexed (the paper sizes this at ~240 MB for
    /// its workloads; we expose it for the memory-accounting tests).
    pub fn len(&self) -> usize {
        self.keys.read().len()
    }

    /// True if the index has no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory consumed, using the paper's accounting: average key
    /// size + 4 bytes for the memtable pointer + 8 bytes for the Level-0 file
    /// number.
    pub fn approximate_bytes(&self) -> usize {
        let keys = self.keys.read();
        keys.keys().map(|k| k.len() + 4 + 8).sum()
    }

    /// Remove every key (used when a range is migrated away).
    pub fn clear(&self) {
        self.keys.write().clear();
        self.mid_to_table.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::ValueType;
    use nova_memtable::LookupResult;

    fn memtable(id: u64) -> Arc<Memtable> {
        Memtable::new(MemtableId(id), 0, 1 << 20)
    }

    #[test]
    fn lookup_follows_memtable_then_sstable() {
        let index = LookupIndex::new();
        let m = memtable(1);
        index.register_memtable(&m);
        m.add(1, ValueType::Value, b"k", b"v");
        index.update_key(b"k", MemtableId(1));

        match index.lookup(b"k") {
            Some(TableLocation::Memtable(found)) => {
                assert_eq!(found.id(), MemtableId(1));
                assert_eq!(
                    found.get(b"k", nova_common::types::MAX_SEQUENCE_NUMBER),
                    LookupResult::Found(bytes::Bytes::from_static(b"v"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // After the flush, the same key resolves to the Level-0 file.
        index.memtable_flushed(MemtableId(1), 42);
        match index.lookup(b"k") {
            Some(TableLocation::Level0Sstable(f)) => assert_eq!(f, 42),
            other => panic!("unexpected {other:?}"),
        }
        assert!(index.lookup(b"missing").is_none());
    }

    #[test]
    fn merged_memtables_are_followed_transitively() {
        let index = LookupIndex::new();
        let a = memtable(1);
        let b = memtable(2);
        let c = memtable(3);
        index.register_memtable(&a);
        index.register_memtable(&b);
        index.register_memtable(&c);
        index.update_key(b"k", MemtableId(1));
        index.memtable_merged(MemtableId(1), MemtableId(2));
        index.memtable_merged(MemtableId(2), MemtableId(3));
        match index.lookup(b"k") {
            Some(TableLocation::Memtable(m)) => assert_eq!(m.id(), MemtableId(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn level0_compaction_removes_only_matching_keys() {
        let index = LookupIndex::new();
        let m1 = memtable(1);
        let m2 = memtable(2);
        index.register_memtable(&m1);
        index.register_memtable(&m2);
        index.update_key(b"a", MemtableId(1));
        index.update_key(b"b", MemtableId(2));
        index.memtable_flushed(MemtableId(1), 100);
        index.memtable_flushed(MemtableId(2), 200);
        assert_eq!(index.len(), 2);

        // Compacting file 100 into Level 1 removes key "a" but key "b" still
        // points at file 200.
        index.remove_keys_of_level0_file(&[b"a".to_vec(), b"b".to_vec()], 100);
        assert!(index.lookup(b"a").is_none());
        assert!(matches!(
            index.lookup(b"b"),
            Some(TableLocation::Level0Sstable(200))
        ));
        index.forget_memtable(MemtableId(1));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn newer_write_overrides_older_location() {
        let index = LookupIndex::new();
        let old = memtable(1);
        let new = memtable(2);
        index.register_memtable(&old);
        index.register_memtable(&new);
        index.update_key(b"k", MemtableId(1));
        index.update_key(b"k", MemtableId(2));
        match index.lookup(b"k") {
            Some(TableLocation::Memtable(m)) => assert_eq!(m.id(), MemtableId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_accounting_and_clear() {
        let index = LookupIndex::new();
        assert!(index.is_empty());
        index.update_key(b"0123456789", MemtableId(1));
        assert_eq!(index.approximate_bytes(), 10 + 12);
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.approximate_bytes(), 0);
    }
}
