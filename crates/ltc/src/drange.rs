//! Dynamic ranges (Dranges) and tiny ranges (Tranges) — Section 4.1.
//!
//! An LTC divides each application range into θ Dranges with the objective of
//! balancing the write load across them. Each Drange owns its own active
//! memtable(s), so writes to different Dranges do not contend and the Level-0
//! SSTables they produce are mutually exclusive in key space, enabling
//! parallel compaction (Section 4.3).
//!
//! A Drange is composed of γ Tranges; *minor reorganisations* move Tranges
//! between neighbouring Dranges, *major reorganisations* rebuild all Dranges
//! and Tranges from the sampled write-frequency distribution, and a Drange
//! holding a single very hot key is *duplicated* (Definition 4.2, Figure 6).

use nova_common::keyspace::KeyInterval;
use std::sync::atomic::{AtomicU64, Ordering};

/// A tiny dynamic range `[lower, upper)` with a write counter
/// (Definition 4.1).
///
/// Besides the plain counter the Trange runs a Boyer–Moore majority sketch
/// over the keys written to it: this is the "historical sampled data" a major
/// reorganisation uses to discover a single dominant key inside a Trange and
/// turn it into a duplicated point Drange (Definition 4.4, Figure 6).
#[derive(Debug)]
pub struct Trange {
    /// The interval of numeric keys covered.
    pub interval: KeyInterval,
    writes: AtomicU64,
    candidate_key: AtomicU64,
    candidate_count: AtomicU64,
}

impl Trange {
    /// Create a Trange covering `interval`.
    pub fn new(interval: KeyInterval) -> Self {
        Trange {
            interval,
            writes: AtomicU64::new(0),
            candidate_key: AtomicU64::new(u64::MAX),
            candidate_count: AtomicU64::new(0),
        }
    }

    /// Record a write to `key` in this Trange.
    pub fn record_write(&self, key: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        // Boyer–Moore majority vote. Races between the load/store pairs only
        // degrade the sketch, never break it, and writers to the same Drange
        // are already serialized by the memtable above us often enough for
        // the sketch to converge.
        let count = self.candidate_count.load(Ordering::Relaxed);
        if count == 0 {
            self.candidate_key.store(key, Ordering::Relaxed);
            self.candidate_count.store(1, Ordering::Relaxed);
        } else if self.candidate_key.load(Ordering::Relaxed) == key {
            self.candidate_count.fetch_add(1, Ordering::Relaxed);
        } else {
            self.candidate_count.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Number of writes recorded since the last reset.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// The majority-candidate key and its sketch count, if any key dominates
    /// the Trange's recent writes.
    pub fn hot_key(&self) -> Option<(u64, u64)> {
        let count = self.candidate_count.load(Ordering::Relaxed);
        let key = self.candidate_key.load(Ordering::Relaxed);
        if count > 0 && key != u64::MAX && self.interval.contains(key) {
            Some((key, count))
        } else {
            None
        }
    }

    /// Reset the counters (after a reorganisation consumes the statistics).
    pub fn reset(&self) {
        self.writes.store(0, Ordering::Relaxed);
        self.candidate_count.store(0, Ordering::Relaxed);
        self.candidate_key.store(u64::MAX, Ordering::Relaxed);
    }
}

impl Clone for Trange {
    fn clone(&self) -> Self {
        Trange {
            interval: self.interval,
            writes: AtomicU64::new(self.writes()),
            candidate_key: AtomicU64::new(self.candidate_key.load(Ordering::Relaxed)),
            candidate_count: AtomicU64::new(self.candidate_count.load(Ordering::Relaxed)),
        }
    }
}

/// A dynamic range: a contiguous run of Tranges (Definition 4.2). Duplicated
/// Dranges share the same (single-key) interval.
#[derive(Debug, Clone)]
pub struct Drange {
    /// The Drange's position within its [`DrangeSet`].
    pub index: usize,
    /// Tranges composing the Drange, in key order.
    pub tranges: Vec<Trange>,
    /// True if this Drange is a duplicate of a single hot key shared with
    /// neighbouring Dranges (Section 4.1).
    pub duplicated: bool,
}

impl Drange {
    /// Create a Drange from its Tranges.
    pub fn new(index: usize, tranges: Vec<Trange>, duplicated: bool) -> Self {
        debug_assert!(!tranges.is_empty(), "a Drange needs at least one Trange");
        Drange {
            index,
            tranges,
            duplicated,
        }
    }

    /// The interval covered: `[first Trange lower, last Trange upper)`.
    pub fn interval(&self) -> KeyInterval {
        KeyInterval::new(
            self.tranges.first().expect("non-empty").interval.lower,
            self.tranges.last().expect("non-empty").interval.upper,
        )
    }

    /// True if `key` falls inside this Drange.
    pub fn contains(&self, key: u64) -> bool {
        self.interval().contains(key)
    }

    /// Total writes recorded across the Drange's Tranges.
    pub fn writes(&self) -> u64 {
        self.tranges.iter().map(|t| t.writes()).sum()
    }

    /// Record a write for `key`.
    pub fn record_write(&self, key: u64) {
        // Tranges partition the Drange contiguously; binary search by lower
        // bound.
        let idx = self.tranges.partition_point(|t| t.interval.upper <= key);
        if let Some(t) = self.tranges.get(idx) {
            debug_assert!(t.interval.contains(key) || self.duplicated);
            t.record_write(key);
        } else if let Some(last) = self.tranges.last() {
            last.record_write(key);
        }
    }

    /// Reset write counters.
    pub fn reset_counters(&self) {
        for t in &self.tranges {
            t.reset();
        }
    }
}

/// Statistics describing the outcome of reorganisations, reported by the
/// Drange-ablation experiment (Section 8.2.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Number of minor reorganisations performed.
    pub minor_reorgs: u64,
    /// Number of major reorganisations performed.
    pub major_reorgs: u64,
    /// Number of duplicated Dranges in the current layout.
    pub duplicated_dranges: usize,
}

/// The set of θ Dranges covering one application range, plus the machinery to
/// rebalance them.
#[derive(Debug)]
pub struct DrangeSet {
    /// The application range's interval.
    range: KeyInterval,
    /// Target number of Dranges (θ).
    theta: usize,
    /// Tranges per Drange (γ).
    gamma: usize,
    dranges: Vec<Drange>,
    stats: ReorgStats,
    /// Monotonically increasing generation, bumped by every reorganisation
    /// (memtables are tagged with it, Section 4.1).
    generation: u64,
}

impl DrangeSet {
    /// Create the initial layout: θ Dranges of equal key width, each with γ
    /// Tranges.
    pub fn new(range: KeyInterval, theta: usize, gamma: usize) -> Self {
        let theta = theta.max(1);
        let gamma = gamma.max(1);
        let dranges = Self::uniform_layout(range, theta, gamma);
        DrangeSet {
            range,
            theta,
            gamma,
            dranges,
            stats: ReorgStats::default(),
            generation: 0,
        }
    }

    fn uniform_layout(range: KeyInterval, theta: usize, gamma: usize) -> Vec<Drange> {
        let total = range.len().max(1);
        let per_drange = total.div_ceil(theta as u64);
        let mut dranges = Vec::with_capacity(theta);
        let mut lower = range.lower;
        for d in 0..theta {
            let upper = if d + 1 == theta {
                range.upper
            } else {
                (lower + per_drange).min(range.upper)
            };
            let tranges = Self::split_into_tranges(KeyInterval::new(lower, upper.max(lower)), gamma);
            dranges.push(Drange::new(d, tranges, false));
            lower = upper;
        }
        dranges
    }

    fn split_into_tranges(interval: KeyInterval, gamma: usize) -> Vec<Trange> {
        let total = interval.len();
        if total == 0 {
            return vec![Trange::new(interval)];
        }
        let gamma = gamma.min(total.max(1) as usize).max(1);
        let per = total.div_ceil(gamma as u64);
        let mut tranges = Vec::with_capacity(gamma);
        let mut lower = interval.lower;
        for t in 0..gamma {
            let upper = if t + 1 == gamma {
                interval.upper
            } else {
                (lower + per).min(interval.upper)
            };
            tranges.push(Trange::new(KeyInterval::new(lower, upper.max(lower))));
            lower = upper;
        }
        tranges
    }

    /// The configured target number of Dranges (θ).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The configured number of Tranges per Drange (γ).
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The number of Dranges in the current layout (θ plus duplicates, minus
    /// merged empties; always at least 1).
    pub fn len(&self) -> usize {
        self.dranges.len()
    }

    /// True if the layout contains no Dranges (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.dranges.is_empty()
    }

    /// The Dranges in key order.
    pub fn dranges(&self) -> &[Drange] {
        &self.dranges
    }

    /// The reorganisation generation of the current layout.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Reorganisation statistics.
    pub fn stats(&self) -> ReorgStats {
        ReorgStats {
            duplicated_dranges: self.dranges.iter().filter(|d| d.duplicated).count(),
            ..self.stats
        }
    }

    /// The index of the Drange that should absorb a write to `key`.
    ///
    /// Duplicated Dranges share a key: the write is spread across the
    /// duplicates (by a cheap hash of the key and a rotating counter baked
    /// from the key's low bits) to reduce contention, exactly why the paper
    /// duplicates them.
    pub fn drange_for_write(&self, key: u64, spread_hint: u64) -> usize {
        let candidates = self.candidates_for(key);
        if candidates.len() == 1 {
            return candidates[0];
        }
        candidates[(spread_hint as usize) % candidates.len()]
    }

    /// Every Drange whose interval contains `key` (more than one only when
    /// duplicated).
    pub fn candidates_for(&self, key: u64) -> Vec<usize> {
        let key = key.clamp(self.range.lower, self.range.upper.saturating_sub(1));
        let out: Vec<usize> = self
            .dranges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.contains(key))
            .map(|(i, _)| i)
            .collect();
        if out.is_empty() {
            // Clamp to the nearest Drange (can happen at the extremes after a
            // reorganisation of an empty range).
            let idx = self.dranges.partition_point(|d| d.interval().upper <= key);
            vec![idx.min(self.dranges.len() - 1)]
        } else {
            out
        }
    }

    /// Record a write for load statistics.
    pub fn record_write(&self, drange_index: usize, key: u64) {
        if let Some(d) = self.dranges.get(drange_index) {
            d.record_write(key);
        }
    }

    /// Load imbalance: the standard deviation of each Drange's share of the
    /// total writes (Section 8.2.1 reports this).
    pub fn load_imbalance(&self) -> f64 {
        let total: u64 = self.dranges.iter().map(|d| d.writes()).sum();
        if total == 0 {
            return 0.0;
        }
        let mean = 1.0 / self.dranges.len() as f64;
        let variance = self
            .dranges
            .iter()
            .map(|d| {
                let share = d.writes() as f64 / total as f64;
                (share - mean) * (share - mean)
            })
            .sum::<f64>()
            / self.dranges.len() as f64;
        variance.sqrt()
    }

    /// Decide whether a reorganisation is needed given the imbalance
    /// threshold ε: a Drange whose share exceeds `1/θ + ε` triggers one
    /// (Definition 4.3 / 4.4).
    pub fn needs_reorganization(&self, epsilon: f64) -> bool {
        let total: u64 = self.dranges.iter().map(|d| d.writes()).sum();
        if total < self.dranges.len() as u64 * 4 {
            // Not enough samples to act on.
            return false;
        }
        let threshold = 1.0 / self.theta as f64 + epsilon;
        self.dranges
            .iter()
            .any(|d| (d.writes() as f64 / total as f64) > threshold)
    }

    /// Perform a reorganisation. A *minor* reorganisation shifts Tranges from
    /// the hottest Drange to its neighbours; if the imbalance cannot be fixed
    /// that way (e.g. a single key dominates), a *major* reorganisation
    /// rebuilds the layout from the observed per-Trange write frequencies,
    /// duplicating point Dranges whose load exceeds twice the average.
    ///
    /// Returns the new generation id.
    pub fn reorganize(&mut self, epsilon: f64) -> u64 {
        let total: u64 = self.dranges.iter().map(|d| d.writes()).sum();
        if total == 0 {
            return self.generation;
        }
        let threshold = 1.0 / self.theta as f64 + epsilon;

        // Try a minor reorganisation first: move Tranges out of the hottest
        // multi-Trange Drange.
        let hottest = self
            .dranges
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.writes())
            .map(|(i, _)| i)
            .expect("at least one Drange");
        let hot_share = self.dranges[hottest].writes() as f64 / total as f64;
        if hot_share > threshold && self.dranges[hottest].tranges.len() > 1 {
            self.minor_reorganize(hottest);
            self.stats.minor_reorgs += 1;
        } else if hot_share > threshold {
            self.major_reorganize();
            self.stats.major_reorgs += 1;
        }
        self.generation += 1;
        self.generation
    }

    /// Force a major reorganisation based on the current sampled frequencies
    /// (used once shortly after start-up in the paper's experiments).
    pub fn force_major_reorganization(&mut self) -> u64 {
        self.major_reorganize();
        self.stats.major_reorgs += 1;
        self.generation += 1;
        self.generation
    }

    fn minor_reorganize(&mut self, hottest: usize) {
        // Move the coldest edge Trange of the hottest Drange to its neighbour.
        let drange = &mut self.dranges[hottest];
        if drange.tranges.len() <= 1 {
            return;
        }
        // Prefer shifting towards whichever neighbour exists; shift the first
        // Trange left or the last Trange right.
        if hottest > 0 {
            let trange = drange.tranges.remove(0);
            self.dranges[hottest - 1].tranges.push(trange);
        } else {
            let trange = drange.tranges.pop().expect("len > 1");
            self.dranges[hottest + 1].tranges.insert(0, trange);
        }
        for (i, d) in self.dranges.iter_mut().enumerate() {
            d.index = i;
        }
    }

    fn major_reorganize(&mut self) {
        // Build the per-Trange frequency distribution of the whole range,
        // splitting out a dominant single key inside a Trange when the
        // majority sketch identifies one.
        let mut boundaries: Vec<(KeyInterval, u64)> = Vec::new();
        for d in &self.dranges {
            if d.duplicated {
                // Count duplicated Dranges once (they share the same interval).
                if boundaries.last().map(|(i, _)| *i) == Some(d.interval()) {
                    if let Some(last) = boundaries.last_mut() {
                        last.1 += d.writes();
                    }
                    continue;
                }
            }
            for t in &d.tranges {
                let writes = t.writes();
                match t.hot_key() {
                    // A single key dominates this Trange: isolate it so it can
                    // become a (possibly duplicated) point Drange.
                    Some((key, count)) if t.interval.len() > 1 && count * 2 > writes.max(1) => {
                        let hot_writes = count.min(writes);
                        let rest = writes - hot_writes;
                        let before = KeyInterval::new(t.interval.lower, key);
                        let point = KeyInterval::new(key, key + 1);
                        let after = KeyInterval::new((key + 1).min(t.interval.upper), t.interval.upper);
                        let side_ranges = (!before.is_empty()) as u64 + (!after.is_empty()) as u64;
                        if !before.is_empty() {
                            boundaries.push((before, rest / side_ranges.max(1)));
                        }
                        boundaries.push((point, hot_writes));
                        if !after.is_empty() {
                            boundaries.push((after, rest / side_ranges.max(1)));
                        }
                    }
                    _ => boundaries.push((t.interval, writes)),
                }
            }
        }
        let total: u64 = boundaries.iter().map(|(_, w)| w).sum();
        if total == 0 {
            return;
        }
        let average = total as f64 / self.theta as f64;

        // Single-key intervals hotter than twice the average become
        // duplicated point Dranges (Section 4.1 / Figure 6); the rest are
        // packed into Dranges of roughly equal write load.
        let mut new_dranges: Vec<Drange> = Vec::new();
        let mut accumulator: Vec<Trange> = Vec::new();
        let mut accumulated_writes = 0u64;
        let target = (total as f64 / self.theta as f64).max(1.0);

        let flush_accumulator = |acc: &mut Vec<Trange>, out: &mut Vec<Drange>| {
            if !acc.is_empty() {
                out.push(Drange::new(out.len(), std::mem::take(acc), false));
            }
        };

        for (interval, writes) in boundaries {
            let is_hot_point = interval.len() <= 1 && (writes as f64) > 2.0 * average;
            if is_hot_point {
                flush_accumulator(&mut accumulator, &mut new_dranges);
                accumulated_writes = 0;
                // Number of duplicates proportional to how hot the key is.
                let duplicates = ((writes as f64 / average).round() as usize).clamp(2, self.theta.max(2));
                for _ in 0..duplicates {
                    new_dranges.push(Drange::new(new_dranges.len(), vec![Trange::new(interval)], true));
                }
                continue;
            }
            accumulator.push(Trange::new(interval));
            accumulated_writes += writes;
            if (accumulated_writes as f64) >= target {
                flush_accumulator(&mut accumulator, &mut new_dranges);
                accumulated_writes = 0;
            }
        }
        flush_accumulator(&mut accumulator, &mut new_dranges);

        if new_dranges.is_empty() {
            return;
        }
        for (i, d) in new_dranges.iter_mut().enumerate() {
            d.index = i;
            d.reset_counters();
        }
        self.dranges = new_dranges;
    }

    /// The key-space boundaries of every Drange (used by the range index and
    /// persisted in the MANIFEST, Section 4.5).
    pub fn boundaries(&self) -> Vec<KeyInterval> {
        self.dranges.iter().map(|d| d.interval()).collect()
    }

    /// Rebuild a DrangeSet from persisted boundaries (crash recovery).
    pub fn from_boundaries(
        range: KeyInterval,
        theta: usize,
        gamma: usize,
        boundaries: &[KeyInterval],
    ) -> Self {
        if boundaries.is_empty() {
            return Self::new(range, theta, gamma);
        }
        let mut dranges = Vec::with_capacity(boundaries.len());
        let mut previous: Option<KeyInterval> = None;
        for (i, interval) in boundaries.iter().enumerate() {
            let duplicated = previous == Some(*interval);
            dranges.push(Drange::new(
                i,
                Self::split_into_tranges(*interval, gamma),
                duplicated,
            ));
            previous = Some(*interval);
        }
        DrangeSet {
            range,
            theta,
            gamma,
            dranges,
            stats: ReorgStats::default(),
            generation: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> DrangeSet {
        DrangeSet::new(KeyInterval::new(0, 1000), 8, 4)
    }

    #[test]
    fn initial_layout_partitions_the_range() {
        let s = set();
        assert_eq!(s.len(), 8);
        let b = s.boundaries();
        assert_eq!(b[0].lower, 0);
        assert_eq!(b.last().unwrap().upper, 1000);
        for w in b.windows(2) {
            assert_eq!(w[0].upper, w[1].lower, "Dranges must tile the range without gaps");
        }
        // Every key maps to exactly one Drange.
        for key in [0u64, 1, 499, 999] {
            assert_eq!(s.candidates_for(key).len(), 1);
        }
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn writes_are_routed_and_counted() {
        let s = set();
        for key in 0..1000u64 {
            let d = s.drange_for_write(key, key);
            s.record_write(d, key);
        }
        let total: u64 = s.dranges().iter().map(|d| d.writes()).sum();
        assert_eq!(total, 1000);
        // Uniform writes give low imbalance.
        assert!(s.load_imbalance() < 0.02, "imbalance {}", s.load_imbalance());
        assert!(!s.needs_reorganization(0.05));
    }

    #[test]
    fn skewed_writes_trigger_reorganization() {
        let mut s = set();
        // 90% of writes hit key 0.
        for i in 0..10_000u64 {
            let key = if i % 10 == 0 { i % 1000 } else { 0 };
            let d = s.drange_for_write(key, i);
            s.record_write(d, key);
        }
        assert!(s.needs_reorganization(0.05));
        let before_gen = s.generation();
        s.reorganize(0.05);
        assert!(s.generation() > before_gen);
    }

    #[test]
    fn major_reorganization_duplicates_hot_point_dranges() {
        let mut s = DrangeSet::new(KeyInterval::new(0, 1000), 8, 8);
        // Make key 0 extremely hot so its Trange dominates.
        for i in 0..20_000u64 {
            let key = if i % 20 == 0 { 1 + i % 999 } else { 0 };
            let d = s.drange_for_write(key, i);
            s.record_write(d, key);
        }
        s.force_major_reorganization();
        let stats = s.stats();
        assert!(stats.major_reorgs >= 1);
        assert!(
            stats.duplicated_dranges >= 2,
            "hot key should be duplicated, got {stats:?}"
        );
        // Writes to the hot key can now go to more than one Drange.
        let candidates = s.candidates_for(0);
        assert!(candidates.len() >= 2);
        // Different spread hints pick different duplicates.
        let a = s.drange_for_write(0, 0);
        let b = s.drange_for_write(0, 1);
        assert!(candidates.contains(&a) && candidates.contains(&b));
        // Boundaries survive a round-trip (crash recovery path).
        let rebuilt = DrangeSet::from_boundaries(KeyInterval::new(0, 1000), 8, 8, &s.boundaries());
        assert_eq!(rebuilt.len(), s.len());
        assert!(rebuilt.stats().duplicated_dranges >= 2);
    }

    #[test]
    fn minor_reorganization_moves_tranges_between_neighbours() {
        let mut s = DrangeSet::new(KeyInterval::new(0, 800), 4, 4);
        // Drange 2 is hot but not a single point: all its keys are written.
        let hot = s.dranges()[2].interval();
        for i in 0..8_000u64 {
            let key = if i % 4 == 0 {
                i % 800
            } else {
                hot.lower + i % hot.len()
            };
            let d = s.drange_for_write(key, i);
            s.record_write(d, key);
        }
        let tranges_before = s.dranges()[2].tranges.len();
        s.reorganize(0.05);
        assert_eq!(s.stats().minor_reorgs, 1);
        let tranges_after: usize = s.dranges().iter().map(|d| d.tranges.len()).sum();
        assert_eq!(tranges_after, 16, "Tranges are moved, not created or dropped");
        assert!(s.dranges().iter().any(|d| d.tranges.len() != tranges_before));
    }

    #[test]
    fn tiny_ranges_track_writes() {
        let t = Trange::new(KeyInterval::new(0, 10));
        t.record_write(3);
        t.record_write(3);
        t.record_write(5);
        assert_eq!(t.writes(), 3);
        // The majority sketch tracks the dominant key.
        assert_eq!(t.hot_key(), Some((3, 1)));
        t.reset();
        assert_eq!(t.writes(), 0);
        assert_eq!(t.hot_key(), None);
    }

    #[test]
    fn small_keyspaces_are_handled() {
        // Fewer keys than θ.
        let s = DrangeSet::new(KeyInterval::new(0, 3), 8, 4);
        assert!(!s.is_empty());
        for key in 0..3u64 {
            let d = s.drange_for_write(key, key);
            s.record_write(d, key);
        }
        // Out-of-range keys clamp instead of panicking.
        let _ = s.drange_for_write(1_000_000, 0);
    }
}
