//! The compaction coordinator (Section 4.3).
//!
//! "LTC employs a coordinator thread for compaction. This thread first picks
//! Level i with the highest ratio of actual size to expected size. It then
//! computes a set of compaction jobs. … SSTables in two different compaction
//! jobs are non-overlapping and may proceed concurrently."
//!
//! At Level 0 the jobs follow Drange boundaries: Level-0 SSTables produced by
//! different Dranges are mutually exclusive in key space, so each Drange's
//! tables (plus their overlapping Level-1 tables) form an independent job
//! (Figure 8). Jobs either run locally on the LTC's compaction threads or are
//! offloaded round-robin to StoCs.

use crate::range::RangeEngine;
use crate::version::Version;
use nova_common::{Result, StocId};
use nova_sstable::SstableMeta;
use nova_stoc::{execute_compaction, load_table_entries, CompactionJob};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Round-robin counter used to spread offloaded jobs across StoCs ("in this
/// study we assume round-robin").
static OFFLOAD_ROUND_ROBIN: AtomicUsize = AtomicUsize::new(0);

/// Build the set of non-overlapping compaction jobs for `level`.
fn build_jobs(engine: &RangeEngine, version: &Version, level: usize) -> Vec<Vec<SstableMeta>> {
    let config = engine.config();
    let next_level = level + 1;
    if level == 0 {
        // Group Level-0 tables by the Drange that produced them; each group
        // plus its overlapping Level-1 tables is one job.
        let mut groups: Vec<(Option<u32>, Vec<SstableMeta>)> = Vec::new();
        for table in version.level_tables(0) {
            match groups.iter_mut().find(|(d, _)| *d == table.drange) {
                Some((_, tables)) => tables.push(table.clone()),
                None => groups.push((table.drange, vec![table.clone()])),
            }
        }
        // Attach overlapping next-level tables; merge groups that would share
        // a next-level table so jobs stay disjoint.
        let mut jobs: Vec<(Vec<SstableMeta>, Vec<u64>)> = Vec::new();
        for (_, group) in groups {
            let smallest = group.iter().map(|t| t.smallest.clone()).min().unwrap_or_default();
            let largest = group.iter().map(|t| t.largest.clone()).max().unwrap_or_default();
            let overlapping = version.overlapping(next_level, &smallest, &largest);
            let overlap_ids: Vec<u64> = overlapping.iter().map(|t| t.file_number).collect();
            // Does this group share a next-level table with an existing job?
            if let Some(existing) = jobs
                .iter_mut()
                .find(|(_, ids)| ids.iter().any(|id| overlap_ids.contains(id)))
            {
                existing.0.extend(group);
                for t in overlapping {
                    if !existing.1.contains(&t.file_number) {
                        existing.1.push(t.file_number);
                        existing.0.push(t);
                    }
                }
            } else {
                let mut inputs = group;
                inputs.extend(overlapping);
                jobs.push((inputs, overlap_ids));
            }
        }
        jobs.into_iter().map(|(inputs, _)| inputs).collect()
    } else {
        // Leveled compaction: take the tables of the over-budget level (up to
        // a handful per round) and their overlapping next-level tables as one
        // job.
        let mut inputs: Vec<SstableMeta> = Vec::new();
        let budget = config.max_bytes_for_level(level);
        let mut taken = 0u64;
        for table in version.level_tables(level) {
            inputs.push(table.clone());
            taken += table.data_size;
            if taken > budget / 2 {
                break;
            }
        }
        if inputs.is_empty() {
            return Vec::new();
        }
        let smallest = inputs
            .iter()
            .map(|t| t.smallest.clone())
            .min()
            .unwrap_or_default();
        let largest = inputs.iter().map(|t| t.largest.clone()).max().unwrap_or_default();
        inputs.extend(version.overlapping(next_level, &smallest, &largest));
        vec![inputs]
    }
}

/// Run one round of compaction for the range, if any level is over budget.
pub(crate) fn run_compaction(engine: &Arc<RangeEngine>) -> Result<()> {
    // One round at a time: concurrent rounds would work off stale version
    // snapshots and install overlapping Level-1 outputs.
    let _guard = engine.compaction_guard();
    // Re-check after acquiring the guard: a migration may have frozen the
    // range (and snapshotted its version) while this round waited. Deleting
    // input files now would invalidate the exported version's references.
    if engine.is_frozen() || engine.is_retired() {
        return Ok(());
    }
    let config = engine.config().clone();
    let version = engine.version_snapshot();
    let level = match version.pick_compaction_level(|l| config.max_bytes_for_level(l)) {
        Some(l) => l,
        None => return Ok(()),
    };
    let jobs = build_jobs(engine, &version, level);
    if jobs.is_empty() {
        return Ok(());
    }
    let next_level = (level + 1) as u32;
    // Tombstones can be dropped when the outputs land in the deepest
    // populated level of the tree.
    let drop_tombstones = next_level as usize >= version.max_populated_level();
    // Output placement respects the engine's placement policy: shared-nothing
    // deployments keep compaction outputs on the local disk, shared-disk
    // deployments spread them across all StoCs.
    // Hold the directory's cached snapshot (`Arc`) instead of copying it;
    // the per-job `output_placement` below clones only when a job is built.
    let all_stocs: std::sync::Arc<Vec<StocId>> = match engine.placer().policy() {
        nova_common::config::PlacementPolicy::LocalOnly => {
            std::sync::Arc::new(engine.placer().choose_stocs(1).unwrap_or_default())
        }
        // Placement-eligible StoCs only: a draining StoC (removed via
        // `remove_stoc`) keeps serving reads but must stop receiving
        // compaction outputs or it never drains.
        _ => engine.stoc_client().directory().placeable(),
    };

    for inputs in jobs {
        if inputs.is_empty() {
            continue;
        }
        // Enumerate the keys of Level-0 inputs so the lookup index can be
        // cleaned up after installation (Section 4.1.1).
        let mut level0_keys: Vec<Vec<u8>> = Vec::new();
        if level == 0 && config.enable_lookup_index {
            for input in inputs.iter().filter(|t| t.level == 0) {
                if let Ok(entries) = load_table_entries(engine.stoc_client(), input) {
                    level0_keys.extend(entries.into_iter().map(|e| e.key.to_vec()));
                }
            }
        }
        let output_placement = if all_stocs.is_empty() {
            vec![StocId(0)]
        } else {
            (*all_stocs).clone()
        };
        let job = CompactionJob {
            range_id: engine.range_id().0,
            inputs: inputs.clone(),
            output_level: next_level,
            output_file_numbers: engine.allocate_file_numbers(inputs.len() * 2 + 8),
            output_placement,
            scatter_width: config.scatter_width as u32,
            max_output_bytes: config.memtable_size_bytes as u64,
            block_size: config.block_size_bytes as u32,
            bloom_bits_per_key: config.bloom_bits_per_key as u32,
            drop_tombstones,
        };
        let outputs = if config.offload_compaction && !all_stocs.is_empty() {
            // Round-robin across StoCs (Section 4.3, "Offloading").
            let idx = OFFLOAD_ROUND_ROBIN.fetch_add(1, Ordering::Relaxed) % all_stocs.len();
            engine.stoc_client().offload_compaction(all_stocs[idx], job)?
        } else {
            execute_compaction(engine.stoc_client(), &job)?
        };
        engine.install_compaction(&inputs, outputs, &level0_keys)?;
    }

    // More work may remain (e.g. the next level is now over budget).
    let version = engine.version_snapshot();
    if version
        .pick_compaction_level(|l| config.max_bytes_for_level(l))
        .is_some()
    {
        engine.schedule_compaction();
    }
    Ok(())
}
