//! The LSM-tree Component server: a set of ranges served from one node
//! (Section 3: "An LTC consists of ω ranges. The LTC constructs a LSM-tree
//! for each range. It processes an application's requests using these
//! trees.").

use crate::range::{BatchOp, RangeEngine};
use bytes::Bytes;
use nova_cache::BlockCache;
use nova_common::{Error, LtcId, NodeId, RangeId, ReadOptions, Result, WriteOptions};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated statistics across an LTC's ranges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LtcStats {
    /// Writes processed.
    pub writes: u64,
    /// Gets processed.
    pub gets: u64,
    /// Scans processed.
    pub scans: u64,
    /// Gets answered by the lookup index.
    pub lookup_index_hits: u64,
    /// Write stalls observed.
    pub stalls: u64,
    /// Nanoseconds spent stalled.
    pub stall_nanos: u64,
    /// SSTable bytes flushed.
    pub bytes_flushed: u64,
    /// Memtables merged instead of flushed.
    pub memtable_merges: u64,
    /// Flushes that produced SSTables.
    pub flushes: u64,
    /// Compactions installed.
    pub compactions: u64,
    /// Drange reorganisations performed.
    pub reorganizations: u64,
    /// Number of ranges currently served.
    pub ranges: usize,
    /// Block-cache hits across the LTC's read path.
    pub block_cache_hits: u64,
    /// Block-cache misses (reads that went to a StoC).
    pub block_cache_misses: u64,
    /// Blocks evicted from the block cache.
    pub block_cache_evictions: u64,
    /// Bytes currently resident in the block cache.
    pub block_cache_resident_bytes: u64,
}

impl LtcStats {
    /// Fraction of data-block reads served by the block cache (0 when the
    /// cache is disabled or idle).
    pub fn block_cache_hit_rate(&self) -> f64 {
        let total = self.block_cache_hits + self.block_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.block_cache_hits as f64 / total as f64
        }
    }
}

/// One LSM-tree component.
pub struct Ltc {
    id: LtcId,
    node: NodeId,
    ranges: RwLock<HashMap<RangeId, Arc<RangeEngine>>>,
    /// The LTC-wide block cache shared by every range engine on this LTC
    /// (Section 3: LTCs are the memory-rich tier). `None` when disabled.
    block_cache: Option<Arc<BlockCache>>,
    /// Observability: the epoch-validated operations record their range
    /// engine time against [`nova_obs::Layer::Ltc`].
    metrics: Arc<nova_obs::Metrics>,
}

impl std::fmt::Debug for Ltc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ltc")
            .field("id", &self.id)
            .field("node", &self.node)
            .field("ranges", &self.ranges.read().len())
            .finish()
    }
}

impl Ltc {
    /// Create an LTC with no ranges assigned yet and no block cache.
    pub fn new(id: LtcId, node: NodeId) -> Arc<Self> {
        Self::with_block_cache(id, node, None)
    }

    /// Create an LTC that reads SSTable blocks through `block_cache`.
    pub fn with_block_cache(id: LtcId, node: NodeId, block_cache: Option<Arc<BlockCache>>) -> Arc<Self> {
        Self::with_observability(id, node, block_cache, nova_obs::Metrics::disabled())
    }

    /// Create an LTC wired to a metrics hub: the epoch-validated operations
    /// record their latency against [`nova_obs::Layer::Ltc`].
    pub fn with_observability(
        id: LtcId,
        node: NodeId,
        block_cache: Option<Arc<BlockCache>>,
        metrics: Arc<nova_obs::Metrics>,
    ) -> Arc<Self> {
        Arc::new(Ltc {
            id,
            node,
            ranges: RwLock::new(HashMap::new()),
            block_cache,
            metrics,
        })
    }

    /// The LTC-wide block cache, if enabled. Range engines created for this
    /// LTC should read through it.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// This LTC's id.
    pub fn id(&self) -> LtcId {
        self.id
    }

    /// The node hosting this LTC.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Assign a range to this LTC.
    pub fn add_range(&self, engine: Arc<RangeEngine>) {
        self.ranges.write().insert(engine.range_id(), engine);
    }

    /// Remove a range (e.g. when it migrates away), returning its engine.
    pub fn remove_range(&self, range: RangeId) -> Option<Arc<RangeEngine>> {
        self.ranges.write().remove(&range)
    }

    /// The engine serving `range`.
    pub fn range(&self, range: RangeId) -> Result<Arc<RangeEngine>> {
        self.ranges
            .read()
            .get(&range)
            .cloned()
            .ok_or(Error::WrongRange(range))
    }

    /// Ranges currently assigned, in id order.
    pub fn range_ids(&self) -> Vec<RangeId> {
        let mut ids: Vec<RangeId> = self.ranges.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of ranges currently assigned.
    pub fn num_ranges(&self) -> usize {
        self.ranges.read().len()
    }

    /// Write a key-value pair into `range`.
    pub fn put(&self, range: RangeId, key: &[u8], value: &[u8]) -> Result<()> {
        self.range(range)?.put(key, value)
    }

    /// Delete a key from `range`.
    pub fn delete(&self, range: RangeId, key: &[u8]) -> Result<()> {
        self.range(range)?.delete(key)
    }

    /// Write a batch of key-value pairs into `range` as one
    /// [`RangeEngine::write_batch`]: the Drange write state is taken once
    /// per segment and the log records travel as group-commit writes instead
    /// of one fabric round trip per record. Atomicity is per
    /// destination-memtable group, not batch-wide (see `write_batch`).
    pub fn put_batch(&self, range: RangeId, items: &[(&[u8], &[u8])]) -> Result<()> {
        let ops: Vec<BatchOp<'_>> = items
            .iter()
            .map(|&(key, value)| BatchOp::Put { key, value })
            .collect();
        self.range(range)?.write_batch(&ops)
    }

    /// Get the latest value of a key from `range`.
    pub fn get(&self, range: RangeId, key: &[u8]) -> Result<Bytes> {
        self.range(range)?.get(key)
    }

    /// Scan up to `limit` entries of `range` starting at `start_key`.
    pub fn scan(
        &self,
        range: RangeId,
        start_key: &[u8],
        limit: usize,
    ) -> Result<Vec<nova_common::types::Entry>> {
        self.range(range)?.scan(start_key, limit)
    }

    // ------------------------------------------------------------------
    // Epoch-validated operations (the paper's "stale clients can be
    // rejected"): each takes the configuration epoch the caller routed
    // with and rejects it with the retriable `Error::StaleConfig` if the
    // range changed hands since that epoch.
    // ------------------------------------------------------------------

    /// [`Ltc::put`] validating the caller's configuration epoch.
    pub fn put_at(&self, range: RangeId, key: &[u8], value: &[u8], epoch: u64) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        engine.put(key, value)
    }

    /// [`Ltc::delete`] validating the caller's configuration epoch.
    pub fn delete_at(&self, range: RangeId, key: &[u8], epoch: u64) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        engine.delete(key)
    }

    /// [`Ltc::put_batch`] validating the caller's configuration epoch.
    pub fn put_batch_at(&self, range: RangeId, items: &[(&[u8], &[u8])], epoch: u64) -> Result<()> {
        self.put_batch_at_with(range, items, epoch, &WriteOptions::default())
    }

    /// [`Ltc::put_batch_at`] honoring per-operation [`WriteOptions`]
    /// (`group_commit = false` logs every record with its own write).
    pub fn put_batch_at_with(
        &self,
        range: RangeId,
        items: &[(&[u8], &[u8])],
        epoch: u64,
        options: &WriteOptions,
    ) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        let ops: Vec<BatchOp<'_>> = items
            .iter()
            .map(|&(key, value)| BatchOp::Put { key, value })
            .collect();
        engine.write_batch_with(&ops, options)
    }

    /// Epoch-validated mixed batch: puts and deletes applied atomically to
    /// one range under a single group commit. The client's index-maintenance
    /// path uses this to fold delete-old-entry / put-new-entry index ops
    /// into the same batch as the base write.
    pub fn write_batch_at(
        &self,
        range: RangeId,
        ops: &[BatchOp<'_>],
        epoch: u64,
        options: &WriteOptions,
    ) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        engine.write_batch_with(ops, options)
    }

    /// [`Ltc::get`] validating the caller's configuration epoch. Reads are
    /// still served while the range is frozen for migration — only the
    /// owner-epoch check applies.
    pub fn get_at(&self, range: RangeId, key: &[u8], epoch: u64) -> Result<Bytes> {
        self.get_at_with(range, key, epoch, &ReadOptions::default())
    }

    /// [`Ltc::get_at`] honoring per-operation [`ReadOptions`].
    pub fn get_at_with(
        &self,
        range: RangeId,
        key: &[u8],
        epoch: u64,
        options: &ReadOptions,
    ) -> Result<Bytes> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        engine.get_with_options(key, options)
    }

    /// Read a batch of keys from `range` under one epoch validation and one
    /// engine resolution. Absence is data here: each slot is `None` when the
    /// key has no live version, in input order (duplicates allowed). The
    /// client's `multi_get` fans these per-range calls out concurrently.
    pub fn multi_get_at(
        &self,
        range: RangeId,
        keys: &[&[u8]],
        epoch: u64,
        options: &ReadOptions,
    ) -> Result<Vec<Option<Bytes>>> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            match engine.get_with_options(key, options) {
                Ok(value) => out.push(Some(value)),
                Err(Error::NotFound) => out.push(None),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// [`Ltc::scan`] validating the caller's configuration epoch.
    pub fn scan_at(
        &self,
        range: RangeId,
        start_key: &[u8],
        limit: usize,
        epoch: u64,
    ) -> Result<Vec<nova_common::types::Entry>> {
        self.scan_range_at(range, start_key, None, limit, epoch, &ReadOptions::default())
    }

    /// Epoch-validated bounded scan: up to `limit` live entries of
    /// `[start_key, end_key)` within `range` (an absent `end_key` scans to
    /// the end of the range's interval), honoring per-operation
    /// [`ReadOptions`] for cache admission and readahead — the entry bound
    /// is the explicit `limit` parameter, not `options.limit` (which is the
    /// client cursor's chunk size). The streaming client cursor pulls its
    /// chunks through this method.
    pub fn scan_range_at(
        &self,
        range: RangeId,
        start_key: &[u8],
        end_key: Option<&[u8]>,
        limit: usize,
        epoch: u64,
        options: &ReadOptions,
    ) -> Result<Vec<nova_common::types::Entry>> {
        let _timed = self.metrics.layer(nova_obs::Layer::Ltc);
        let engine = self.range(range)?;
        engine.check_epoch(epoch)?;
        engine.scan_range(start_key, end_key, limit, options)
    }

    /// Aggregate statistics across every range.
    pub fn stats(&self) -> LtcStats {
        let ranges = self.ranges.read();
        let mut out = LtcStats {
            ranges: ranges.len(),
            ..Default::default()
        };
        for engine in ranges.values() {
            let s = engine.stats();
            out.writes += s.writes.get();
            out.gets += s.gets.get();
            out.scans += s.scans.get();
            out.lookup_index_hits += s.lookup_index_hits.get();
            out.stalls += s.stalls.get();
            out.stall_nanos += s.stall_time.busy_nanos();
            out.bytes_flushed += s.bytes_flushed.get();
            out.memtable_merges += s.memtable_merges.get();
            out.flushes += s.flushes.get();
            out.compactions += s.compactions.get();
            out.reorganizations += s.reorganizations.get();
        }
        if let Some(cache) = &self.block_cache {
            let c = cache.stats();
            out.block_cache_hits = c.hits;
            out.block_cache_misses = c.misses;
            out.block_cache_evictions = c.evictions;
            out.block_cache_resident_bytes = c.resident_bytes;
        }
        out
    }

    /// Background work queued or running across every range: flushes,
    /// compactions and reorganisations that have been scheduled but not yet
    /// installed. The health report surfaces this as the LTC's
    /// migration/compaction backlog.
    pub fn background_backlog(&self) -> u64 {
        self.ranges.read().values().map(|e| e.background_backlog()).sum()
    }

    /// Flush every range (used by graceful shutdown and tests).
    pub fn flush_all(&self) -> Result<()> {
        let engines: Vec<Arc<RangeEngine>> = self.ranges.read().values().cloned().collect();
        for engine in engines {
            engine.flush_all()?;
        }
        Ok(())
    }

    /// Shut down every range engine's background threads.
    pub fn shutdown(&self) {
        let engines: Vec<Arc<RangeEngine>> = self.ranges.read().values().cloned().collect();
        for engine in engines {
            engine.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_to_missing_range_fails() {
        let ltc = Ltc::new(LtcId(0), NodeId(0));
        assert_eq!(ltc.id(), LtcId(0));
        assert_eq!(ltc.node(), NodeId(0));
        assert_eq!(ltc.num_ranges(), 0);
        assert!(matches!(
            ltc.put(RangeId(1), b"k", b"v"),
            Err(Error::WrongRange(_))
        ));
        assert!(matches!(ltc.get(RangeId(1), b"k"), Err(Error::WrongRange(_))));
        assert!(matches!(
            ltc.scan(RangeId(1), b"k", 10),
            Err(Error::WrongRange(_))
        ));
        let stats = ltc.stats();
        assert_eq!(stats.ranges, 0);
        assert_eq!(stats.writes, 0);
    }

    #[test]
    fn block_cache_stats_surface_in_ltc_stats() {
        use nova_cache::BlockKey;
        use nova_common::{StocFileId, StocId};

        // Without a cache the hit-rate is zero and the fields stay zero.
        let plain = Ltc::new(LtcId(0), NodeId(0));
        assert!(plain.block_cache().is_none());
        assert_eq!(plain.stats().block_cache_hit_rate(), 0.0);

        let cache = Arc::new(BlockCache::new(1 << 20, 2, false));
        let ltc = Ltc::with_block_cache(LtcId(1), NodeId(1), Some(Arc::clone(&cache)));
        let key = BlockKey::new(StocFileId::new(StocId(0), 1), 0);
        assert!(cache.get(&key).is_none()); // miss
        cache.insert(key, bytes::Bytes::from(vec![0u8; 64]));
        assert!(cache.get(&key).is_some()); // hit
        let stats = ltc.stats();
        assert_eq!(stats.block_cache_hits, 1);
        assert_eq!(stats.block_cache_misses, 1);
        assert_eq!(stats.block_cache_resident_bytes, 64);
        assert!((stats.block_cache_hit_rate() - 0.5).abs() < 1e-9);
    }
}
