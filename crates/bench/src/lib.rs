//! # nova-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Nova-LSM paper's evaluation (Section 8) on the simulated substrate.
//!
//! * Each table/figure has a binary in `src/bin/` (e.g. `fig01_shared_disk`,
//!   `tab05_powerofd`) that prints the same rows or series the paper reports.
//! * Substrate micro-benchmarks (memtable, SSTable, bloom filter, fabric,
//!   zipfian, lookup index) live in `benches/` and run under Criterion via
//!   `cargo bench`.
//!
//! The harness scales the paper's workloads down (smaller databases, smaller
//! memtables, a scaled simulated disk) while preserving the ratios that drive
//! every result; `EXPERIMENTS.md` records paper-vs-measured numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;

pub use harness::{
    baseline_store, nova_store, print_header, print_row, run_workload, BenchScale, StoreHandle,
};
