//! Shared plumbing for the experiment binaries: adapters that expose a
//! Nova-LSM cluster or a monolithic baseline cluster through the YCSB
//! driver's [`KvInterface`], a common experiment scale, and output helpers.

use nova_baseline::{BaselineCluster, BaselineKind};
use nova_common::config::{ClusterConfig, DiskConfig};
use nova_common::Result;
use nova_lsm::{NovaClient, NovaCluster};
use nova_ycsb::{Distribution, DriverConfig, KvInterface, Mix, RunLength, RunReport, Workload};
use std::sync::Arc;
use std::time::Duration;

/// The scale at which experiments run. The defaults keep every binary under a
/// minute while preserving the paper's memtable : database : disk ratios; the
/// `--full` flag of each binary doubles everything for closer shapes.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Number of records in the database.
    pub num_keys: u64,
    /// Value size in bytes (the paper uses 1 KB).
    pub value_size: usize,
    /// Client threads issuing operations.
    pub threads: usize,
    /// Duration of each measured run.
    pub run_secs: u64,
    /// Simulated disk profile.
    pub disk: DiskConfig,
    /// Puts each driver thread coalesces into one `put_batch` call
    /// (1 = classic per-operation YCSB).
    pub batch_size: usize,
    /// Gets each driver thread coalesces into one `multi_get` call
    /// (1 = classic per-operation YCSB).
    pub read_batch_size: usize,
}

impl Default for BenchScale {
    fn default() -> Self {
        BenchScale {
            num_keys: 20_000,
            value_size: 256,
            threads: 8,
            run_secs: 4,
            disk: DiskConfig::scaled(40, 2_000),
            batch_size: 1,
            read_batch_size: 1,
        }
    }
}

impl BenchScale {
    /// Parse `--full` / `--quick` from the command line.
    pub fn from_args() -> Self {
        let mut scale = BenchScale::default();
        for arg in std::env::args() {
            match arg.as_str() {
                "--full" => {
                    scale.num_keys = 100_000;
                    scale.run_secs = 10;
                    scale.threads = 16;
                }
                "--quick" => {
                    scale.num_keys = 5_000;
                    scale.run_secs = 2;
                    scale.threads = 4;
                }
                _ => {}
            }
        }
        scale
    }

    /// The driver configuration for this scale.
    pub fn driver(&self) -> DriverConfig {
        DriverConfig {
            threads: self.threads,
            run_length: RunLength::Duration(Duration::from_secs(self.run_secs)),
            sample_interval: Duration::from_millis(250),
            seed: 42,
            retry_budget: 8,
            batch_size: self.batch_size.max(1),
            read_batch_size: self.read_batch_size.max(1),
        }
    }
}

/// A store under test, adapted to the YCSB driver.
pub enum StoreHandle {
    /// A Nova-LSM cluster.
    Nova {
        /// The running cluster.
        cluster: Arc<NovaCluster>,
        /// A client bound to it.
        client: NovaClient,
    },
    /// A monolithic shared-nothing baseline cluster.
    Baseline(BaselineCluster),
}

impl KvInterface for StoreHandle {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self {
            StoreHandle::Nova { client, .. } => client.put(key, value),
            StoreHandle::Baseline(cluster) => cluster.put(key, value),
        }
    }

    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        match self {
            // The first-class batched write path: per-range shards, one
            // routing decision and group-committed logging per shard.
            StoreHandle::Nova { client, .. } => client.put_batch(items),
            StoreHandle::Baseline(cluster) => {
                for (key, value) in items {
                    cluster.put(key, value)?;
                }
                Ok(())
            }
        }
    }

    fn get(&self, key: &[u8]) -> Result<bool> {
        match self {
            StoreHandle::Nova { client, .. } => client.get(key).map(|v| v.is_some()),
            StoreHandle::Baseline(cluster) => match cluster.get(key) {
                Ok(_) => Ok(true),
                Err(nova_common::Error::NotFound) => Ok(false),
                Err(e) => Err(e),
            },
        }
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>> {
        match self {
            // The first-class scatter-gather read path: per-range shards
            // fanned out concurrently on the client's I/O pool.
            StoreHandle::Nova { client, .. } => {
                Ok(client.multi_get(keys)?.into_iter().map(|v| v.is_some()).collect())
            }
            StoreHandle::Baseline(cluster) => keys
                .iter()
                .map(|key| match cluster.get(key) {
                    Ok(_) => Ok(true),
                    Err(nova_common::Error::NotFound) => Ok(false),
                    Err(e) => Err(e),
                })
                .collect(),
        }
    }

    fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
        match self {
            StoreHandle::Nova { client, .. } => client.scan(start_key, count).map(|v| v.len()),
            StoreHandle::Baseline(cluster) => cluster.scan(start_key, count).map(|v| v.len()),
        }
    }

    fn secondary_lookup(&self, secondary: &[u8], limit: usize) -> Result<usize> {
        match self {
            // The indexed path: validated lookup-join through the ordered
            // secondary index (created by the experiment under the
            // well-known name).
            StoreHandle::Nova { client, .. } => client
                .index_lookup_rows(nova_ycsb::SECONDARY_INDEX_NAME, secondary, limit)
                .map(|rows| rows.len()),
            // Baselines have no secondary index; surface the default error.
            StoreHandle::Baseline(_) => Err(nova_common::Error::Unavailable(
                "store has no secondary index".into(),
            )),
        }
    }

    fn scan_range(&self, start_key: &[u8], end_key: &[u8], count: usize) -> Result<usize> {
        match self {
            // The streaming cursor: bounded chunks, never reads past the
            // requested interval.
            StoreHandle::Nova { client, .. } => {
                let options = nova_common::ReadOptions::default().with_chunk(count.clamp(1, 128));
                let mut seen = 0usize;
                for entry in client.scan_range(start_key, Some(end_key), options) {
                    entry?;
                    seen += 1;
                    if seen >= count {
                        break;
                    }
                }
                Ok(seen)
            }
            StoreHandle::Baseline(cluster) => {
                let entries = cluster.scan(start_key, count)?;
                Ok(entries.iter().filter(|e| e.key.as_ref() < end_key).count())
            }
        }
    }
}

impl StoreHandle {
    /// Tear the store down.
    pub fn shutdown(self) {
        match self {
            StoreHandle::Nova { cluster, .. } => cluster.shutdown(),
            StoreHandle::Baseline(cluster) => cluster.shutdown(),
        }
    }

    /// The Nova cluster, if this handle wraps one.
    pub fn nova(&self) -> Option<&Arc<NovaCluster>> {
        match self {
            StoreHandle::Nova { cluster, .. } => Some(cluster),
            StoreHandle::Baseline(_) => None,
        }
    }

    /// The Nova client, if this handle wraps one (exposes the
    /// stale-configuration retry counter for elasticity experiments).
    pub fn nova_client(&self) -> Option<&NovaClient> {
        match self {
            StoreHandle::Nova { client, .. } => Some(client),
            StoreHandle::Baseline(_) => None,
        }
    }
}

/// Start a Nova-LSM cluster from a configuration and pre-load it.
pub fn nova_store(mut config: ClusterConfig, scale: &BenchScale) -> StoreHandle {
    config.num_keys = scale.num_keys;
    config.disk = scale.disk;
    let cluster = NovaCluster::start(config).expect("start Nova-LSM cluster");
    let client = NovaClient::new(cluster.clone());
    let handle = StoreHandle::Nova { cluster, client };
    nova_ycsb::load(&handle, scale.num_keys, scale.value_size, scale.threads).expect("load database");
    handle
}

/// Start a baseline cluster and pre-load it.
pub fn baseline_store(
    kind: BaselineKind,
    num_servers: usize,
    memtable_bytes: usize,
    scale: &BenchScale,
) -> StoreHandle {
    let cluster = BaselineCluster::start(kind, num_servers, scale.num_keys, memtable_bytes, scale.disk)
        .expect("start baseline cluster");
    let handle = StoreHandle::Baseline(cluster);
    nova_ycsb::load(&handle, scale.num_keys, scale.value_size, scale.threads).expect("load database");
    handle
}

/// Run one workload against a store.
pub fn run_workload(
    store: &StoreHandle,
    mix: Mix,
    distribution: Distribution,
    scale: &BenchScale,
) -> RunReport {
    let workload = Workload::new(mix, distribution, scale.num_keys, scale.value_size);
    nova_ycsb::run(store, &workload, &scale.driver())
}

/// Print an experiment header.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("\t"));
}

/// Print one row of results.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_lsm::presets;

    #[test]
    fn nova_store_round_trips_through_the_driver_interface() {
        let scale = BenchScale {
            num_keys: 500,
            value_size: 16,
            threads: 2,
            run_secs: 1,
            disk: DiskConfig {
                bandwidth_bytes_per_sec: u64::MAX / 2,
                seek_micros: 0,
                accounting_only: true,
            },
            batch_size: 1,
            read_batch_size: 1,
        };
        let store = nova_store(presets::test_cluster(1, 2, scale.num_keys), &scale);
        assert!(store.nova().is_some());
        assert!(store.get(&nova_common::keyspace::encode_key(5)).unwrap());
        assert!(!store.get(b"99999999999999999999").unwrap());
        assert!(store.scan(&nova_common::keyspace::encode_key(0), 5).unwrap() >= 5);
        let report = run_workload(
            &store,
            Mix::Rw50,
            Distribution::Uniform,
            &BenchScale { run_secs: 1, ..scale },
        );
        assert!(report.operations > 0);
        store.shutdown();
    }

    #[test]
    fn baseline_store_round_trips_through_the_driver_interface() {
        let scale = BenchScale {
            num_keys: 400,
            value_size: 16,
            threads: 2,
            run_secs: 1,
            disk: DiskConfig {
                bandwidth_bytes_per_sec: u64::MAX / 2,
                seek_micros: 0,
                accounting_only: true,
            },
            batch_size: 1,
            read_batch_size: 1,
        };
        let store = baseline_store(BaselineKind::LevelDbStar, 2, 16 * 1024, &scale);
        assert!(store.nova().is_none());
        assert!(store.get(&nova_common::keyspace::encode_key(3)).unwrap());
        store.shutdown();
    }

    #[test]
    fn bench_scale_defaults_are_sane() {
        let scale = BenchScale::default();
        assert!(scale.num_keys > 0);
        assert!(scale.threads > 0);
        assert!(matches!(scale.driver().run_length, RunLength::Duration(_)));
    }
}
