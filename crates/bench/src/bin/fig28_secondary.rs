//! Figure 28 (repo extension): ordered secondary indexes — indexed lookup
//! speedup vs a full-scan filter, and the write-path cost of incremental
//! index maintenance.
//!
//! The workload writes values whose first [`CATEGORY_WIDTH`] bytes are a
//! category code (`key % NUM_CATEGORIES`, see `nova_ycsb::category_value`),
//! and creates the well-known `ycsb_category` index over that prefix. Three
//! measurements:
//!
//! * **secondary_lookup** — fetching every primary of one category through
//!   `index_lookup_rows` vs filtering a full scan of the base keyspace.
//!   The indexed path reads one contiguous posting range plus a
//!   `multi_get` validation join; the scan reads every record. `ci_gate`
//!   enforces the speedup floor (≥ 5x at quick scale).
//! * **index_write_overhead** — loading the same records into a fresh
//!   cluster with and without the index registered. The maintained path
//!   pays an old-value read plus index-entry writes per record.
//! * **sl50_mix** — the YCSB SL50 mix (50% secondary lookups / 50%
//!   category-prefixed writes) through the standard driver; `ci_gate`
//!   enforces 0 errors.
//!
//! Results are printed as a table and written to `BENCH_secondary.json`;
//! CI runs `--quick` and `ci_gate` enforces the floors.

use nova_bench::{print_header, print_row, StoreHandle};
use nova_common::config::DiskConfig;
use nova_common::keyspace::encode_key;
use nova_common::ReadOptions;
use nova_lsm::{presets, NovaClient, NovaCluster, ValueProjection};
use nova_ycsb::{
    category_of, category_value, Distribution, DriverConfig, Mix, RunLength, Workload, CATEGORY_WIDTH,
    NUM_CATEGORIES, SECONDARY_INDEX_NAME,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_cluster(num_keys: u64) -> (Arc<NovaCluster>, NovaClient) {
    let mut config = presets::test_cluster(1, 2, num_keys);
    config.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(Arc::clone(&cluster));
    (cluster, client)
}

/// Load `num_keys` category-prefixed records in batches; returns elapsed ms.
fn load_categorized(client: &NovaClient, num_keys: u64, value_size: usize) -> f64 {
    let start = Instant::now();
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..num_keys)
        .map(|i| (encode_key(i), category_value(i, value_size)))
        .collect();
    for chunk in items.chunks(512) {
        client.put_batch(chunk).expect("load");
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let num_keys: u64 = if quick { 4_000 } else { 16_000 };
    let value_size = 64usize;
    let per_category = (num_keys / NUM_CATEGORIES) as usize;
    let limit = per_category + 16;
    // Indexed lookups are cheap enough to sample many categories; the
    // full-scan baseline reads the whole database per lookup, so sample few.
    let indexed_samples: u64 = if quick { 20 } else { 50 };
    let scan_samples: u64 = 4;

    // ---- Write overhead: the same load with and without the index. ----
    let (plain_cluster, plain_client) = start_cluster(num_keys);
    let baseline_ms = load_categorized(&plain_client, num_keys, value_size);
    plain_cluster.shutdown();

    let (cluster, client) = start_cluster(num_keys);
    cluster
        .create_index(
            SECONDARY_INDEX_NAME,
            ValueProjection::Slice {
                offset: 0,
                len: CATEGORY_WIDTH,
            },
        )
        .expect("create index");
    let indexed_ms = load_categorized(&client, num_keys, value_size);
    let overhead = indexed_ms / baseline_ms.max(1e-9);

    print_header(
        &format!("Figure 28: index maintenance write overhead ({num_keys} records)"),
        &["records", "plain ms", "indexed ms", "overhead"],
    );
    print_row(&[
        num_keys.to_string(),
        format!("{baseline_ms:.1}"),
        format!("{indexed_ms:.1}"),
        format!("{overhead:.2}x"),
    ]);

    let mut json_rows: Vec<String> = Vec::new();
    json_rows.push(format!(
        "{{\"bench\":\"index_write_overhead\",\"records\":{num_keys},\
         \"baseline_ms\":{baseline_ms:.3},\"indexed_ms\":{indexed_ms:.3},\
         \"overhead\":{overhead:.3}}}"
    ));

    // ---- Indexed lookup vs full-scan filter (data flushed to SSTables so
    // both paths read tables, not just memtables). ----
    cluster.flush_all().expect("flush");

    let start = Instant::now();
    for i in 0..indexed_samples {
        let category = category_of(i * 7 % NUM_CATEGORIES);
        let rows = client
            .index_lookup_rows(SECONDARY_INDEX_NAME, &category, limit)
            .expect("indexed lookup");
        assert_eq!(rows.len(), per_category, "every posting must resolve");
    }
    let indexed_lookup_ms = start.elapsed().as_secs_f64() * 1e3 / indexed_samples as f64;

    let start = Instant::now();
    for i in 0..scan_samples {
        let category = category_of(i * 7 % NUM_CATEGORIES);
        let mut matches = 0usize;
        for entry in client.scan_range(
            &encode_key(0),
            Some(&encode_key(num_keys)),
            ReadOptions::default().with_chunk(512),
        ) {
            let entry = entry.expect("scan");
            if entry.value.starts_with(&category) {
                matches += 1;
            }
        }
        assert_eq!(matches, per_category, "the scan filter must agree");
    }
    let scan_filter_ms = start.elapsed().as_secs_f64() * 1e3 / scan_samples as f64;
    let speedup = scan_filter_ms / indexed_lookup_ms.max(1e-9);

    print_header(
        &format!("Figure 28b: indexed lookup vs full-scan filter ({per_category} rows/category)"),
        &["path", "ms/lookup", "speedup"],
    );
    print_row(&[
        "scan_filter".into(),
        format!("{scan_filter_ms:.2}"),
        "1.00x".into(),
    ]);
    print_row(&[
        "indexed".into(),
        format!("{indexed_lookup_ms:.2}"),
        format!("{speedup:.2}x"),
    ]);
    json_rows.push(format!(
        "{{\"bench\":\"secondary_lookup\",\"records\":{num_keys},\"rows_per_category\":{per_category},\
         \"indexed_ms\":{indexed_lookup_ms:.3},\"scan_ms\":{scan_filter_ms:.3},\
         \"speedup\":{speedup:.3}}}"
    ));

    // ---- The SL50 mix through the standard YCSB driver. ----
    let store = StoreHandle::Nova { cluster, client };
    let workload = Workload::new(Mix::Sl50, Distribution::Uniform, num_keys, value_size);
    let config = DriverConfig {
        threads: 4,
        run_length: RunLength::Operations(if quick { 500 } else { 2_000 }),
        sample_interval: Duration::from_millis(100),
        seed: 42,
        retry_budget: 8,
        batch_size: 1,
        read_batch_size: 1,
    };
    let report = nova_ycsb::run(&store, &workload, &config);
    print_header(
        "Figure 28c: SL50 mix (50% secondary lookups / 50% writes)",
        &["operations", "errors", "kops/s"],
    );
    print_row(&[
        report.operations.to_string(),
        report.errors.to_string(),
        format!("{:.1}", report.throughput_ops_per_sec() / 1e3),
    ]);
    json_rows.push(format!(
        "{{\"bench\":\"sl50_mix\",\"operations\":{},\"errors\":{},\
         \"throughput_ops_per_sec\":{:.1}}}",
        report.operations,
        report.errors,
        report.throughput_ops_per_sec()
    ));
    store.shutdown();

    println!("\nindexed lookup speedup vs full scan: {speedup:.2}x, write overhead {overhead:.2}x");

    let json = format!(
        "{{\"experiment\":\"fig28_secondary\",\"quick\":{quick},\"num_categories\":{NUM_CATEGORIES},\
         \"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    match std::fs::write("BENCH_secondary.json", &json) {
        Ok(()) => println!("wrote BENCH_secondary.json"),
        Err(e) => eprintln!("could not write BENCH_secondary.json: {e}"),
    }
}
