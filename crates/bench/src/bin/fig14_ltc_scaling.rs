//! Figure 14: throughput and scalability as the number of LTCs η grows from 1
//! to 5 with 10 StoCs, ρ=3, Uniform access.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Figure 14: scalability vs number of LTCs (β=10, ρ=3, Uniform)",
        &[
            "workload",
            "η=1 kops",
            "η=2 kops",
            "η=3 kops",
            "η=4 kops",
            "η=5 kops",
            "scalability(5)",
        ],
    );
    for mix in [Mix::Rw50, Mix::W100, Mix::Sw50] {
        let mut cells = vec![mix.label().to_string()];
        let mut base = 0.0;
        let mut last = 0.0;
        for eta in 1usize..=5 {
            let mut config = presets::shared_disk(eta, 10, 3, scale.num_keys);
            config.ranges_per_ltc = 1;
            let store = nova_store(config, &scale);
            let report = run_workload(&store, mix, Distribution::Uniform, &scale);
            store.shutdown();
            let kops = report.throughput_kops();
            if eta == 1 {
                base = kops;
            }
            last = kops;
            cells.push(format!("{kops:.1}"));
        }
        cells.push(format!("{:.1}x", if base > 0.0 { last / base } else { 0.0 }));
        print_row(&cells);
    }
}
