//! Figure 23 (repo extension): group-commit logging and batched writes vs
//! the per-record serial baseline.
//!
//! The paper's write path (Section 5) replicates every log record with one
//! `RDMA WRITE` per replica, so with η replicas each put pays η sequential
//! fabric round trips and writers of a memtable serialize behind them. This
//! experiment turns `simulate_delay` on (every verb sleeps for its simulated
//! network time) and measures put throughput at η ∈ {1, 3} in-memory log
//! replicas under three write-path configurations:
//!
//! * **serial** — `group_commit_max_records = 1` and `stoc_io_parallelism
//!   = 1`: the pre-group-commit protocol, one write per replica per record,
//!   replicas in sequence;
//! * **parallel-replicas** — still one write per record, but the replicas
//!   fan out concurrently: isolates the I/O-pool effect so the gate can
//!   tell a grouping regression from a fan-out regression;
//! * **group** — group commit on: concurrent writers' records coalesce into
//!   one write per replica per group, replicas fanned out in parallel;
//! * **group+batch** — group commit plus `NovaClient::put_batch`: each
//!   client thread submits its puts in batches, so even a lone thread fills
//!   whole groups.
//!
//! Results are printed as a table and written to `BENCH_group_commit.json`;
//! CI runs `--quick` and `ci_gate` enforces the ≥2x floor at η=3.

use nova_bench::{print_header, print_row};
use nova_common::config::{DiskConfig, FabricConfig, LogPolicy};
use nova_lsm::{presets, NovaClient, NovaCluster};
use std::sync::Arc;
use std::time::Instant;

/// One-way verb latency for the simulated fabric. Large enough that network
/// round trips dominate, as in the paper's setup where the network prices
/// every log append.
const LATENCY_NANOS: u64 = 100_000;

const WRITER_THREADS: u64 = 8;

struct Scenario {
    label: &'static str,
    group_commit: bool,
    serial_io: bool,
    batch_size: usize,
}

const SCENARIOS: [Scenario; 4] = [
    Scenario {
        label: "serial",
        group_commit: false,
        serial_io: true,
        batch_size: 1,
    },
    Scenario {
        label: "parallel-replicas",
        group_commit: false,
        serial_io: false,
        batch_size: 1,
    },
    Scenario {
        label: "group",
        group_commit: true,
        serial_io: false,
        batch_size: 1,
    },
    Scenario {
        label: "group+batch",
        group_commit: true,
        serial_io: false,
        batch_size: 16,
    },
];

/// Run one scenario: start a fresh cluster, hammer it with put-only writer
/// threads, return puts/second plus the client-observed write latency
/// percentiles (merged over `put` and `put_batch`).
fn run_scenario(replicas: u32, scenario: &Scenario, puts_per_thread: u64, num_keys: u64) -> (f64, u64, u64) {
    let mut config = presets::test_cluster(1, 3, num_keys);
    config.fabric = FabricConfig {
        latency_nanos: LATENCY_NANOS,
        simulate_delay: true,
        ..FabricConfig::default()
    };
    config.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas };
    // Larger memtables keep flush traffic (which pays the simulated latency
    // too, in the background) from dominating the short run.
    config.range.memtable_size_bytes = 64 * 1024;
    config.range.max_memtables = 32;
    if !scenario.group_commit {
        // Per-record logging: one group per record.
        config.group_commit_max_records = 1;
    }
    if scenario.serial_io {
        // The fully serial baseline additionally writes the replicas in
        // submission order through the width-1 pool.
        config.stoc_io_parallelism = 1;
    }
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(Arc::clone(&cluster));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..WRITER_THREADS {
            let client = client.clone();
            let batch_size = scenario.batch_size;
            scope.spawn(move || {
                let value = vec![b'v'; 64];
                // Deterministic per-thread LCG so runs are comparable.
                let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                let mut next_key = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) % num_keys
                };
                if batch_size <= 1 {
                    for _ in 0..puts_per_thread {
                        client.put_numeric(next_key(), &value).expect("put");
                    }
                } else {
                    let mut done = 0u64;
                    while done < puts_per_thread {
                        let n = batch_size.min((puts_per_thread - done) as usize);
                        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                            .map(|_| (nova_common::keyspace::encode_key(next_key()), value.clone()))
                            .collect();
                        client.put_batch(&items).expect("put_batch");
                        done += n as u64;
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut writes = cluster.metrics().op_snapshot(nova_lsm::obs::OpKind::Put);
    writes.merge(&cluster.metrics().op_snapshot(nova_lsm::obs::OpKind::PutBatch));
    cluster.shutdown();
    let ops = (WRITER_THREADS * puts_per_thread) as f64 / elapsed.max(1e-9);
    (ops, writes.p50(), writes.p99())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let puts_per_thread: u64 = if quick { 250 } else { 1_000 };
    let num_keys = 10_000u64;

    print_header(
        &format!(
            "Figure 23: group-commit write path (simulate_delay on, {WRITER_THREADS} writers, \
             {puts_per_thread} puts/writer)"
        ),
        &["replicas", "mode", "batch", "kops", "speedup vs serial"],
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mut speedup_at_3 = 0.0f64;
    for replicas in [1u32, 3] {
        let mut serial_ops = 0.0f64;
        let mut parallel_ops = 0.0f64;
        for scenario in &SCENARIOS {
            let (ops, p50, p99) = run_scenario(replicas, scenario, puts_per_thread, num_keys);
            if scenario.serial_io {
                serial_ops = ops;
            } else if !scenario.group_commit {
                parallel_ops = ops;
            }
            let speedup = ops / serial_ops.max(1e-9);
            // Grouping isolated from replica fan-out: against the
            // per-record-but-parallel-replicas baseline.
            let vs_parallel = ops / parallel_ops.max(1e-9);
            if replicas == 3 {
                speedup_at_3 = speedup_at_3.max(speedup);
            }
            print_row(&[
                replicas.to_string(),
                scenario.label.to_string(),
                scenario.batch_size.to_string(),
                format!("{:.1}", ops / 1e3),
                format!("{speedup:.2}x"),
            ]);
            json_rows.push(format!(
                "{{\"bench\":\"put\",\"replicas\":{replicas},\"mode\":\"{}\",\
                 \"group_commit\":{},\"batch_size\":{},\"kops\":{:.3},\"speedup\":{speedup:.3},\
                 \"speedup_vs_parallel\":{vs_parallel:.3},\"p50_micros\":{p50},\"p99_micros\":{p99}}}",
                scenario.label,
                scenario.group_commit,
                scenario.batch_size,
                ops / 1e3,
            ));
        }
    }

    println!(
        "\nbest put speedup at eta=3 (group commit + batching vs per-record serial): {speedup_at_3:.2}x"
    );

    let json = format!(
        "{{\"experiment\":\"fig23_group_commit\",\"quick\":{quick},\"latency_nanos\":{LATENCY_NANOS},\
         \"writer_threads\":{WRITER_THREADS},\"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    match std::fs::write("BENCH_group_commit.json", &json) {
        Ok(()) => println!("wrote BENCH_group_commit.json"),
        Err(e) => eprintln!("could not write BENCH_group_commit.json: {e}"),
    }
}
