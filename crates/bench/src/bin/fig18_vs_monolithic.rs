//! Figure 18: Nova-LSM against the monolithic baselines (LevelDB, LevelDB*,
//! RocksDB, RocksDB*, RocksDB-tuned) on one node and on ten nodes, with and
//! without logging. Pass `--ten-nodes` to run the 10-server variant (18b–d)
//! instead of the single-server one (18a).

use nova_baseline::{all_kinds, BaselineKind};
use nova_bench::{baseline_store, nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::LogPolicy;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let ten_nodes = std::env::args().any(|a| a == "--ten-nodes");
    let servers = if ten_nodes { 10 } else { 1 };
    let memtable_bytes = presets::scaled_experiment(scale.num_keys)
        .range
        .memtable_size_bytes;

    print_header(
        &format!("Figure 18: Nova-LSM vs monolithic baselines ({servers} server(s))"),
        &["workload", "distribution", "system", "kops", "vs LevelDB"],
    );
    for mix in Mix::standard() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            let mut leveldb_kops = 0.0;
            // Baselines.
            let kinds: Vec<BaselineKind> = if ten_nodes {
                vec![
                    BaselineKind::LevelDbStar,
                    BaselineKind::RocksDbStar,
                    BaselineKind::RocksDbTuned,
                ]
            } else {
                all_kinds().to_vec()
            };
            for kind in kinds {
                let store = baseline_store(kind, servers, memtable_bytes, &scale);
                let report = run_workload(&store, mix, dist, &scale);
                store.shutdown();
                if kind == BaselineKind::LevelDb || (ten_nodes && kind == BaselineKind::LevelDbStar) {
                    leveldb_kops = report.throughput_kops();
                }
                let factor = if leveldb_kops > 0.0 {
                    report.throughput_kops() / leveldb_kops
                } else {
                    1.0
                };
                print_row(&[
                    mix.label().to_string(),
                    dist.label(),
                    kind.label().to_string(),
                    format!("{:.1}", report.throughput_kops()),
                    format!("{factor:.1}x"),
                ]);
            }
            // Nova-LSM, without and with logging.
            for (label, logging) in [("Nova-LSM", false), ("Nova-LSM+Logging", true)] {
                let mut config = if ten_nodes {
                    presets::shared_disk(servers, servers, 3, scale.num_keys)
                } else {
                    presets::shared_disk(1, 1, 1, scale.num_keys)
                };
                if logging {
                    config.range.log_policy = LogPolicy::InMemoryReplicated {
                        replicas: 3.min(servers as u32),
                    };
                }
                let store = nova_store(config, &scale);
                let report = run_workload(&store, mix, dist, &scale);
                store.shutdown();
                let factor = if leveldb_kops > 0.0 {
                    report.throughput_kops() / leveldb_kops
                } else {
                    1.0
                };
                print_row(&[
                    mix.label().to_string(),
                    dist.label(),
                    label.to_string(),
                    format!("{:.1}", report.throughput_kops()),
                    format!("{factor:.1}x"),
                ]);
            }
        }
    }
}
