//! Figure 13: throughput and scalability of one LTC as the number of StoCs β
//! grows from 1 to 10 (ρ=1, power-of-2).

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Figure 13: scalability of 1 LTC vs number of StoCs (ρ=1)",
        &[
            "workload",
            "distribution",
            "β=1 kops",
            "β=3 kops",
            "β=5 kops",
            "β=10 kops",
            "scalability(10)",
        ],
    );
    for mix in Mix::standard() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            let mut cells = vec![mix.label().to_string(), dist.label()];
            let mut base = 0.0;
            let mut last = 0.0;
            for beta in [1usize, 3, 5, 10] {
                let store = nova_store(presets::shared_disk(1, beta, 1, scale.num_keys), &scale);
                let report = run_workload(&store, mix, dist, &scale);
                store.shutdown();
                let kops = report.throughput_kops();
                if beta == 1 {
                    base = kops;
                }
                last = kops;
                cells.push(format!("{kops:.1}"));
            }
            cells.push(format!("{:.1}x", if base > 0.0 { last / base } else { 0.0 }));
            print_row(&cells);
        }
    }
}
