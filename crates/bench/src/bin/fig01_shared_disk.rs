//! Figure 1: shared-nothing vs shared-disk on the same 10-server hardware,
//! RW50 / W100 / SW50 with Uniform and Zipfian access.
//!
//! The paper reports that with Zipfian access the shared-disk configuration
//! improves throughput by 9×–14× because the shared-nothing node holding the
//! popular keys saturates its one disk while nine disks idle.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let servers = 10;
    print_header(
        "Figure 1: shared-nothing vs shared-disk (10 servers)",
        &[
            "workload",
            "distribution",
            "shared-nothing kops",
            "shared-disk kops",
            "factor",
        ],
    );
    for mix in Mix::standard() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            // Shared-nothing: each LTC writes only to its local StoC.
            let store = nova_store(presets::shared_nothing(servers, scale.num_keys), &scale);
            let nothing = run_workload(&store, mix, dist, &scale);
            store.shutdown();
            // Shared-disk: ρ=3 of 10 StoCs with power-of-d.
            let store = nova_store(presets::shared_disk(servers, servers, 3, scale.num_keys), &scale);
            let disk = run_workload(&store, mix, dist, &scale);
            store.shutdown();
            let factor = if nothing.throughput_kops() > 0.0 {
                disk.throughput_kops() / nothing.throughput_kops()
            } else {
                0.0
            };
            print_row(&[
                mix.label().to_string(),
                dist.label(),
                format!("{:.1}", nothing.throughput_kops()),
                format!("{:.1}", disk.throughput_kops()),
                format!("{factor:.1}x"),
            ]);
        }
    }
}
