//! Table 5: the impact of the scatter width ρ and of power-of-d vs random
//! placement with a tiny memory budget (α=1, δ=2).

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::PlacementPolicy;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Table 5: W100 Uniform throughput vs rho (η=1, β=10, α=1, δ=2)",
        &["rho", "random ops/s", "power-of-d ops/s"],
    );
    for rho in [1usize, 3, 10] {
        let mut cells = vec![rho.to_string()];
        for policy in [PlacementPolicy::Random, PlacementPolicy::PowerOfD] {
            let mut config = presets::shared_disk(1, 10, rho, scale.num_keys);
            config.range.placement = policy;
            config.range.active_memtables = 1;
            config.range.num_dranges = 1;
            config.range.max_memtables = 2;
            let store = nova_store(config, &scale);
            let report = run_workload(&store, Mix::W100, Distribution::Uniform, &scale);
            store.shutdown();
            cells.push(format!("{:.0}", report.throughput_ops_per_sec()));
        }
        print_row(&cells);
    }
}
