//! Figure 11 and Section 8.2.1: the Drange ablation. Nova-LSM (Dranges +
//! small-memtable merging) vs Nova-LSM-S (static partitioning, no merging) vs
//! Nova-LSM-R (random memtable selection — a single logical L0 keyspace).
//! Also reports the Drange load-imbalance / reorganisation statistics.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Figure 11: Nova-LSM vs Nova-LSM-R vs Nova-LSM-S (η=1, β=10)",
        &[
            "workload",
            "distribution",
            "Nova-LSM-R kops",
            "Nova-LSM-S kops",
            "Nova-LSM kops",
        ],
    );
    for mix in Mix::standard() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            // Nova-LSM-R: one Drange (every L0 SSTable spans the keyspace),
            // no merge optimisation, no reorganisation.
            let mut r = presets::shared_disk(1, 10, 1, scale.num_keys);
            r.range.num_dranges = 1;
            r.range.unique_key_flush_threshold = 0;
            r.range.reorg_check_interval = u64::MAX;
            let store = nova_store(r, &scale);
            let report_r = run_workload(&store, mix, dist, &scale);
            store.shutdown();

            // Nova-LSM-S: static Dranges, no merging, no reorganisation.
            let mut s = presets::shared_disk(1, 10, 1, scale.num_keys);
            s.range.unique_key_flush_threshold = 0;
            s.range.reorg_check_interval = u64::MAX;
            let store = nova_store(s, &scale);
            let report_s = run_workload(&store, mix, dist, &scale);
            store.shutdown();

            // Full Nova-LSM.
            let full = presets::shared_disk(1, 10, 1, scale.num_keys);
            let store = nova_store(full, &scale);
            let report_full = run_workload(&store, mix, dist, &scale);
            if mix == Mix::W100 {
                if let Some(cluster) = store.nova() {
                    let range = cluster
                        .coordinator()
                        .configuration()
                        .range_assignment
                        .keys()
                        .copied()
                        .next()
                        .unwrap();
                    let engine = cluster.ltc(cluster.ltc_ids()[0]).unwrap().range(range).unwrap();
                    let stats = engine.drange_stats();
                    println!(
                        "  [{} {}] load imbalance {:.2e}, {} minor + {} major reorganisations, {} duplicated Dranges",
                        mix.label(),
                        dist.label(),
                        engine.drange_load_imbalance(),
                        stats.minor_reorgs,
                        stats.major_reorgs,
                        stats.duplicated_dranges
                    );
                }
            }
            store.shutdown();

            print_row(&[
                mix.label().to_string(),
                dist.label(),
                format!("{:.1}", report_r.throughput_kops()),
                format!("{:.1}", report_s.throughput_kops()),
                format!("{:.1}", report_full.throughput_kops()),
            ]);
        }
    }
}
