//! Table 6 / Section 8.2.6: load balancing across LTCs under Zipfian access.
//! With 5 LTCs, 85% of requests hit the first LTC; migrating ranges away from
//! it improves throughput substantially.
//!
//! Beyond the paper's before/after comparison, the middle phase performs the
//! migrations *while the workload is running*, exercising the epoch-guarded
//! handoff: writes landing in the handoff window are retried by the client
//! against the refreshed configuration, so the client-visible error count
//! during migration must stay at zero (the retries themselves are reported).
//! Results are printed as a table and written to `BENCH_migration.json` so
//! CI can track the elasticity trajectory alongside `BENCH_scatter.json`.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    print_header(
        "Table 6: range migration under load (Zipfian, η=5, β=10, ω=8)",
        &[
            "workload",
            "before kops",
            "during kops",
            "after kops",
            "improvement",
            "ranges migrated",
            "migration ms",
            "client errors",
            "client retries",
        ],
    );
    let mut json_rows: Vec<String> = Vec::new();
    for mix in [Mix::Rw50, Mix::Sw50, Mix::W100] {
        let mut config = presets::shared_disk(5, 10, 1, scale.num_keys);
        config.ranges_per_ltc = 8;
        config.range.active_memtables = 4;
        config.range.num_dranges = 4;
        config.range.max_memtables = 8;
        let store = nova_store(config, &scale);
        let before = run_workload(&store, mix, Distribution::zipfian_default(), &scale);

        // Rebalance using the coordinator's plan *while the workload runs*,
        // and account every client-visible error and retry in the window.
        let retries_before = store.nova_client().map(|c| c.config_retries()).unwrap_or(0);
        let mut migrated = 0usize;
        let mut migration_ms = 0.0f64;
        let during = std::thread::scope(|scope| {
            let worker = scope.spawn(|| run_workload(&store, mix, Distribution::zipfian_default(), &scale));
            // Let the Zipfian skew re-accumulate on the hot LTC, then move
            // ranges off it mid-run.
            std::thread::sleep(std::time::Duration::from_millis(scale.run_secs * 1000 / 4));
            if let Some(cluster) = store.nova() {
                let migration_start = Instant::now();
                migrated = cluster.rebalance().unwrap_or(0);
                migration_ms = migration_start.elapsed().as_secs_f64() * 1e3;
            }
            worker.join().expect("workload thread panicked")
        });
        let migration_retries = store
            .nova_client()
            .map(|c| c.config_retries())
            .unwrap_or(0)
            .saturating_sub(retries_before);

        let after = run_workload(&store, mix, Distribution::zipfian_default(), &scale);
        store.shutdown();
        let improvement = if before.throughput_kops() > 0.0 {
            after.throughput_kops() / before.throughput_kops()
        } else {
            0.0
        };
        print_row(&[
            mix.label().to_string(),
            format!("{:.1}", before.throughput_kops()),
            format!("{:.1}", during.throughput_kops()),
            format!("{:.1}", after.throughput_kops()),
            format!("{improvement:.2}x"),
            migrated.to_string(),
            format!("{migration_ms:.1}"),
            during.errors.to_string(),
            migration_retries.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"mix\":\"{}\",\"before_kops\":{:.3},\"during_kops\":{:.3},\"after_kops\":{:.3},\
             \"improvement\":{improvement:.3},\"ranges_migrated\":{migrated},\
             \"migration_ms\":{migration_ms:.3},\"client_errors_during_migration\":{},\
             \"client_retries_during_migration\":{migration_retries},\
             \"p50_micros\":{:.1},\"p99_micros\":{:.1}}}",
            mix.label(),
            before.throughput_kops(),
            during.throughput_kops(),
            after.throughput_kops(),
            during.errors,
            during.p50_micros(),
            during.p99_micros(),
        ));
        if during.errors > 0 {
            eprintln!(
                "WARNING: {} client-visible errors during migration of {} — the epoch/retry \
                 contract should keep this at zero",
                during.errors,
                mix.label()
            );
        }
    }
    let json = format!(
        "{{\"experiment\":\"tab06_migration\",\"quick\":{quick},\"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    match std::fs::write("BENCH_migration.json", &json) {
        Ok(()) => println!("wrote BENCH_migration.json"),
        Err(e) => eprintln!("could not write BENCH_migration.json: {e}"),
    }
}
