//! Table 6 / Section 8.2.6: load balancing across LTCs under Zipfian access.
//! With 5 LTCs, 85% of requests hit the first LTC; migrating ranges away from
//! it improves throughput substantially.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Table 6: throughput before/after range migration (Zipfian, η=5, β=10, ω=8)",
        &[
            "workload",
            "before kops",
            "after kops",
            "improvement",
            "ranges migrated",
        ],
    );
    for mix in [Mix::Rw50, Mix::Sw50, Mix::W100] {
        let mut config = presets::shared_disk(5, 10, 1, scale.num_keys);
        config.ranges_per_ltc = 8;
        config.range.active_memtables = 4;
        config.range.num_dranges = 4;
        config.range.max_memtables = 8;
        let store = nova_store(config, &scale);
        let before = run_workload(&store, mix, Distribution::zipfian_default(), &scale);
        // Rebalance using the coordinator's plan, then measure again.
        let migrated = store.nova().map(|c| c.rebalance().unwrap_or(0)).unwrap_or(0);
        let after = run_workload(&store, mix, Distribution::zipfian_default(), &scale);
        store.shutdown();
        let improvement = if before.throughput_kops() > 0.0 {
            after.throughput_kops() / before.throughput_kops()
        } else {
            0.0
        };
        print_row(&[
            mix.label().to_string(),
            format!("{:.1}", before.throughput_kops()),
            format!("{:.1}", after.throughput_kops()),
            format!("{improvement:.2}x"),
            migrated.to_string(),
        ]);
    }
}
