//! Figure 17: recovery duration — fetching log records with one-sided reads
//! vs rebuilding memtables, as a function of the number of memtables (δ) and
//! of the number of recovery threads.

use nova_bench::{print_header, print_row, BenchScale};
use nova_common::config::{DiskConfig, LogPolicy};
use nova_common::keyspace::{encode_key, KeyInterval};
use nova_common::{NodeId, RangeId, StocId};
use nova_fabric::Fabric;
use nova_logc::LogC;
use nova_ltc::{Manifest, Placer, RangeEngine};
use nova_stoc::{SimDisk, StocClient, StocDirectory, StocServer, StorageMedium};
use std::sync::Arc;
use std::time::Instant;

fn build_logged_range(
    num_stocs: usize,
    memtables: usize,
    entries_per_memtable: u64,
    value_size: usize,
) -> (Vec<StocServer>, StocClient, nova_common::config::RangeConfig) {
    let fabric = Fabric::with_defaults(num_stocs + 1);
    let directory = StocDirectory::new();
    let servers: Vec<StocServer> = (0..num_stocs)
        .map(|i| {
            let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                bandwidth_bytes_per_sec: u64::MAX / 2,
                seek_micros: 0,
                accounting_only: true,
            }));
            StocServer::start(
                StocId(i as u32),
                NodeId(i as u32 + 1),
                &fabric,
                directory.clone(),
                medium,
                2,
                1,
            )
        })
        .collect();
    let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);

    let mut config = nova_lsm::presets::test_cluster(1, num_stocs, 1_000_000).range;
    config.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
    config.memtable_size_bytes = (entries_per_memtable as usize) * (value_size + 64);
    config.max_memtables = memtables.max(2);
    config.active_memtables = memtables.clamp(1, 8);
    config.num_dranges = memtables.clamp(1, 8);
    config.level0_stall_bytes = u64::MAX;

    // Populate: write enough entries to fill roughly `memtables` memtables.
    let logc = Arc::new(LogC::new(
        client.clone(),
        config.log_policy,
        config.memtable_size_bytes as u64 * 2,
    ));
    let placer = Placer::new(client.clone(), config.placement, config.availability, None, 1);
    let manifest = Manifest::new(StocId(0), "fig17");
    let engine = RangeEngine::new(
        RangeId(0),
        KeyInterval::new(0, 1_000_000),
        config.clone(),
        client.clone(),
        logc,
        placer,
        manifest,
        None,
    )
    .expect("engine");
    let total = entries_per_memtable * memtables as u64;
    for i in 0..total {
        engine
            .put(&encode_key(i % 1_000_000), &vec![b'r'; value_size])
            .expect("put");
    }
    engine.shutdown();
    (servers, client, config)
}

fn main() {
    let scale = BenchScale::from_args();
    let value_size = scale.value_size.min(256);

    print_header(
        "Figure 17a: recovery duration vs number of memtables (1 recovery thread)",
        &[
            "memtables δ",
            "log fetch+parse ms",
            "memtable rebuild ms",
            "total ms",
        ],
    );
    for memtables in [1usize, 8, 32] {
        let (servers, client, config) = build_logged_range(3, memtables, 200, value_size);
        let logc = Arc::new(LogC::new(
            client.clone(),
            config.log_policy,
            config.memtable_size_bytes as u64 * 2,
        ));
        let fetch_start = Instant::now();
        let records = logc.recover_range(RangeId(0), 1).expect("recover logs");
        let fetch_ms = fetch_start.elapsed().as_secs_f64() * 1000.0;
        let rebuild_start = Instant::now();
        let placer = Placer::new(client.clone(), config.placement, config.availability, None, 2);
        let manifest = Manifest::new(StocId(0), "fig17");
        let engine = RangeEngine::recover(
            RangeId(0),
            KeyInterval::new(0, 1_000_000),
            config.clone(),
            client.clone(),
            logc,
            placer,
            manifest,
            None,
            1,
        )
        .expect("recover engine");
        let rebuild_ms = rebuild_start.elapsed().as_secs_f64() * 1000.0;
        engine.shutdown();
        let _ = records;
        print_row(&[
            memtables.to_string(),
            format!("{fetch_ms:.1}"),
            format!("{rebuild_ms:.1}"),
            format!("{:.1}", fetch_ms + rebuild_ms),
        ]);
        for s in servers {
            s.stop();
        }
    }

    print_header(
        "Figure 17b: recovery duration vs number of recovery threads (δ=32)",
        &["recovery threads", "recovery ms"],
    );
    for threads in [1usize, 2, 4, 8, 16] {
        let (servers, client, config) = build_logged_range(3, 32, 200, value_size);
        let logc = Arc::new(LogC::new(
            client.clone(),
            config.log_policy,
            config.memtable_size_bytes as u64 * 2,
        ));
        let placer = Placer::new(client.clone(), config.placement, config.availability, None, 3);
        let manifest = Manifest::new(StocId(0), "fig17");
        let start = Instant::now();
        let engine = RangeEngine::recover(
            RangeId(0),
            KeyInterval::new(0, 1_000_000),
            config.clone(),
            client.clone(),
            logc,
            placer,
            manifest,
            None,
            threads,
        )
        .expect("recover engine");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        engine.shutdown();
        print_row(&[threads.to_string(), format!("{ms:.1}")]);
        for s in servers {
            s.stop();
        }
    }
}
