//! Figure 22 (repo extension): scatter-gather StoC I/O vs the serial
//! baseline.
//!
//! Nova-LSM's performance model assumes the ρ fragments of an SSTable move
//! to/from StoCs concurrently (Section 4.4, Figure 10), so a flush costs
//! ~max(fragment transfer) instead of sum(fragment transfers). This
//! experiment turns `simulate_delay` on (every verb sleeps for its simulated
//! network time) and measures, at growing scatter width ρ:
//!
//! * **flush** — `write_table` latency, serial client (I/O parallelism 1)
//!   vs scatter-gather client, with and without 3-way replication;
//! * **degraded read** — parity reconstruction of a fragment on a failed
//!   StoC (parity + ρ−1 survivors, serial vs concurrent);
//! * **scan** — full `TableIterator` pass over a scattered table with
//!   readahead 0 vs a prefetch window.
//!
//! Results are printed as a table and appended to `BENCH_scatter.json` so CI
//! can track the perf trajectory.

use nova_bench::{print_header, print_row};
use nova_common::config::{DiskConfig, FabricConfig};
use nova_common::types::Entry;
use nova_common::{NodeId, StocId};
use nova_fabric::Fabric;
use nova_sstable::{collect_entries, BuiltTable, TableBuilder, TableOptions, TableReader};
use nova_stoc::{
    delete_table, read_fragment, read_meta_block, write_table, ScatteredBlockFetcher, SimDisk, StocClient,
    StocDirectory, StocServer, StorageMedium, TableWriteSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-way verb latency for the simulated fabric. Large enough that network
/// round trips dominate thread-spawn overhead, as in the paper's setup where
/// the network, not the client CPU, prices every transfer.
const LATENCY_NANOS: u64 = 100_000;

const NUM_STOCS: usize = 8;

struct TestBed {
    fabric: Arc<Fabric>,
    directory: StocDirectory,
    servers: Vec<StocServer>,
}

impl TestBed {
    fn start() -> TestBed {
        let fabric_config = FabricConfig {
            latency_nanos: LATENCY_NANOS,
            simulate_delay: true,
            ..FabricConfig::default()
        };
        let fabric = Fabric::new(NUM_STOCS + 1, &fabric_config);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..NUM_STOCS)
            .map(|i| {
                // Accounting-only disks: this experiment isolates the network
                // path, the disk model is exercised by fig13/fig19.
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    8,
                    2,
                )
            })
            .collect();
        TestBed {
            fabric,
            directory,
            servers,
        }
    }

    fn client(&self, io_parallelism: usize) -> StocClient {
        StocClient::new(self.fabric.endpoint(NodeId(0)), self.directory.clone())
            .with_io_parallelism(io_parallelism)
    }

    fn stop(self) {
        for s in self.servers {
            s.stop();
        }
    }
}

/// Build a table of `rho` fragments totalling roughly `total_bytes` of
/// entries.
fn build_table(rho: usize, total_bytes: usize) -> BuiltTable {
    let value = vec![b'v'; 100];
    let per_entry = 16 + value.len();
    let count = (total_bytes / per_entry).max(rho * 8) as u64;
    let mut builder = TableBuilder::new(TableOptions {
        block_size: 1024,
        bloom_bits_per_key: 10,
        num_fragments: rho,
    });
    for i in 0..count {
        builder.add(&Entry::put(
            format!("key-{i:08}").into_bytes(),
            i + 1,
            value.clone(),
        ));
    }
    builder.finish().expect("build table")
}

/// Scatter `rho` fragments over distinct StoCs with `replicas` copies each,
/// parity on the next free StoC, metadata co-located with fragment 0.
fn scatter_spec(rho: usize, replicas: usize) -> TableWriteSpec {
    let fragment_placement = (0..rho)
        .map(|i| {
            (0..replicas)
                .map(|r| StocId(((i + r * rho + r) % NUM_STOCS) as u32))
                .collect()
        })
        .collect();
    TableWriteSpec {
        file_number: 1,
        level: 0,
        drange: None,
        fragment_placement,
        meta_placement: vec![StocId(0)],
        parity_placement: Some(StocId((rho % NUM_STOCS) as u32)),
    }
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn time_flush(client: &StocClient, built: &BuiltTable, spec: &TableWriteSpec, iters: usize) -> Duration {
    let samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            let meta = write_table(client, built, spec).expect("write table");
            let elapsed = start.elapsed();
            delete_table(client, &meta);
            elapsed
        })
        .collect();
    median(samples)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 3 } else { 7 };
    let fragment_bytes = if quick { 8 << 10 } else { 32 << 10 };

    let mut json_rows: Vec<String> = Vec::new();

    // ---- flush latency vs scatter width --------------------------------
    print_header(
        "Figure 22: scatter-gather StoC I/O (simulate_delay on, β=8)",
        &["rho", "replicas", "serial ms", "parallel ms", "speedup"],
    );
    let mut speedup_at_4 = 0.0f64;
    for rho in [1usize, 2, 4, 8] {
        for replicas in [1usize, 3] {
            if replicas > 1 && rho > 4 {
                continue; // 8 fragments × 3 replicas oversubscribes 8 StoCs
            }
            let bed = TestBed::start();
            let built = build_table(rho, rho * fragment_bytes);
            let spec = scatter_spec(rho, replicas);
            let serial = time_flush(&bed.client(1), &built, &spec, iters);
            let parallel = time_flush(&bed.client(16), &built, &spec, iters);
            let speedup = ms(serial) / ms(parallel).max(1e-9);
            if rho == 4 && replicas == 1 {
                speedup_at_4 = speedup;
            }
            print_row(&[
                rho.to_string(),
                replicas.to_string(),
                format!("{:.2}", ms(serial)),
                format!("{:.2}", ms(parallel)),
                format!("{speedup:.2}x"),
            ]);
            json_rows.push(format!(
                "{{\"bench\":\"flush\",\"rho\":{rho},\"replicas\":{replicas},\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\"speedup\":{speedup:.3}}}",
                ms(serial),
                ms(parallel)
            ));
            bed.stop();
        }
    }

    // ---- degraded read: parity reconstruction --------------------------
    {
        // ρ < β so the parity block lands on a StoC that holds no data
        // fragment; failing fragment 0's StoC must leave parity reachable.
        let rho = if quick { 4 } else { 7 };
        let bed = TestBed::start();
        let built = build_table(rho, rho * fragment_bytes);
        let spec = scatter_spec(rho, 1);
        let writer = bed.client(16);
        let meta = write_table(&writer, &built, &spec).expect("write table");
        // Fail the StoC holding fragment 0: reads of it must reconstruct
        // from the parity block and the ρ−1 survivors.
        bed.fabric.fail_node(NodeId(1));
        let time_reconstruct = |client: &StocClient| {
            let samples: Vec<Duration> = (0..iters)
                .map(|_| {
                    let start = Instant::now();
                    let bytes = read_fragment(client, &meta, 0).expect("degraded read");
                    assert_eq!(bytes.as_ref(), &built.fragments[0][..]);
                    start.elapsed()
                })
                .collect();
            median(samples)
        };
        let serial = time_reconstruct(&bed.client(1));
        let parallel = time_reconstruct(&bed.client(16));
        let speedup = ms(serial) / ms(parallel).max(1e-9);
        print_header(
            "Degraded read: parity reconstruction of one fragment",
            &["rho", "serial ms", "parallel ms", "speedup"],
        );
        print_row(&[
            rho.to_string(),
            format!("{:.2}", ms(serial)),
            format!("{:.2}", ms(parallel)),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"degraded_read\",\"rho\":{rho},\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\"speedup\":{speedup:.3}}}",
            ms(serial),
            ms(parallel)
        ));
        bed.stop();
    }

    // ---- scan readahead ------------------------------------------------
    {
        let rho = 4;
        let bed = TestBed::start();
        let built = build_table(rho, rho * fragment_bytes);
        let spec = scatter_spec(rho, 1);
        let writer = bed.client(16);
        let meta = write_table(&writer, &built, &spec).expect("write table");
        let meta_block = read_meta_block(&writer, &meta).expect("meta block");
        let reader = TableReader::open(&meta_block).expect("open reader");
        let time_scan = |client: &StocClient, readahead: usize| {
            let fetcher = ScatteredBlockFetcher::new(client, &meta);
            let samples: Vec<Duration> = (0..iters)
                .map(|_| {
                    let start = Instant::now();
                    let entries =
                        collect_entries(&mut reader.iter_with_readahead(&fetcher, readahead)).expect("scan");
                    assert_eq!(entries.len() as u64, meta.num_entries);
                    start.elapsed()
                })
                .collect();
            median(samples)
        };
        let on_demand = time_scan(&bed.client(1), 0);
        let prefetched = time_scan(&bed.client(16), 8);
        let speedup = ms(on_demand) / ms(prefetched).max(1e-9);
        print_header(
            "Scan: block readahead through fetch_many",
            &["rho", "on-demand ms", "readahead-8 ms", "speedup"],
        );
        print_row(&[
            rho.to_string(),
            format!("{:.2}", ms(on_demand)),
            format!("{:.2}", ms(prefetched)),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"scan\",\"rho\":{rho},\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\"speedup\":{speedup:.3}}}",
            ms(on_demand),
            ms(prefetched)
        ));
        bed.stop();
    }

    println!("\nflush speedup at rho=4 (scatter-gather vs serial): {speedup_at_4:.2}x");

    let json = format!(
        "{{\"experiment\":\"fig22_scatter_gather\",\"quick\":{quick},\"latency_nanos\":{LATENCY_NANOS},\"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    match std::fs::write("BENCH_scatter.json", &json) {
        Ok(()) => println!("wrote BENCH_scatter.json"),
        Err(e) => eprintln!("could not write BENCH_scatter.json: {e}"),
    }
}
