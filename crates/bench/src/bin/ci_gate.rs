//! CI perf-regression gate.
//!
//! Parses the `BENCH_*.json` files the quick-mode experiment binaries write
//! (`fig22_scatter_gather`, `tab06_migration`, `fig23_group_commit`,
//! `fig24_multi_get`, `fig27_obs_overhead`, `tab07_selfheal`), fails the
//! build if any perf floor is violated, and
//! merges the reports into one `BENCH_trajectory.json` artifact so the perf
//! trajectory of every PR is archived in one place.
//!
//! Floors (quick mode):
//!
//! * scatter-gather flush speedup at ρ=4, single copy: **≥ 2x** vs serial;
//! * migration under load: **0** client-visible errors;
//! * group-commit put speedup at η=3 replicas: **≥ 2x** vs the per-record
//!   serial baseline, **and ≥ 1.5x** vs the per-record-but-parallel-replicas
//!   baseline — the second bound isolates the grouping effect, so a group
//!   commit that silently stopped grouping cannot hide behind the replica
//!   fan-out speedup;
//! * `multi_get` at `stoc_io_parallelism ≥ 4`: **≥ 2x** over the same keys
//!   read with sequential point gets — a multi_get that silently stopped
//!   fanning out runs at ≈1x and trips this;
//! * observability overhead (`fig27_obs_overhead`): the fully instrumented
//!   hot path must stay within **5%** of the same workload with
//!   `MetricsConfig::disabled()`;
//! * self-healing (`tab07_selfheal`): both chaos scenarios (LTC kill, StoC
//!   kill under YCSB load) must lose **zero** acknowledged writes and the
//!   supervisor must restore full health within **15s** — a broken detector,
//!   failover, or re-replication path fails the build, not the pager;
//! * the network front door (`fig25_server`): the remote arm must finish
//!   with **0** client-terminal errors and **0** server-side protocol
//!   errors, and its get p99 must stay within **8x** of the in-process
//!   arm — a malformed frame, a broken retry classification, or a
//!   per-operation stall in the server loop trips this;
//! * secondary indexes (`fig28_secondary`): the indexed point lookup must
//!   beat the full-scan filter by **≥ 5x** at quick scale, and the SL50
//!   secondary-lookup mix must finish with **0** errors — an index scan
//!   that silently fell back to scanning, or a maintenance path that lost
//!   postings, trips this.
//!
//! The floors are deliberately looser than the headline numbers (≈5x, ≈7x)
//! so CI noise cannot flake the gate, while a real regression — a serialized
//! fan-out path, a broken retry protocol, a group commit that stopped
//! grouping — still fails loudly.

use std::process::ExitCode;

const SCATTER_FLOOR: f64 = 2.0;
const RECOVERY_CEILING_MS: f64 = 15_000.0;
const GROUP_COMMIT_FLOOR: f64 = 2.0;
const GROUPING_ISOLATION_FLOOR: f64 = 1.5;
const MULTI_GET_FLOOR: f64 = 2.0;
const OBS_OVERHEAD_CEILING_PCT: f64 = 5.0;
const SERVER_GET_P99_CEILING: f64 = 8.0;
const SECONDARY_LOOKUP_FLOOR: f64 = 5.0;

/// Split the flat row objects out of a `"rows":[{...},{...}]` array. Rows
/// are the flat (no nested braces) objects every bench binary writes.
fn rows(json: &str) -> Vec<&str> {
    let Some(start) = json.find("\"rows\":[") else {
        return Vec::new();
    };
    let body = &json[start + "\"rows\":[".len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let body = &body[..end];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut row_start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    row_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&body[row_start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Extract a numeric field (`"key":12.5`) from a flat JSON object.
fn number(row: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = row.find(&needle)? + needle.len();
    let rest = &row[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// True if the flat JSON object contains the exact `"key":value` pair
/// (string values must include their quotes, e.g. `"\"flush\""`).
fn has(row: &str, key: &str, value: &str) -> bool {
    row.contains(&format!("\"{key}\":{value}"))
}

/// The scatter-gather floor: the ρ=4 single-copy flush row must keep a ≥2x
/// parallel-over-serial speedup.
fn check_scatter(json: &str) -> Result<String, String> {
    let flush_speedup = rows(json)
        .into_iter()
        .filter(|r| has(r, "bench", "\"flush\"") && has(r, "rho", "4") && has(r, "replicas", "1"))
        .filter_map(|r| number(r, "speedup"))
        .fold(None::<f64>, |best, s| Some(best.map_or(s, |b| b.max(s))));
    match flush_speedup {
        Some(s) if s >= SCATTER_FLOOR => Ok(format!(
            "scatter: flush speedup {s:.2}x at rho=4 (floor {SCATTER_FLOOR}x)"
        )),
        Some(s) => Err(format!(
            "scatter: flush speedup {s:.2}x at rho=4 is below the {SCATTER_FLOOR}x floor \
             — the scatter-gather fan-out path has regressed"
        )),
        None => Err("scatter: no flush row at rho=4, replicas=1 found in BENCH_scatter.json".into()),
    }
}

/// The migration floor: zero client-visible errors in every migration row.
fn check_migration(json: &str) -> Result<String, String> {
    let all = rows(json);
    if all.is_empty() {
        return Err("migration: no rows found in BENCH_migration.json".into());
    }
    let mut errors = 0.0;
    for row in &all {
        errors += number(row, "client_errors_during_migration").unwrap_or(f64::NAN);
    }
    if errors.is_nan() {
        return Err("migration: a row lacks the client_errors_during_migration field".into());
    }
    if errors > 0.0 {
        return Err(format!(
            "migration: {errors} client-visible errors during migration — the epoch/retry \
             protocol has regressed"
        ));
    }
    Ok(format!(
        "migration: 0 client-visible errors across {} run(s)",
        all.len()
    ))
}

/// The group-commit floors: at η=3 replicas, the best group-commit
/// configuration must keep a ≥2x put-throughput speedup over the per-record
/// serial baseline, and a ≥1.5x speedup over the per-record baseline with
/// *parallel* replicas — the latter isolates the grouping effect, so a
/// leader that silently stopped coalescing records cannot pass on replica
/// fan-out alone.
fn check_group_commit(json: &str) -> Result<String, String> {
    let grouped: Vec<&str> = rows(json)
        .into_iter()
        .filter(|r| has(r, "replicas", "3") && has(r, "group_commit", "true"))
        .collect();
    let best = |key: &str| {
        grouped
            .iter()
            .filter_map(|r| number(r, key))
            .fold(None::<f64>, |best, s| Some(best.map_or(s, |b| b.max(s))))
    };
    let (vs_serial, vs_parallel) = match (best("speedup"), best("speedup_vs_parallel")) {
        (Some(s), Some(p)) => (s, p),
        _ => {
            return Err(
                "group-commit: no group-commit row at replicas=3 (with speedup and \
                 speedup_vs_parallel) found in BENCH_group_commit.json"
                    .into(),
            )
        }
    };
    if vs_serial < GROUP_COMMIT_FLOOR {
        return Err(format!(
            "group-commit: put speedup {vs_serial:.2}x at eta=3 is below the {GROUP_COMMIT_FLOOR}x \
             floor — the group-commit write path has regressed"
        ));
    }
    if vs_parallel < GROUPING_ISOLATION_FLOOR {
        return Err(format!(
            "group-commit: put speedup {vs_parallel:.2}x over the parallel-replicas baseline at \
             eta=3 is below the {GROUPING_ISOLATION_FLOOR}x floor — records are no longer being \
             coalesced into groups (replica fan-out alone cannot satisfy this bound)"
        ));
    }
    Ok(format!(
        "group-commit: put speedup {vs_serial:.2}x vs serial, {vs_parallel:.2}x vs \
         parallel-replicas at eta=3 (floors {GROUP_COMMIT_FLOOR}x / {GROUPING_ISOLATION_FLOOR}x)"
    ))
}

/// The multi-get floor: every multi_get row at I/O parallelism ≥ 4 must keep
/// a ≥2x speedup over sequential point gets of the same keys. (The
/// parallelism-1 row is the serial baseline and is exempt — it *should* run
/// at ≈1x.)
fn check_multi_get(json: &str) -> Result<String, String> {
    let speedups: Vec<f64> = rows(json)
        .into_iter()
        .filter(|r| has(r, "bench", "\"multi_get\""))
        .filter(|r| number(r, "parallelism").is_some_and(|p| p >= 4.0))
        .filter_map(|r| number(r, "speedup"))
        .collect();
    if speedups.is_empty() {
        return Err("multi_get: no multi_get row at parallelism >= 4 found in BENCH_multi_get.json".into());
    }
    let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    if worst < MULTI_GET_FLOOR {
        return Err(format!(
            "multi_get: speedup {worst:.2}x at parallelism >= 4 is below the {MULTI_GET_FLOOR}x \
             floor — batched reads are no longer fanning out over the I/O pool"
        ));
    }
    Ok(format!(
        "multi_get: speedup >= {worst:.2}x across {} row(s) at parallelism >= 4 \
         (floor {MULTI_GET_FLOOR}x)",
        speedups.len()
    ))
}

/// The observability ceiling: the fully instrumented hot path must stay
/// within 5% of the metrics-disabled build. A single timer that sneaks a
/// lock, a syscall, or an allocation onto the per-operation path shows up
/// here as a double-digit regression.
fn check_obs(json: &str) -> Result<String, String> {
    let overhead = rows(json)
        .into_iter()
        .filter(|r| has(r, "bench", "\"obs_overhead\""))
        .find_map(|r| number(r, "overhead_pct"));
    match overhead {
        Some(pct) if pct <= OBS_OVERHEAD_CEILING_PCT => Ok(format!(
            "obs: instrumentation overhead {pct:.2}% (ceiling {OBS_OVERHEAD_CEILING_PCT}%)"
        )),
        Some(pct) => Err(format!(
            "obs: instrumentation overhead {pct:.2}% exceeds the {OBS_OVERHEAD_CEILING_PCT}% ceiling \
             — a metrics-path change has made the timers expensive"
        )),
        None => Err("obs: no obs_overhead row with overhead_pct found in BENCH_obs.json".into()),
    }
}

/// The self-healing floors: every chaos scenario (LTC kill and StoC kill)
/// must lose **zero** acknowledged writes, and the supervisor must restore
/// full health within the recovery ceiling. A negative `time_to_recover_ms`
/// is the bench reporting that healing never completed — it trips the gate.
fn check_selfheal(json: &str) -> Result<String, String> {
    let all = rows(json);
    for scenario in ["ltc_kill", "stoc_kill"] {
        let Some(row) = all
            .iter()
            .find(|r| has(r, "scenario", &format!("\"{scenario}\"")))
        else {
            return Err(format!(
                "selfheal: no {scenario} row found in BENCH_selfheal.json"
            ));
        };
        let lost = number(row, "lost_acked_writes").unwrap_or(f64::NAN);
        if !(lost == 0.0) {
            return Err(format!(
                "selfheal: {scenario} lost {lost} acknowledged writes — the replicated-log / \
                 failover durability contract has regressed"
            ));
        }
        let recover = number(row, "time_to_recover_ms").unwrap_or(f64::NAN);
        if !(0.0..=RECOVERY_CEILING_MS).contains(&recover) {
            return Err(format!(
                "selfheal: {scenario} time_to_recover_ms={recover} is outside \
                 [0, {RECOVERY_CEILING_MS}] — the supervisor no longer heals the cluster \
                 promptly (negative means healing never completed)"
            ));
        }
    }
    Ok(format!(
        "selfheal: 0 lost acked writes, recovery within {RECOVERY_CEILING_MS}ms across \
         {} scenario(s)",
        all.len()
    ))
}

/// The server floors: both arms of `fig25_server` must finish with zero
/// client-terminal errors, the remote arm must record zero server-side
/// protocol errors, and the remote get p99 must stay within a bounded
/// multiple of the in-process get p99. The ceiling is deliberately loose
/// (loopback adds ~1.1-2x on top of the simulated fabric delay) so CI noise
/// cannot flake it, while a per-operation stall — a lost flush, a lock held
/// across the socket write, a retry loop that stopped terminating — still
/// fails loudly.
fn check_server(json: &str) -> Result<String, String> {
    let all = rows(json);
    for mode in ["in_process", "remote"] {
        let Some(row) = all.iter().find(|r| has(r, "mode", &format!("\"{mode}\""))) else {
            return Err(format!("server: no {mode} row found in BENCH_server.json"));
        };
        let errors = number(row, "errors").unwrap_or(f64::NAN);
        if !(errors == 0.0) {
            return Err(format!(
                "server: the {mode} arm finished with {errors} client-terminal errors — the \
                 wire error taxonomy or the retry classification has regressed"
            ));
        }
        let protocol_errors = number(row, "protocol_errors").unwrap_or(f64::NAN);
        if !(protocol_errors == 0.0) {
            return Err(format!(
                "server: the {mode} arm recorded {protocol_errors} protocol errors — the client \
                 and server no longer agree on the frame format"
            ));
        }
    }
    let ratio = all
        .iter()
        .find(|r| has(r, "bench", "\"server_overhead\""))
        .and_then(|r| number(r, "get_p99_ratio"));
    match ratio {
        Some(r) if r <= SERVER_GET_P99_CEILING => Ok(format!(
            "server: 0 errors, remote get p99 {r:.2}x in-process (ceiling {SERVER_GET_P99_CEILING}x)"
        )),
        Some(r) => Err(format!(
            "server: remote get p99 is {r:.2}x the in-process p99, past the \
             {SERVER_GET_P99_CEILING}x ceiling — the wire protocol or server loop has a \
             per-operation stall"
        )),
        None => Err("server: no server_overhead row with get_p99_ratio found in BENCH_server.json".into()),
    }
}

/// The secondary-index floors: the indexed point lookup must beat the
/// full-scan filter by the floor multiple, and the SL50 mix (secondary
/// lookups through the maintained index under concurrent writes) must
/// finish with zero errors.
fn check_secondary(json: &str) -> Result<String, String> {
    let all = rows(json);
    let speedup = all
        .iter()
        .find(|r| has(r, "bench", "\"secondary_lookup\""))
        .and_then(|r| number(r, "speedup"));
    let speedup = match speedup {
        Some(s) => s,
        None => {
            return Err(
                "secondary: no secondary_lookup row with speedup found in BENCH_secondary.json".into(),
            )
        }
    };
    if speedup < SECONDARY_LOOKUP_FLOOR {
        return Err(format!(
            "secondary: indexed lookup speedup {speedup:.2}x over the full-scan filter is below \
             the {SECONDARY_LOOKUP_FLOOR}x floor — the index scan path has regressed to scanning"
        ));
    }
    let Some(mix) = all.iter().find(|r| has(r, "bench", "\"sl50_mix\"")) else {
        return Err("secondary: no sl50_mix row found in BENCH_secondary.json".into());
    };
    let errors = number(mix, "errors").unwrap_or(f64::NAN);
    if !(errors == 0.0) {
        return Err(format!(
            "secondary: the SL50 mix finished with {errors} errors — index maintenance or the \
             lookup retry protocol has regressed"
        ));
    }
    Ok(format!(
        "secondary: indexed lookup {speedup:.2}x vs full scan (floor {SECONDARY_LOOKUP_FLOOR}x), \
         SL50 mix 0 errors"
    ))
}

fn main() -> ExitCode {
    // (section, report file, producing command, floor check) — the command
    // is printed verbatim when the file is missing, so a failed gate tells
    // the reader exactly what to run instead of "run the benches".
    let inputs = [
        (
            "scatter",
            "BENCH_scatter.json",
            "cargo run --release -p nova-bench --bin fig22_scatter_gather -- --quick",
            check_scatter as fn(&str) -> Result<String, String>,
        ),
        (
            "migration",
            "BENCH_migration.json",
            "cargo run --release -p nova-bench --bin tab06_migration -- --quick",
            check_migration,
        ),
        (
            "group_commit",
            "BENCH_group_commit.json",
            "cargo run --release -p nova-bench --bin fig23_group_commit -- --quick",
            check_group_commit,
        ),
        (
            "multi_get",
            "BENCH_multi_get.json",
            "cargo run --release -p nova-bench --bin fig24_multi_get -- --quick",
            check_multi_get,
        ),
        (
            "obs",
            "BENCH_obs.json",
            "cargo run --release -p nova-bench --bin fig27_obs_overhead -- --quick",
            check_obs,
        ),
        (
            "selfheal",
            "BENCH_selfheal.json",
            "cargo run --release -p nova-bench --bin tab07_selfheal -- --quick",
            check_selfheal,
        ),
        (
            "server",
            "BENCH_server.json",
            "cargo run --release -p nova-bench --bin fig25_server -- --quick",
            check_server,
        ),
        (
            "secondary",
            "BENCH_secondary.json",
            "cargo run --release -p nova-bench --bin fig28_secondary -- --quick",
            check_secondary,
        ),
    ];
    let mut merged: Vec<String> = Vec::new();
    let mut failures = 0u32;
    for (name, path, producer, check) in inputs {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ci_gate: FAIL missing {path} ({e}) — produce it with:\n    {producer}");
                failures += 1;
                continue;
            }
        };
        match check(&content) {
            Ok(summary) => println!("ci_gate: OK   {summary}"),
            Err(violation) => {
                eprintln!("ci_gate: FAIL {violation}");
                failures += 1;
            }
        }
        merged.push(format!("\"{name}\":{}", content.trim_end()));
    }

    // Merge whatever was readable into one trajectory artifact, even on
    // failure — the artifact is how a regression gets diagnosed.
    let trajectory = format!("{{{}}}\n", merged.join(","));
    match std::fs::write("BENCH_trajectory.json", &trajectory) {
        Ok(()) => println!("ci_gate: wrote BENCH_trajectory.json"),
        Err(e) => eprintln!("ci_gate: could not write BENCH_trajectory.json: {e}"),
    }

    if failures > 0 {
        eprintln!("ci_gate: {failures} floor violation(s)");
        ExitCode::FAILURE
    } else {
        println!("ci_gate: all perf floors hold");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCATTER: &str = r#"{"experiment":"fig22_scatter_gather","quick":true,"rows":[
        {"bench":"flush","rho":4,"replicas":1,"serial_ms":10.0,"parallel_ms":2.0,"speedup":5.000},
        {"bench":"flush","rho":4,"replicas":3,"serial_ms":30.0,"parallel_ms":5.0,"speedup":6.000},
        {"bench":"scan","rho":4,"serial_ms":8.0,"parallel_ms":2.0,"speedup":4.000}]}"#;

    const MIGRATION: &str = r#"{"experiment":"tab06_migration","rows":[
        {"workload":"W100","migration_ms":12.0,"client_errors_during_migration":0,"retries":4}]}"#;

    const GROUP: &str = r#"{"experiment":"fig23_group_commit","rows":[
        {"bench":"put","replicas":1,"mode":"serial","group_commit":false,"batch_size":1,"kops":17.0,"speedup":1.000,"speedup_vs_parallel":1.000},
        {"bench":"put","replicas":3,"mode":"serial","group_commit":false,"batch_size":1,"kops":5.0,"speedup":1.000,"speedup_vs_parallel":0.600},
        {"bench":"put","replicas":3,"mode":"parallel-replicas","group_commit":false,"batch_size":1,"kops":9.0,"speedup":1.500,"speedup_vs_parallel":1.000},
        {"bench":"put","replicas":3,"mode":"group","group_commit":true,"batch_size":1,"kops":13.0,"speedup":2.400,"speedup_vs_parallel":1.540},
        {"bench":"put","replicas":3,"mode":"group+batch","group_commit":true,"batch_size":16,"kops":40.0,"speedup":7.100,"speedup_vs_parallel":4.300}]}"#;

    const OBS: &str = r#"{"experiment":"fig27_obs_overhead","trials":5,"rows":[
        {"bench":"obs_overhead","enabled_kops":310.0,"disabled_kops":318.0,"overhead_pct":2.580,"p50_micros":11,"p99_micros":93,"slow_ops":0}]}"#;

    const MULTI_GET: &str = r#"{"experiment":"fig24_multi_get","rows":[
        {"bench":"multi_get","parallelism":1,"reads":512,"batch":64,"seq_ms":280.0,"multi_ms":255.0,"speedup":1.100},
        {"bench":"multi_get","parallelism":4,"reads":512,"batch":64,"seq_ms":285.0,"multi_ms":80.0,"speedup":3.560},
        {"bench":"multi_get","parallelism":8,"reads":512,"batch":64,"seq_ms":286.0,"multi_ms":52.0,"speedup":5.500},
        {"bench":"scan_cursor","readahead":"auto","entries":4000,"ms":140.0,"kentries_per_sec":28.5}]}"#;

    const SELFHEAL: &str = r#"{"experiment":"tab07_selfheal","quick":true,"rows":[
        {"scenario":"ltc_kill","before_kops":8.0,"during_kops":5.0,"after_kops":7.0,"time_to_detect_ms":110.0,"time_to_recover_ms":340.0,"lost_acked_writes":0,"acked_keys_audited":128,"client_errors_during":13,"failovers":1,"stoc_drains":0},
        {"scenario":"stoc_kill","before_kops":8.0,"during_kops":6.0,"after_kops":7.0,"time_to_detect_ms":90.0,"time_to_recover_ms":750.0,"lost_acked_writes":0,"acked_keys_audited":128,"client_errors_during":40,"failovers":0,"stoc_drains":1}]}"#;

    const SERVER: &str = r#"{"experiment":"fig25_server","quick":true,"rows":[
        {"bench":"server","mode":"in_process","kops":22.6,"operations":45262,"errors":0,"protocol_errors":0,"get_p50_micros":4.7,"get_p99_micros":1341.7,"put_p50_micros":2.3,"put_p99_micros":1610.1},
        {"bench":"server","mode":"remote","kops":15.8,"operations":35489,"errors":0,"protocol_errors":0,"get_p50_micros":150.5,"get_p99_micros":1610.1,"put_p50_micros":50.4,"put_p99_micros":1118.1},
        {"bench":"server_overhead","get_p99_ratio":1.200,"kops_ratio":0.697}]}"#;

    const SECONDARY: &str = r#"{"experiment":"fig28_secondary","quick":true,"num_categories":100,"rows":[
        {"bench":"index_write_overhead","records":4000,"baseline_ms":16.0,"indexed_ms":31.0,"overhead":1.940},
        {"bench":"secondary_lookup","records":4000,"rows_per_category":40,"indexed_ms":3.7,"scan_ms":36.3,"speedup":9.810},
        {"bench":"sl50_mix","operations":2000,"errors":0,"throughput_ops_per_sec":1000.0}]}"#;

    #[test]
    fn secondary_floors_hold_and_trip() {
        assert!(check_secondary(SECONDARY).is_ok());
        // A lookup path that regressed toward scanning trips the floor.
        let slow = SECONDARY.replace("\"speedup\":9.810", "\"speedup\":2.100");
        assert!(check_secondary(&slow).is_err());
        // A single SL50 error trips the gate.
        let lossy = SECONDARY.replace("\"errors\":0", "\"errors\":4");
        assert!(check_secondary(&lossy).is_err());
        // Both rows are mandatory; missing ones fail loudly.
        let no_mix = SECONDARY.replace("\"bench\":\"sl50_mix\"", "\"bench\":\"other\"");
        assert!(check_secondary(&no_mix).is_err());
        assert!(check_secondary("{\"rows\":[]}").is_err());
        // A mix row lacking the errors field fails loudly instead of passing.
        let missing = SECONDARY.replace("\"errors\":0", "\"x\":0");
        assert!(check_secondary(&missing).is_err());
    }

    #[test]
    fn server_floors_hold_and_trip() {
        assert!(check_server(SERVER).is_ok());
        // A single client-terminal error in either arm trips the gate.
        let erring = SERVER.replacen("\"errors\":0", "\"errors\":2", 1);
        assert!(check_server(&erring).is_err());
        // So does any server-side protocol error.
        let garbled = SERVER.replace(
            "\"mode\":\"remote\",\"kops\":15.8,\"operations\":35489,\"errors\":0,\"protocol_errors\":0",
            "\"mode\":\"remote\",\"kops\":15.8,\"operations\":35489,\"errors\":0,\"protocol_errors\":3",
        );
        assert!(check_server(&garbled).is_err());
        // A remote get p99 past the bounded multiple trips it.
        let slow = SERVER.replace("\"get_p99_ratio\":1.200", "\"get_p99_ratio\":11.000");
        assert!(check_server(&slow).is_err());
        // Both arms are mandatory; a missing one fails loudly.
        let only_remote = SERVER.replace("\"mode\":\"in_process\"", "\"mode\":\"other\"");
        assert!(check_server(&only_remote).is_err());
        assert!(check_server("{\"rows\":[]}").is_err());
        // Rows missing the error fields fail loudly instead of passing.
        let missing = SERVER.replacen("\"errors\":0", "\"x\":0", 1);
        assert!(check_server(&missing).is_err());
    }

    #[test]
    fn selfheal_floors_hold_and_trip() {
        assert!(check_selfheal(SELFHEAL).is_ok());
        // A single lost acknowledged write trips the gate.
        let lossy = SELFHEAL.replacen("\"lost_acked_writes\":0", "\"lost_acked_writes\":1", 1);
        assert!(check_selfheal(&lossy).is_err());
        // Recovery past the ceiling trips it.
        let slow = SELFHEAL.replace("\"time_to_recover_ms\":750.0", "\"time_to_recover_ms\":16000.0");
        assert!(check_selfheal(&slow).is_err());
        // The bench reports -1 when healing never completed — that trips too.
        let stuck = SELFHEAL.replace("\"time_to_recover_ms\":340.0", "\"time_to_recover_ms\":-1.000");
        assert!(check_selfheal(&stuck).is_err());
        // Both scenarios are mandatory; a missing one fails loudly.
        let only_ltc = SELFHEAL.replace("\"scenario\":\"stoc_kill\"", "\"scenario\":\"other\"");
        assert!(check_selfheal(&only_ltc).is_err());
        assert!(check_selfheal("{\"rows\":[]}").is_err());
        // A row lacking the lost-writes field fails loudly instead of passing.
        let missing = SELFHEAL.replacen("\"lost_acked_writes\":0", "\"x\":0", 1);
        assert!(check_selfheal(&missing).is_err());
    }

    #[test]
    fn multi_get_floor_holds_and_trips() {
        assert!(check_multi_get(MULTI_GET).is_ok());
        // The serial (parallelism 1) row running at ~1x never trips the
        // floor — it is the baseline.
        let slow_serial = MULTI_GET.replace("\"speedup\":1.100", "\"speedup\":0.900");
        assert!(check_multi_get(&slow_serial).is_ok());
        // A fanned-out row regressing below 2x trips it.
        let regressed = MULTI_GET.replace("\"speedup\":3.560", "\"speedup\":1.300");
        assert!(check_multi_get(&regressed).is_err());
        // Missing rows fail loudly instead of passing.
        assert!(check_multi_get("{\"rows\":[]}").is_err());
        let only_scan = r#"{"rows":[{"bench":"scan_cursor","readahead":"auto","entries":10,"ms":1.0}]}"#;
        assert!(check_multi_get(only_scan).is_err());
    }

    #[test]
    fn obs_ceiling_holds_and_trips() {
        assert!(check_obs(OBS).is_ok());
        // A negative overhead (noise put the disabled arm behind) passes.
        let noisy = OBS.replace("\"overhead_pct\":2.580", "\"overhead_pct\":-0.700");
        assert!(check_obs(&noisy).is_ok());
        // Instrumentation past the ceiling trips.
        let slow = OBS.replace("\"overhead_pct\":2.580", "\"overhead_pct\":8.100");
        assert!(check_obs(&slow).is_err());
        // Missing rows fail loudly instead of passing.
        assert!(check_obs("{\"rows\":[]}").is_err());
    }

    #[test]
    fn row_splitting_and_field_extraction() {
        let all = rows(SCATTER);
        assert_eq!(all.len(), 3);
        assert_eq!(number(all[0], "speedup"), Some(5.0));
        assert_eq!(number(all[0], "rho"), Some(4.0));
        assert!(has(all[0], "bench", "\"flush\""));
        assert!(!has(all[2], "bench", "\"flush\""));
        assert!(rows("{\"no\":\"rows\"}").is_empty());
        assert_eq!(number(all[0], "missing"), None);
    }

    #[test]
    fn scatter_floor_holds_and_trips() {
        assert!(check_scatter(SCATTER).is_ok());
        let slow = SCATTER.replace("\"speedup\":5.000", "\"speedup\":1.400");
        assert!(check_scatter(&slow).is_err());
        assert!(check_scatter("{\"rows\":[]}").is_err());
    }

    #[test]
    fn migration_floor_holds_and_trips() {
        assert!(check_migration(MIGRATION).is_ok());
        let broken = MIGRATION.replace(
            "\"client_errors_during_migration\":0",
            "\"client_errors_during_migration\":3",
        );
        assert!(check_migration(&broken).is_err());
        assert!(check_migration("{\"rows\":[]}").is_err());
    }

    #[test]
    fn group_commit_floor_takes_the_best_grouped_row() {
        assert!(check_group_commit(GROUP).is_ok());
        // Even if batching regresses, a healthy group-only row keeps the
        // gate green — and vice versa the floor trips only when *every*
        // grouped configuration is slow.
        let all_slow = GROUP
            .replace("\"speedup\":2.400", "\"speedup\":1.100")
            .replace("\"speedup\":7.100", "\"speedup\":1.300");
        assert!(check_group_commit(&all_slow).is_err());
        // The serial baseline row (speedup 1.0) never satisfies the floor.
        let only_serial =
            r#"{"rows":[{"replicas":3,"group_commit":false,"speedup":1.000,"speedup_vs_parallel":0.6}]}"#;
        assert!(check_group_commit(only_serial).is_err());
    }

    #[test]
    fn grouping_isolation_floor_catches_a_group_commit_that_stopped_grouping() {
        // Replica fan-out alone can deliver ~3x over the fully serial
        // baseline at eta=3 — the vs-serial floor would stay green. The
        // isolation floor compares against the parallel-replicas baseline,
        // where lost grouping shows as ~1x, and must trip.
        let no_grouping = GROUP
            .replace("\"speedup_vs_parallel\":1.540", "\"speedup_vs_parallel\":1.010")
            .replace("\"speedup_vs_parallel\":4.300", "\"speedup_vs_parallel\":1.050");
        assert!(check_group_commit(&no_grouping).is_err());
        // Rows missing the isolation field fail loudly instead of passing.
        let missing = GROUP
            .replace("\"speedup_vs_parallel\":1.540", "\"x\":1.540")
            .replace("\"speedup_vs_parallel\":4.300", "\"x\":4.300");
        assert!(check_group_commit(&missing).is_err());
    }
}
