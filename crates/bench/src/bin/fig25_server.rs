//! Figure 25 (repo extension): the network front door's overhead — the same
//! YCSB workload driven through the in-process [`NovaClient`] vs remotely
//! through `nova-server` over the framed wire protocol.
//!
//! Both arms run an identical cluster (simulated fabric delay on, block
//! cache off, data flushed to SSTables) so every get pays the simulated
//! StoC round trip; the remote arm additionally pays a loopback TCP round
//! trip plus frame encode/decode per operation. Because reads dominate the
//! measured latency (~2x the fabric one-way delay), the wire protocol's
//! overhead shows up as a bounded multiplier on get p99 — that multiplier,
//! plus "zero protocol errors" and "zero client-terminal errors", is what
//! `ci_gate` enforces from `BENCH_server.json`.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale, StoreHandle};
use nova_common::config::{CacheConfig, ClusterConfig, DiskConfig, FabricConfig};
use nova_lsm::presets;
use nova_server::{NovaServer, RemoteClient};
use nova_ycsb::{Distribution, Mix, RunReport, Workload};

/// One-way verb latency for the simulated fabric: large enough that the
/// storage round trip — not the loopback socket — dominates read latency,
/// as it would in the paper's disaggregated deployment.
const LATENCY_NANOS: u64 = 100_000;

/// The cluster both arms run: fabric delay simulated, block cache off,
/// accounting-only disk (no disk-model noise in the comparison).
fn cluster_config(scale: &BenchScale) -> ClusterConfig {
    let mut config = presets::test_cluster(1, 2, scale.num_keys);
    config.ranges_per_ltc = 4;
    config.fabric = FabricConfig {
        latency_nanos: LATENCY_NANOS,
        simulate_delay: true,
        ..FabricConfig::default()
    };
    config.block_cache = CacheConfig::disabled();
    config
}

/// Start a pre-loaded, flushed store so measured gets hit SSTables.
fn start_store(scale: &BenchScale, listen: Option<&str>) -> StoreHandle {
    let mut config = cluster_config(scale);
    if let Some(addr) = listen {
        config.server.listen_addr = addr.to_string();
    }
    let store = nova_store(config, scale);
    store.nova().expect("nova store").flush_all().expect("flush");
    store
}

fn row_json(mode: &str, report: &RunReport, protocol_errors: u64) -> String {
    format!(
        "{{\"bench\":\"server\",\"mode\":\"{mode}\",\"kops\":{:.3},\"operations\":{},\
         \"errors\":{},\"protocol_errors\":{protocol_errors},\
         \"get_p50_micros\":{:.1},\"get_p99_micros\":{:.1},\
         \"put_p50_micros\":{:.1},\"put_p99_micros\":{:.1}}}",
        report.throughput_kops(),
        report.operations,
        report.errors,
        report.gets.percentile_micros(50.0),
        report.gets.percentile_micros(99.0),
        report.puts.percentile_micros(50.0),
        report.puts.percentile_micros(99.0),
    )
}

fn print_report(mode: &str, report: &RunReport, protocol_errors: u64) {
    print_row(&[
        mode.to_string(),
        format!("{:.1}", report.throughput_kops()),
        format!("{:.0}", report.gets.percentile_micros(50.0)),
        format!("{:.0}", report.gets.percentile_micros(99.0)),
        format!("{:.0}", report.puts.percentile_micros(99.0)),
        report.errors.to_string(),
        protocol_errors.to_string(),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut scale = BenchScale::from_args();
    // The comparison isolates protocol overhead, not the disk model.
    scale.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };

    print_header(
        &format!(
            "Figure 25: wire-protocol overhead, YCSB RW50/uniform, {} threads, {}s",
            scale.threads, scale.run_secs
        ),
        &[
            "mode",
            "kops",
            "get p50us",
            "get p99us",
            "put p99us",
            "errors",
            "proto errs",
        ],
    );

    // Arm 1: in-process NovaClient (the ceiling).
    let store = start_store(&scale, None);
    let local = run_workload(&store, Mix::Rw50, Distribution::Uniform, &scale);
    print_report("in_process", &local, 0);
    store.shutdown();

    // Arm 2: the same driver over RemoteClient -> nova-server -> NovaClient.
    let store = start_store(&scale, Some("127.0.0.1:0"));
    let cluster = store.nova().expect("nova store").clone();
    let mut server = NovaServer::start(cluster.clone(), &cluster.config().server).expect("start server");
    let remote_client =
        RemoteClient::connect(&server.local_addr().to_string()).expect("connect to nova-server");
    let workload = Workload::new(Mix::Rw50, Distribution::Uniform, scale.num_keys, scale.value_size);
    let remote = nova_ycsb::run(&remote_client, &workload, &scale.driver());
    let protocol_errors = cluster.metrics().counter("server.protocol_errors").get();
    print_report("remote", &remote, protocol_errors);
    drop(remote_client);
    server.shutdown();
    store.shutdown();

    let get_p99_ratio = remote.gets.percentile_micros(99.0) / local.gets.percentile_micros(99.0).max(1e-9);
    let kops_ratio = remote.throughput_kops() / local.throughput_kops().max(1e-9);
    println!("\nremote/in-process: get p99 ratio {get_p99_ratio:.2}x, throughput ratio {kops_ratio:.2}x");

    let json = format!(
        "{{\"experiment\":\"fig25_server\",\"quick\":{quick},\"latency_nanos\":{LATENCY_NANOS},\
         \"rows\":[{},{},{{\"bench\":\"server_overhead\",\"get_p99_ratio\":{get_p99_ratio:.3},\
         \"kops_ratio\":{kops_ratio:.3}}}]}}\n",
        row_json("in_process", &local, 0),
        row_json("remote", &remote, protocol_errors),
    );
    match std::fs::write("BENCH_server.json", &json) {
        Ok(()) => println!("wrote BENCH_server.json"),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}"),
    }
}
