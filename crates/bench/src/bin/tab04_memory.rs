//! Table 4: vertical scalability — W100 Uniform throughput as the memory
//! budget (α, δ and therefore δ×τ) doubles from 2 memtables up to 256.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Table 4: throughput of W100 Uniform vs memory (η=1, β=10, ρ=1)",
        &["memory", "alpha", "delta", "ops/s"],
    );
    // (α, δ) pairs from the paper's table; memory = δ × τ.
    for (alpha, delta) in [
        (1usize, 2usize),
        (2, 4),
        (4, 8),
        (8, 16),
        (16, 32),
        (32, 64),
        (64, 128),
        (64, 256),
    ] {
        let mut config = presets::shared_disk(1, 10, 1, scale.num_keys);
        config.range.active_memtables = alpha;
        config.range.num_dranges = alpha;
        config.range.max_memtables = delta;
        let store = nova_store(config.clone(), &scale);
        let report = run_workload(&store, Mix::W100, Distribution::Uniform, &scale);
        store.shutdown();
        let memory = delta * config.range.memtable_size_bytes;
        print_row(&[
            format!("{} KB", memory / 1024),
            alpha.to_string(),
            delta.to_string(),
            format!("{:.0}", report.throughput_ops_per_sec()),
        ]);
    }
}
