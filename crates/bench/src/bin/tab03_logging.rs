//! Section 8.2.3: the overhead of logging. Compares logging disabled,
//! in-memory replication over the (simulated) RDMA fabric, and persistent
//! logging that involves the StoC disks, on W100.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::LogPolicy;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let policies: [(&str, LogPolicy); 3] = [
        ("disabled", LogPolicy::Disabled),
        ("RDMA 3 replicas", LogPolicy::InMemoryReplicated { replicas: 3 }),
        ("persistent", LogPolicy::Persistent),
    ];
    print_header(
        "Section 8.2.3: logging overhead (W100, η=1, β=10, ρ=1)",
        &["logging", "distribution", "kops", "avg put ms"],
    );
    for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
        for (label, policy) in policies {
            let mut config = presets::shared_disk(1, 10, 1, scale.num_keys);
            config.range.log_policy = policy;
            let store = nova_store(config, &scale);
            let report = run_workload(&store, Mix::W100, dist, &scale);
            store.shutdown();
            print_row(&[
                label.to_string(),
                dist.label(),
                format!("{:.1}", report.throughput_kops()),
                format!("{:.3}", report.puts.mean_micros() / 1000.0),
            ]);
        }
    }
}
