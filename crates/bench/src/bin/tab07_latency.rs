//! Table 7: average / p95 / p99 response times under a low load with Zipfian
//! access, for R100 / RW50 / SW50 / W100, Nova-LSM vs the sharded baselines.

use nova_baseline::BaselineKind;
use nova_bench::{baseline_store, nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let mut scale = BenchScale::from_args();
    // "These experiments quantify response time with a low system load":
    // a handful of client threads.
    scale.threads = 2;
    let memtable_bytes = presets::scaled_experiment(scale.num_keys)
        .range
        .memtable_size_bytes;
    print_header(
        "Table 7: response time (ms) with Zipfian, low load, 10 servers",
        &["workload", "system", "avg", "p95", "p99"],
    );
    for mix in [Mix::R100, Mix::Rw50, Mix::Sw50, Mix::W100] {
        for system in ["LevelDB*", "RocksDB*", "Nova-LSM"] {
            let store = match system {
                "LevelDB*" => baseline_store(BaselineKind::LevelDbStar, 10, memtable_bytes, &scale),
                "RocksDB*" => baseline_store(BaselineKind::RocksDbStar, 10, memtable_bytes, &scale),
                _ => nova_store(presets::shared_disk(10, 10, 3, scale.num_keys), &scale),
            };
            let report = run_workload(&store, mix, Distribution::zipfian_default(), &scale);
            store.shutdown();
            let all = report.all_operations();
            print_row(&[
                mix.label().to_string(),
                system.to_string(),
                format!("{:.2}", all.mean_micros() / 1000.0),
                format!("{:.2}", all.percentile_micros(95.0) / 1000.0),
                format!("{:.2}", all.percentile_micros(99.0) / 1000.0),
            ]);
        }
    }
}
