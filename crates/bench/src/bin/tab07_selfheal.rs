//! Self-healing under fire (Section 10's failure model, closed loop): kill a
//! node in the middle of a YCSB run and report how long the failure detector
//! takes to confirm it (time-to-detect), how long the supervisor takes to
//! restore full health (time-to-recover), the throughput dip, and — the
//! headline number — that **zero acknowledged writes are lost**.
//!
//! Two scenarios, each against a fresh replicated cluster with the
//! supervisor enabled:
//!
//! * `ltc_kill` — an LTC's node dies; the detector confirms it and the
//!   supervisor replays the replicated log records into a surviving LTC
//!   (`fail_and_recover_ltc`), with no operator call.
//! * `stoc_kill` — a StoC's node dies; the supervisor drains it from
//!   placement and re-replicates the missing fragments/meta blocks onto the
//!   surviving StoCs until the replication debt reaches zero.
//!
//! Alongside the YCSB driver, two dedicated writer threads hammer a reserved
//! key tail recording every *acknowledged* put; after recovery each acked
//! key must read back at least its last acked sequence number. Results are
//! written to `BENCH_selfheal.json`; `ci_gate` enforces zero lost acked
//! writes and a bounded time-to-recover.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::{AvailabilityPolicy, LogPolicy};
use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};
use nova_ycsb::{Distribution, Mix};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Keys at the top of the keyspace reserved for the acked-writes audit; the
/// YCSB driver runs against a workload capped below them so driver writes
/// can never clobber an audited value.
const AUDIT_KEYS: u64 = 128;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    LtcKill,
    StocKill,
}

impl Scenario {
    fn label(self) -> &'static str {
        match self {
            Scenario::LtcKill => "ltc_kill",
            Scenario::StocKill => "stoc_kill",
        }
    }
}

/// Poll `done` every 5ms until it returns true or the deadline passes.
fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

/// Overwrite `keys` round-robin with monotonically increasing sequence
/// numbers until `stop`, recording the last *acknowledged* sequence per key.
/// Errors are tolerated — an errored put was never acked to the caller.
fn acked_writer(client: &NovaClient, keys: std::ops::Range<u64>, stop: &AtomicBool) -> HashMap<u64, u64> {
    let mut acked = HashMap::new();
    let mut seq = 0u64;
    while !stop.load(Ordering::Relaxed) {
        for key in keys.clone() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            seq += 1;
            let value = format!("{seq:020}");
            if client.put(&encode_key(key), value.as_bytes()).is_ok() {
                acked.insert(key, seq);
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    acked
}

/// Count audited keys whose read-back sequence is below the last acked one —
/// every such key is a lost acknowledged write.
fn lost_acked_writes(client: &NovaClient, acked: &HashMap<u64, u64>) -> u64 {
    let mut lost = 0;
    for (&key, &seq) in acked {
        let read_seq = client
            .get(&encode_key(key))
            .ok()
            .flatten()
            .and_then(|v| {
                let s = std::str::from_utf8(&v).ok()?;
                let trimmed = s.trim_start_matches('0');
                if trimmed.is_empty() {
                    Some(0)
                } else {
                    trimmed.parse().ok()
                }
            })
            .unwrap_or(0);
        if read_seq < seq {
            lost += 1;
        }
    }
    lost
}

fn run_scenario(scenario: Scenario, scale: &BenchScale) -> String {
    let mut config = presets::shared_disk(2, 4, 2, scale.num_keys);
    config.range.scatter_width = 2;
    config.range.availability = AvailabilityPolicy::Replicate(2);
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
    config.supervisor.enabled = true;
    config.supervisor.heartbeat_millis = 5;
    let store = nova_store(config, scale);
    let cluster: &std::sync::Arc<NovaCluster> = store.nova().expect("nova store");
    let client = store.nova_client().expect("nova client");

    // The driver's workload stays below the audited key tail.
    let driver_scale = BenchScale {
        num_keys: scale.num_keys - AUDIT_KEYS,
        ..*scale
    };
    let mix = Mix::W100;
    let before = run_workload(&store, mix, Distribution::Uniform, &driver_scale);

    let victim_node = match scenario {
        Scenario::LtcKill => cluster.ltc_node(cluster.ltc_ids()[0]).unwrap(),
        Scenario::StocKill => cluster.stoc_node(*cluster.stoc_ids().last().unwrap()).unwrap(),
    };
    let victim_stoc = cluster.stoc_ids().last().copied();
    let base = cluster.selfheal_stats();

    let stop = AtomicBool::new(false);
    let audit_base = scale.num_keys - AUDIT_KEYS;
    let stop = &stop;
    let (during, acked, healed, recover_wall_ms) = std::thread::scope(|scope| {
        let driver = scope.spawn(|| run_workload(&store, mix, Distribution::Uniform, &driver_scale));
        let mid = audit_base + AUDIT_KEYS / 2;
        let w1 = scope.spawn(move || acked_writer(client, audit_base..mid, stop));
        let w2 = scope.spawn(move || acked_writer(client, mid..scale.num_keys, stop));

        // Let the run reach steady state, then pull the plug.
        std::thread::sleep(Duration::from_millis(driver_scale.run_secs * 1000 / 4));
        let kill = Instant::now();
        cluster.fabric().fail_node(victim_node);
        let healed = wait_until(Duration::from_secs(15), || {
            let stats = cluster.selfheal_stats();
            match scenario {
                Scenario::LtcKill => stats.failovers > base.failovers && stats.pending_failovers == 0,
                Scenario::StocKill => {
                    stats.stoc_drains > base.stoc_drains && cluster.replication_debt().is_zero()
                }
            }
        });
        let recover_wall_ms = kill.elapsed().as_secs_f64() * 1e3;

        let during = driver.join().expect("driver thread panicked");
        stop.store(true, Ordering::Relaxed);
        let mut acked = w1.join().expect("writer thread panicked");
        acked.extend(w2.join().expect("writer thread panicked"));
        (during, acked, healed, recover_wall_ms)
    });

    // Restore the fleet before the recovered-state measurement: a
    // replacement LTC joins, or the repaired StoC's node comes back and the
    // supervisor rejoins it.
    match scenario {
        Scenario::LtcKill => {
            cluster.add_ltc().expect("replacement LTC joins");
        }
        Scenario::StocKill => {
            cluster.fabric().recover_node(victim_node);
            wait_until(Duration::from_secs(15), || {
                victim_stoc.is_some_and(|s| cluster.stoc_ids().contains(&s))
            });
        }
    }
    let after = run_workload(&store, mix, Distribution::Uniform, &driver_scale);

    let lost = lost_acked_writes(client, &acked);
    let stats = cluster.selfheal_stats();
    let gauges = cluster.metrics_snapshot().gauges;
    let detect_ms = gauges
        .get("selfheal.last_time_to_detect_micros")
        .map_or(-1.0, |&v| v as f64 / 1e3);
    let recover_ms = if !healed {
        -1.0
    } else {
        match scenario {
            Scenario::LtcKill => gauges
                .get("selfheal.last_time_to_recover_micros")
                .map_or(recover_wall_ms, |&v| v as f64 / 1e3),
            Scenario::StocKill => recover_wall_ms,
        }
    };
    store.shutdown();

    print_row(&[
        scenario.label().to_string(),
        format!("{:.1}", before.throughput_kops()),
        format!("{:.1}", during.throughput_kops()),
        format!("{:.1}", after.throughput_kops()),
        format!("{detect_ms:.1}"),
        format!("{recover_ms:.1}"),
        lost.to_string(),
        acked.len().to_string(),
        during.errors.to_string(),
        format!("{}+{}", stats.repaired_fragments, stats.repaired_meta_blocks),
    ]);
    if lost > 0 {
        eprintln!(
            "WARNING: {lost} acknowledged writes lost in {} — the replicated-log/failover \
             contract has regressed",
            scenario.label()
        );
    }
    format!(
        "{{\"scenario\":\"{}\",\"before_kops\":{:.3},\"during_kops\":{:.3},\"after_kops\":{:.3},\
         \"time_to_detect_ms\":{detect_ms:.3},\"time_to_recover_ms\":{recover_ms:.3},\
         \"lost_acked_writes\":{lost},\"acked_keys_audited\":{},\"client_errors_during\":{},\
         \"failovers\":{},\"stoc_drains\":{},\"repaired_fragments\":{},\
         \"repaired_meta_blocks\":{},\"repaired_bytes\":{},\"deferred_repairs\":{}}}",
        scenario.label(),
        before.throughput_kops(),
        during.throughput_kops(),
        after.throughput_kops(),
        acked.len(),
        during.errors,
        stats.failovers,
        stats.stoc_drains,
        stats.repaired_fragments,
        stats.repaired_meta_blocks,
        stats.repaired_bytes,
        stats.deferred_repairs,
    )
}

fn main() {
    let scale = BenchScale::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    print_header(
        "Table 7b: self-healing under node kills (η=2, β=4, supervisor on)",
        &[
            "scenario",
            "before kops",
            "during kops",
            "after kops",
            "detect ms",
            "recover ms",
            "lost acked",
            "keys audited",
            "client errors",
            "repaired frag+meta",
        ],
    );
    let rows: Vec<String> = [Scenario::LtcKill, Scenario::StocKill]
        .into_iter()
        .map(|s| run_scenario(s, &scale))
        .collect();
    let json = format!(
        "{{\"experiment\":\"tab07_selfheal\",\"quick\":{quick},\"rows\":[{}]}}\n",
        rows.join(",")
    );
    match std::fs::write("BENCH_selfheal.json", &json) {
        Ok(()) => println!("wrote BENCH_selfheal.json"),
        Err(e) => eprintln!("could not write BENCH_selfheal.json: {e}"),
    }
}
