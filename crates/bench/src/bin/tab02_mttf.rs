//! Table 2: the analytical MTTF of a SSTable and of the storage layer as a
//! function of ρ, with and without parity, plus the space overhead.

use nova_bench::{print_header, print_row};
use nova_lsm::mttf::{format_hours, MttfModel};

fn main() {
    let model = MttfModel::default();
    print_header(
        "Table 2: MTTF of a SSTable / storage layer (StoC MTTF 4.3 months, repair 1 hour, β=10)",
        &[
            "rho",
            "SSTable R=1",
            "SSTable parity",
            "storage R=1",
            "storage parity",
            "overhead R=1",
            "overhead parity",
        ],
    );
    for row in model.table2() {
        print_row(&[
            row.rho.to_string(),
            format_hours(row.sstable_single_copy_hours),
            format_hours(row.sstable_parity_hours),
            format_hours(row.storage_single_copy_hours),
            format_hours(row.storage_parity_hours),
            format!("{:.0}%", row.single_copy_space_overhead * 100.0),
            format!("{:.0}%", row.parity_space_overhead * 100.0),
        ]);
    }
}
