//! Figure 21 (repo extension): the LTC block cache under Zipfian skew.
//!
//! Sweeps the per-LTC block-cache capacity (as a fraction of the loaded
//! dataset) against read-only (R100) workloads at several Zipfian constants
//! and reports throughput plus the measured cache hit rate. The paper's LTCs
//! are the memory-rich tier; this experiment quantifies how much of the
//! StoC round-trip cost a block cache recovers once data lives in SSTables.
//!
//! Every memtable is flushed before the measured run so reads exercise the
//! SSTable path (the memtables would otherwise absorb the hot set).

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::CacheConfig;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    // Dataset bytes ≈ keys × (key + value + per-entry overhead).
    let dataset_bytes = scale.num_keys * (20 + scale.value_size as u64 + 16);
    let fractions: [(f64, &str); 5] = [
        (0.0, "off"),
        (0.01, "1%"),
        (0.05, "5%"),
        (0.10, "10%"),
        (0.25, "25%"),
    ];
    let skews = [
        Distribution::Uniform,
        Distribution::Zipfian(0.73),
        Distribution::Zipfian(0.99),
    ];

    print_header(
        "Figure 21: LTC block cache vs Zipfian skew (η=1, β=4, ρ=1, R100)",
        &[
            "cache",
            "capacity MB",
            "Uniform kops (hit%)",
            "Zipf 0.73 kops (hit%)",
            "Zipf 0.99 kops (hit%)",
        ],
    );

    let mut baseline_099 = None;
    let mut at_ten_pct_099 = None;
    for (fraction, label) in fractions {
        let capacity = (dataset_bytes as f64 * fraction) as u64;
        let mut cells = vec![
            label.to_string(),
            format!("{:.2}", capacity as f64 / (1 << 20) as f64),
        ];
        for dist in skews {
            let mut config = presets::shared_disk(1, 4, 1, scale.num_keys);
            config.block_cache = if capacity == 0 {
                CacheConfig::disabled()
            } else {
                CacheConfig {
                    capacity_bytes: capacity,
                    shards: 16,
                    admission: true,
                }
            };
            let store = nova_store(config, &scale);
            // Push everything into SSTables so reads take the StoC path.
            store.nova().expect("nova store").flush_all().expect("flush");
            let report = run_workload(&store, Mix::R100, dist, &scale);
            let hit_rate = store.nova().expect("nova store").block_cache_hit_rate();
            if matches!(dist, Distribution::Zipfian(z) if (z - 0.99).abs() < 1e-9) {
                if capacity == 0 {
                    baseline_099 = Some(report.throughput_kops());
                } else if label == "10%" {
                    at_ten_pct_099 = Some(report.throughput_kops());
                }
            }
            store.shutdown();
            cells.push(format!(
                "{:.1} ({:.0}%)",
                report.throughput_kops(),
                hit_rate * 100.0
            ));
        }
        print_row(&cells);
    }

    if let (Some(off), Some(ten)) = (baseline_099, at_ten_pct_099) {
        println!(
            "\nspeedup at Zipf 0.99 with a cache sized at 10% of the dataset: {:.2}x",
            ten / off.max(1e-9)
        );
    }
}
