//! Figure 27 (repo extension): the observability contract — the fully
//! instrumented hot path must stay within 5% of the same build with
//! `MetricsConfig::disabled()`.
//!
//! Every client operation now passes an [`nova_obs::OpTimer`] plus per-layer
//! [`nova_obs::LayerTimer`]s (LTC, LogC, StoC I/O, block cache) on its way
//! down the stack. Each timer is two `Instant::now()` calls and a handful of
//! relaxed atomic adds into a log-linear histogram, so the cost per
//! operation is bounded and constant — but "bounded" must be *proven*, not
//! assumed, or the instrumentation quietly becomes the workload.
//!
//! The experiment interleaves A/B trials (metrics enabled vs disabled) of an
//! identical mixed read/write workload against identically constructed
//! clusters — fresh cluster, same preload, same deterministic key sequence —
//! and compares the medians. Interleaving means drift (thermal, page cache,
//! compaction debt of the previous trial) lands on both arms equally instead
//! of biasing whichever arm runs last.
//!
//! Results go to `BENCH_obs.json`; the enabled arm's full registry snapshot
//! (operation and layer histograms, group-commit sizes, per-component
//! gauges) is written to `metrics_snapshot.json` as a CI artifact; `ci_gate`
//! enforces the ≤5% ceiling.

use nova_bench::{print_header, print_row};
use nova_common::config::DiskConfig;
use nova_lsm::obs::OpKind;
use nova_lsm::{presets, NovaClient, NovaCluster};
use std::sync::Arc;
use std::time::Instant;

const THREADS: u64 = 4;

/// Build the benchmark cluster configuration; `enabled` selects the arm.
fn config(enabled: bool, num_keys: u64) -> nova_common::config::ClusterConfig {
    let mut config = presets::test_cluster(1, 2, num_keys);
    config.ranges_per_ltc = 4;
    config.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };
    if !enabled {
        config.metrics = nova_common::config::MetricsConfig::disabled();
    }
    config
}

/// One trial: fresh cluster, preload, flush (so reads traverse the SSTable +
/// block-cache path, not just the memtable), then a timed 50/50 get/put run.
/// Returns (ops/sec, cluster) so the caller can snapshot the enabled arm.
fn run_trial(enabled: bool, num_keys: u64, ops_per_thread: u64) -> (f64, Arc<NovaCluster>) {
    let cluster = NovaCluster::start(config(enabled, num_keys)).expect("start cluster");
    let client = NovaClient::new(Arc::clone(&cluster));
    let value = vec![b'v'; 256];
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..num_keys)
        .map(|i| (nova_common::keyspace::encode_key(i), value.clone()))
        .collect();
    for chunk in items.chunks(512) {
        client.put_batch(chunk).expect("load");
    }
    cluster.flush_all().expect("flush");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let client = client.clone();
            let value = &value;
            scope.spawn(move || {
                // Deterministic per-thread LCG: both arms issue the exact
                // same key sequence.
                let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 33
                };
                for _ in 0..ops_per_thread {
                    let roll = next();
                    let key = roll % num_keys;
                    if roll % 2 == 0 {
                        client.get_numeric(key).expect("get");
                    } else {
                        client.put_numeric(key, value).expect("put");
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    ((THREADS * ops_per_thread) as f64 / elapsed.max(1e-9), cluster)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughput"));
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let num_keys: u64 = if quick { 8_000 } else { 20_000 };
    let ops_per_thread: u64 = if quick { 6_000 } else { 20_000 };
    let trials: usize = if quick { 3 } else { 5 };

    print_header(
        &format!(
            "Figure 27: observability overhead ({trials} interleaved A/B trials, {THREADS} threads, \
             {ops_per_thread} ops/thread)"
        ),
        &["trial", "enabled kops", "disabled kops"],
    );

    // Warm-up pair, discarded: the first trial pays one-time costs (thread
    // pools, allocator growth) that would otherwise land on whichever arm
    // runs first.
    let _ = run_trial(true, num_keys, ops_per_thread / 4);
    let _ = run_trial(false, num_keys, ops_per_thread / 4);

    let mut enabled_ops: Vec<f64> = Vec::new();
    let mut disabled_ops: Vec<f64> = Vec::new();
    let mut last_enabled: Option<Arc<NovaCluster>> = None;
    for trial in 0..trials {
        let (on, cluster) = run_trial(true, num_keys, ops_per_thread);
        let (off, _) = run_trial(false, num_keys, ops_per_thread);
        enabled_ops.push(on);
        disabled_ops.push(off);
        last_enabled = Some(cluster);
        print_row(&[
            trial.to_string(),
            format!("{:.1}", on / 1e3),
            format!("{:.1}", off / 1e3),
        ]);
    }

    let enabled = median(enabled_ops);
    let disabled = median(disabled_ops);
    // Positive = instrumentation costs throughput; reported signed so a
    // noise-dominated run (disabled arm slower) is visible as such.
    let overhead_pct = (disabled / enabled.max(1e-9) - 1.0) * 100.0;

    let cluster = last_enabled.expect("at least one enabled trial ran");
    let reads = cluster.metrics().op_snapshot(OpKind::Get);
    let writes = cluster.metrics().op_snapshot(OpKind::Put);
    let all = {
        let mut h = reads.clone();
        h.merge(&writes);
        h
    };

    println!(
        "\nmedian: enabled {:.1} kops/s, disabled {:.1} kops/s, overhead {overhead_pct:.2}% \
         (contract: <= 5%)",
        enabled / 1e3,
        disabled / 1e3,
    );
    println!(
        "enabled-arm latency: get p50={}us p99={}us, put p50={}us p99={}us, slow_ops={}",
        reads.p50(),
        reads.p99(),
        writes.p50(),
        writes.p99(),
        cluster.metrics().slow_op_count(),
    );

    // The health report and the registry snapshot are part of what this
    // binary certifies: print the former, archive the latter.
    let health = cluster.health_report();
    print!("\n{}", health.summary());
    let snapshot = cluster.metrics_snapshot();
    match std::fs::write("metrics_snapshot.json", snapshot.to_json() + "\n") {
        Ok(()) => println!("wrote metrics_snapshot.json"),
        Err(e) => eprintln!("could not write metrics_snapshot.json: {e}"),
    }

    let json = format!(
        "{{\"experiment\":\"fig27_obs_overhead\",\"quick\":{quick},\"trials\":{trials},\
         \"threads\":{THREADS},\"ops_per_thread\":{ops_per_thread},\"rows\":[\
         {{\"bench\":\"obs_overhead\",\"enabled_kops\":{:.3},\"disabled_kops\":{:.3},\
         \"overhead_pct\":{overhead_pct:.3},\"p50_micros\":{},\"p99_micros\":{},\
         \"slow_ops\":{}}}]}}\n",
        enabled / 1e3,
        disabled / 1e3,
        all.p50(),
        all.p99(),
        cluster.metrics().slow_op_count(),
    );
    cluster.shutdown();
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
}
