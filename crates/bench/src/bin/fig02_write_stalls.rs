//! Figure 2: throughput over time of four configurations, showing how more
//! memtables and more StoCs diminish write stalls (Challenge 1).

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let configurations: [(&str, usize, usize, usize); 4] = [
        // (label, memtables δ, active α, StoCs β)
        ("(i)   2 memtables, 1 StoC", 2, 1, 1),
        ("(ii)  2 memtables, 10 StoCs", 2, 1, 10),
        ("(iii) 32 memtables, 1 StoC", 32, 8, 1),
        ("(iv)  32 memtables, 10 StoCs", 32, 8, 10),
    ];
    print_header(
        "Figure 2: write stalls vs memtables and StoCs (W100 Uniform)",
        &[
            "configuration",
            "mean kops",
            "peak kops",
            "stall fraction",
            "stalls",
        ],
    );
    for (label, memtables, active, stocs) in configurations {
        let mut config = presets::shared_disk(1, stocs, 1, scale.num_keys);
        config.range.max_memtables = memtables;
        config.range.active_memtables = active;
        config.range.num_dranges = active.max(1);
        let store = nova_store(config, &scale);
        let report = run_workload(&store, Mix::W100, Distribution::Uniform, &scale);
        let stalls = store.nova().map(|c| c.total_stalls()).unwrap_or(0);
        print_row(&[
            label.to_string(),
            format!("{:.1}", report.series.mean() / 1000.0),
            format!("{:.1}", report.series.peak() / 1000.0),
            format!("{:.0}%", report.series.fraction_below(0.1) * 100.0),
            stalls.to_string(),
        ]);
        // The throughput-over-time series itself (the paper's y-axis is log
        // scale; we print raw samples).
        if std::env::args().any(|a| a == "--series") {
            for (t, ops) in report.series.samples() {
                println!("  t={t:.1}s {:.0} ops/s", ops);
            }
        }
        store.shutdown();
    }
}
