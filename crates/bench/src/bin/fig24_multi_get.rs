//! Figure 24 (repo extension): scatter-gather `multi_get` vs sequential
//! point gets, and streaming `ScanCursor` throughput.
//!
//! `NovaClient::multi_get` splits a key batch by destination range, cuts the
//! shards into at most `stoc_io_parallelism` chunks, and fans the chunks out
//! concurrently on the client's scoped-thread I/O pool — so a batch of
//! point reads overlaps its fabric round trips instead of paying them in
//! sequence. This experiment turns `simulate_delay` on (every verb sleeps
//! for its simulated network time), disables the block cache (so every get
//! pays a real StoC block read), and measures:
//!
//! * **multi_get** — batched reads at I/O parallelism ∈ {1, 4, 8} vs the
//!   same keys read with sequential `get` calls. Parallelism 1 is the
//!   serial baseline (the pool runs chunks inline, ≈1x); the speedup at
//!   parallelism ≥ 4 is what `ci_gate` enforces (≥ 2x).
//! * **scan_cursor** — streaming range-scan throughput over the whole
//!   keyspace, with the cursor's chunked pulls and table readahead, vs the
//!   same scan with readahead disabled per `ReadOptions`.
//!
//! Results are printed as a table and written to `BENCH_multi_get.json`;
//! CI runs `--quick` and `ci_gate` enforces the ≥2x floor.

use nova_bench::{print_header, print_row};
use nova_common::config::{CacheConfig, DiskConfig, FabricConfig};
use nova_common::keyspace::encode_key;
use nova_common::ReadOptions;
use nova_lsm::{presets, NovaClient, NovaCluster};
use std::sync::Arc;
use std::time::Instant;

/// One-way verb latency for the simulated fabric: large enough that network
/// round trips dominate point reads, as in the paper's disaggregated setup.
const LATENCY_NANOS: u64 = 100_000;

/// Start a cluster whose reads all travel to the StoCs: simulated fabric
/// delay on, block cache off, data flushed to SSTables.
fn start_cluster(parallelism: usize, num_keys: u64, value_size: usize) -> (Arc<NovaCluster>, NovaClient) {
    let mut config = presets::test_cluster(1, 4, num_keys);
    config.ranges_per_ltc = 8;
    config.range.scatter_width = 2;
    config.fabric = FabricConfig {
        latency_nanos: LATENCY_NANOS,
        simulate_delay: true,
        ..FabricConfig::default()
    };
    config.disk = DiskConfig {
        bandwidth_bytes_per_sec: u64::MAX / 2,
        seek_micros: 0,
        accounting_only: true,
    };
    // Every get must pay the fabric round trip, or the comparison would
    // measure the block cache instead of the I/O path.
    config.block_cache = CacheConfig::disabled();
    config.stoc_io_parallelism = parallelism;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(Arc::clone(&cluster));
    let value = vec![b'v'; value_size];
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..num_keys).map(|i| (encode_key(i), value.clone())).collect();
    for chunk in items.chunks(512) {
        client.put_batch(chunk).expect("load");
    }
    cluster.flush_all().expect("flush");
    (cluster, client)
}

/// Deterministic key sample (LCG) so every configuration reads identical
/// keys.
fn sample_keys(count: usize, num_keys: u64) -> Vec<u64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % num_keys
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let num_keys: u64 = if quick { 4_000 } else { 16_000 };
    let reads: usize = if quick { 512 } else { 2_048 };
    let batch = 64usize;
    let value_size = 128usize;

    print_header(
        &format!(
            "Figure 24: multi_get vs sequential gets (simulate_delay on, {reads} reads, \
             batches of {batch})"
        ),
        &["parallelism", "seq ms", "multi ms", "speedup"],
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mut speedup_at_4 = 0.0f64;
    for parallelism in [1usize, 4, 8] {
        let (cluster, client) = start_cluster(parallelism, num_keys, value_size);
        let keys = sample_keys(reads, num_keys);

        let start = Instant::now();
        for key in &keys {
            client.get_numeric(*key).expect("get").expect("loaded key");
        }
        let seq_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        for chunk in keys.chunks(batch) {
            let values = client.multi_get_numeric(chunk).expect("multi_get");
            assert!(values.iter().all(|v| v.is_some()), "loaded keys must be found");
        }
        let multi_ms = start.elapsed().as_secs_f64() * 1e3;

        let speedup = seq_ms / multi_ms.max(1e-9);
        if parallelism == 4 {
            speedup_at_4 = speedup;
        }
        let batched = cluster.metrics().op_snapshot(nova_lsm::obs::OpKind::MultiGet);
        print_row(&[
            parallelism.to_string(),
            format!("{seq_ms:.1}"),
            format!("{multi_ms:.1}"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"multi_get\",\"parallelism\":{parallelism},\"reads\":{reads},\
             \"batch\":{batch},\"seq_ms\":{seq_ms:.3},\"multi_ms\":{multi_ms:.3},\
             \"speedup\":{speedup:.3},\"p50_micros\":{},\"p99_micros\":{}}}",
            batched.p50(),
            batched.p99(),
        ));
        cluster.shutdown();
    }

    // Streaming cursor throughput over the whole keyspace, with and without
    // table readahead (both pull chunks of 128 entries).
    print_header(
        "Figure 24b: streaming ScanCursor throughput",
        &["readahead", "entries", "ms", "kentries/s"],
    );
    // A fresh cluster per configuration so each row's latency percentiles
    // cover exactly its own cursor pulls.
    for (label, options) in [
        ("auto", ReadOptions::default()),
        ("off", ReadOptions::default().with_readahead(0)),
    ] {
        let (cluster, client) = start_cluster(8, num_keys, value_size);
        let start = Instant::now();
        let mut scanned = 0usize;
        for entry in client.scan_range(&encode_key(0), None, options) {
            entry.expect("cursor scan");
            scanned += 1;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let kentries = scanned as f64 / ms.max(1e-9);
        assert_eq!(scanned as u64, num_keys, "the cursor must stream every key");
        let pulls = cluster.metrics().op_snapshot(nova_lsm::obs::OpKind::Scan);
        print_row(&[
            label.to_string(),
            scanned.to_string(),
            format!("{ms:.1}"),
            format!("{kentries:.1}"),
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"scan_cursor\",\"readahead\":\"{label}\",\"entries\":{scanned},\
             \"ms\":{ms:.3},\"kentries_per_sec\":{kentries:.3},\"p50_micros\":{},\"p99_micros\":{}}}",
            pulls.p50(),
            pulls.p99(),
        ));
        cluster.shutdown();
    }

    println!("\nmulti_get speedup at parallelism=4: {speedup_at_4:.2}x");

    let json = format!(
        "{{\"experiment\":\"fig24_multi_get\",\"quick\":{quick},\"latency_nanos\":{LATENCY_NANOS},\
         \"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    match std::fs::write("BENCH_multi_get.json", &json) {
        Ok(()) => println!("wrote BENCH_multi_get.json"),
        Err(e) => eprintln!("could not write BENCH_multi_get.json: {e}"),
    }
}
