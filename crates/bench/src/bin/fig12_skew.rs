//! Figure 12: impact of skew — throughput of RW50 / W100 / SW50 as the
//! Zipfian constant sweeps from Uniform through 0.27, 0.73 and 0.99.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let distributions = [
        Distribution::Uniform,
        Distribution::Zipfian(0.27),
        Distribution::Zipfian(0.73),
        Distribution::Zipfian(0.99),
    ];
    print_header(
        "Figure 12: impact of skew (η=1, β=10, ρ=1)",
        &[
            "workload",
            "Uniform kops",
            "Zipf 0.27 kops",
            "Zipf 0.73 kops",
            "Zipf 0.99 kops",
        ],
    );
    for mix in [Mix::Rw50, Mix::W100, Mix::Sw50] {
        let mut cells = vec![mix.label().to_string()];
        for dist in distributions {
            let store = nova_store(presets::shared_disk(1, 10, 1, scale.num_keys), &scale);
            let report = run_workload(&store, mix, dist, &scale);
            store.shutdown();
            cells.push(format!("{:.1}", report.throughput_kops()));
        }
        print_row(&cells);
    }
}
