//! Figure 15: throughput and scalability of 5 LTCs as the number of StoCs β
//! grows from 1 to 10 (ρ=1, Uniform).

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    print_header(
        "Figure 15: 5 LTCs vs number of StoCs (ρ=1, Uniform)",
        &["workload", "β=1 kops", "β=3 kops", "β=5 kops", "β=10 kops"],
    );
    for mix in [Mix::Rw50, Mix::W100, Mix::Sw50] {
        let mut cells = vec![mix.label().to_string()];
        for beta in [1usize, 3, 5, 10] {
            let mut config = presets::shared_disk(5, beta, 1, scale.num_keys);
            config.ranges_per_ltc = 1;
            let store = nova_store(config, &scale);
            let report = run_workload(&store, mix, Distribution::Uniform, &scale);
            store.shutdown();
            cells.push(format!("{:.1}", report.throughput_kops()));
        }
        print_row(&cells);
    }
}
