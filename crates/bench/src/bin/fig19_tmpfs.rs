//! Figure 19: the comparison of Figure 18b repeated on memory-speed storage
//! (tmpfs): with the disk out of the picture the CPU becomes the bottleneck,
//! Nova-LSM still wins with Zipfian but pays its index/xchg CPU overhead with
//! Uniform.

use nova_baseline::BaselineKind;
use nova_bench::{baseline_store, nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::DiskConfig;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let mut scale = BenchScale::from_args();
    scale.disk = DiskConfig::tmpfs();
    let memtable_bytes = presets::scaled_experiment(scale.num_keys)
        .range
        .memtable_size_bytes;
    print_header(
        "Figure 19: Nova-LSM vs baselines on tmpfs (10 servers)",
        &["workload", "distribution", "system", "kops"],
    );
    for mix in Mix::standard() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            for system in ["LevelDB*", "RocksDB*", "Nova-LSM"] {
                let store = match system {
                    "LevelDB*" => baseline_store(BaselineKind::LevelDbStar, 10, memtable_bytes, &scale),
                    "RocksDB*" => baseline_store(BaselineKind::RocksDbStar, 10, memtable_bytes, &scale),
                    _ => nova_store(presets::shared_disk(10, 10, 3, scale.num_keys), &scale),
                };
                let report = run_workload(&store, mix, dist, &scale);
                store.shutdown();
                print_row(&[
                    mix.label().to_string(),
                    dist.label(),
                    system.to_string(),
                    format!("{:.1}", report.throughput_kops()),
                ]);
            }
        }
    }
}
