//! Figure 20: elasticity. (a) add LTCs one at a time under SW50 Uniform and
//! migrate ranges to them; (b) add then remove StoCs one at a time under RW50
//! Uniform. Throughput is reported per phase.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();

    // (a) Adding LTCs.
    print_header(
        "Figure 20a: adding LTCs under SW50 Uniform (start: η=1, β=4, ω=8)",
        &["phase", "LTCs", "kops"],
    );
    let mut config = presets::shared_disk(1, 4, 1, scale.num_keys);
    config.ranges_per_ltc = 8;
    config.range.active_memtables = 4;
    config.range.num_dranges = 4;
    config.range.max_memtables = 8;
    let store = nova_store(config, &scale);
    let report = run_workload(&store, Mix::Sw50, Distribution::Uniform, &scale);
    print_row(&[
        "start".into(),
        "1".into(),
        format!("{:.1}", report.throughput_kops()),
    ]);
    if let Some(cluster) = store.nova() {
        for phase in 0..2 {
            let new_ltc = cluster.add_ltc().expect("add ltc");
            // Move a share of ranges to the new LTC.
            let assignment = cluster.coordinator().configuration();
            let donor = cluster
                .ltc_ids()
                .into_iter()
                .max_by_key(|l| assignment.ranges_of(*l).len())
                .expect("at least one LTC");
            let ranges = assignment.ranges_of(donor);
            let ltcs_after = cluster.ltc_ids().len();
            for range in ranges.iter().take(ranges.len() / ltcs_after.max(1)) {
                cluster.migrate_range(*range, new_ltc).expect("migrate");
            }
            let report = run_workload(&store, Mix::Sw50, Distribution::Uniform, &scale);
            print_row(&[
                format!("+1 LTC (phase {})", phase + 1),
                cluster.ltc_ids().len().to_string(),
                format!("{:.1}", report.throughput_kops()),
            ]);
        }
    }
    store.shutdown();

    // (b) Adding and removing StoCs.
    print_header(
        "Figure 20b: adding/removing StoCs under RW50 Uniform (start: η=3, β=3, ρ=1)",
        &["phase", "StoCs", "kops", "stalls"],
    );
    let mut config = presets::shared_disk(3, 3, 1, scale.num_keys);
    config.ranges_per_ltc = 4;
    let store = nova_store(config, &scale);
    let report = run_workload(&store, Mix::Rw50, Distribution::Uniform, &scale);
    print_row(&[
        "start".into(),
        "3".into(),
        format!("{:.1}", report.throughput_kops()),
        store.nova().map(|c| c.total_stalls()).unwrap_or(0).to_string(),
    ]);
    if let Some(cluster) = store.nova() {
        let mut added = Vec::new();
        for _ in 0..3 {
            added.push(cluster.add_stoc().expect("add stoc"));
            let report = run_workload(&store, Mix::Rw50, Distribution::Uniform, &scale);
            print_row(&[
                "+1 StoC".into(),
                cluster.stoc_ids().len().to_string(),
                format!("{:.1}", report.throughput_kops()),
                cluster.total_stalls().to_string(),
            ]);
        }
        for stoc in added.into_iter().rev() {
            cluster.remove_stoc(stoc).expect("remove stoc");
            let report = run_workload(&store, Mix::Rw50, Distribution::Uniform, &scale);
            print_row(&[
                "-1 StoC".into(),
                cluster.stoc_ids().len().to_string(),
                format!("{:.1}", report.throughput_kops()),
                cluster.total_stalls().to_string(),
            ]);
        }
    }
    store.shutdown();
}
