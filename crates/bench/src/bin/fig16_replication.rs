//! Figure 16: the cost of SSTable availability — throughput with R ∈ {1,2,3}
//! replicas and with the Hybrid (parity + replicated metadata) scheme, plus
//! the per-StoC disk-bandwidth distribution for W100.

use nova_bench::{nova_store, print_header, print_row, run_workload, BenchScale};
use nova_common::config::AvailabilityPolicy;
use nova_lsm::presets;
use nova_ycsb::{Distribution, Mix};

fn main() {
    let scale = BenchScale::from_args();
    let policies: [(&str, AvailabilityPolicy); 4] = [
        ("R=1", AvailabilityPolicy::None),
        ("R=2", AvailabilityPolicy::Replicate(2)),
        ("R=3", AvailabilityPolicy::Replicate(3)),
        ("Hybrid", AvailabilityPolicy::Hybrid),
    ];
    print_header(
        "Figure 16a: throughput vs SSTable replication (Uniform, η=1, β=10, ρ=3)",
        &["workload", "R=1 kops", "R=2 kops", "R=3 kops", "Hybrid kops"],
    );
    let mut disk_rows: Vec<(String, Vec<u64>)> = Vec::new();
    for mix in [Mix::Rw50, Mix::W100, Mix::Sw50] {
        let mut cells = vec![mix.label().to_string()];
        for (label, availability) in policies {
            let mut config = presets::shared_disk(1, 10, 3, scale.num_keys);
            config.range.availability = availability;
            let store = nova_store(config, &scale);
            let report = run_workload(&store, mix, Distribution::Uniform, &scale);
            if mix == Mix::W100 {
                if let Some(cluster) = store.nova() {
                    let mut bytes: Vec<(u32, u64)> = cluster
                        .stoc_stats()
                        .into_iter()
                        .map(|(s, st)| (s.0, st.bytes_written))
                        .collect();
                    bytes.sort();
                    disk_rows.push((label.to_string(), bytes.into_iter().map(|(_, b)| b).collect()));
                }
            }
            store.shutdown();
            cells.push(format!("{:.1}", report.throughput_kops()));
        }
        print_row(&cells);
    }
    print_header(
        "Figure 16b: bytes written per StoC during W100",
        &["policy", "per-StoC bytes written"],
    );
    for (label, bytes) in disk_rows {
        print_row(&[label, format!("{bytes:?}")]);
    }
}
