//! Criterion end-to-end benchmarks: single put / get / scan operations
//! against a small running Nova-LSM cluster (instantaneous simulated disks so
//! the numbers reflect the software path, not the disk model).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};
use std::time::Duration;

fn bench_cluster_ops(c: &mut Criterion) {
    let num_keys = 50_000u64;
    let cluster = NovaCluster::start(presets::test_cluster(1, 3, num_keys)).unwrap();
    let client = NovaClient::new(cluster.clone());
    for i in 0..num_keys {
        client.put_numeric(i, b"initial-value-payload").unwrap();
    }

    let mut group = c.benchmark_group("cluster");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(1));

    group.bench_function("put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            client
                .put_numeric(i % num_keys, b"updated-value-payload")
                .unwrap();
        });
    });
    group.bench_function("get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % num_keys;
            criterion::black_box(client.get_numeric(i).unwrap());
        });
    });
    group.bench_function("scan10", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 104729) % num_keys;
            criterion::black_box(client.scan(&encode_key(i), 10).unwrap());
        });
    });
    group.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench_cluster_ops);
criterion_main!(benches);
