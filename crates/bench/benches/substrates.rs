//! Criterion micro-benchmarks of the Nova-LSM substrates: the skiplist
//! memtable, SSTable build/read, bloom filters, the lookup index, the zipfian
//! generator and the simulated fabric's one-sided verbs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nova_common::keyspace::encode_key;
use nova_common::types::{Entry, MAX_SEQUENCE_NUMBER};
use nova_common::{MemtableId, NodeId, ValueType};
use nova_fabric::Fabric;
use nova_ltc::LookupIndex;
use nova_memtable::Memtable;
use nova_sstable::{BloomFilter, MemoryFetcher, TableBuilder, TableOptions, TableReader};
use nova_ycsb::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("nova");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group
}

fn bench_memtable(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Elements(1));
    group.bench_function("memtable_put", |b| {
        let memtable = Memtable::new(MemtableId(1), 0, usize::MAX);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            memtable.add(
                i,
                ValueType::Value,
                &encode_key(i % 100_000),
                b"value-payload-64-bytes",
            );
        });
    });
    group.bench_function("memtable_get", |b| {
        let memtable = Memtable::new(MemtableId(1), 0, usize::MAX);
        for i in 0..100_000u64 {
            memtable.add(i + 1, ValueType::Value, &encode_key(i), b"value");
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            criterion::black_box(memtable.get(&encode_key(i), MAX_SEQUENCE_NUMBER));
        });
    });
    group.finish();
}

fn bench_sstable(c: &mut Criterion) {
    let entries: Vec<Entry> = (0..20_000u64)
        .map(|i| Entry::put(encode_key(i), i + 1, vec![b'v'; 128]))
        .collect();
    let mut group = quick(c);
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("sstable_build_20k_entries", |b| {
        b.iter_batched(
            || entries.clone(),
            |entries| {
                let mut builder = TableBuilder::new(TableOptions {
                    block_size: 4096,
                    bloom_bits_per_key: 10,
                    num_fragments: 3,
                });
                for e in &entries {
                    builder.add(e);
                }
                criterion::black_box(builder.finish().unwrap())
            },
            BatchSize::LargeInput,
        );
    });
    // Point reads against a built table.
    let mut builder = TableBuilder::new(TableOptions {
        block_size: 4096,
        bloom_bits_per_key: 10,
        num_fragments: 3,
    });
    for e in &entries {
        builder.add(e);
    }
    let built = builder.finish().unwrap();
    let reader = TableReader::open(&built.meta).unwrap();
    let fetcher = MemoryFetcher::new(built.fragments.clone());
    group.throughput(Throughput::Elements(1));
    group.bench_function("sstable_point_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            criterion::black_box(reader.get(&fetcher, &encode_key(i), MAX_SEQUENCE_NUMBER).unwrap());
        });
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000u64).map(encode_key).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let mut group = quick(c);
    group.bench_function("bloom_build_10k", |b| {
        b.iter(|| criterion::black_box(BloomFilter::build(&refs, 10)));
    });
    let filter = BloomFilter::build(&refs, 10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("bloom_probe", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            criterion::black_box(filter.may_contain(&encode_key(i % 20_000)));
        });
    });
    group.finish();
}

fn bench_lookup_index(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Elements(1));
    group.bench_function("lookup_index_update_and_lookup", |b| {
        let index = LookupIndex::new();
        let memtable = Memtable::new(MemtableId(1), 0, usize::MAX);
        index.register_memtable(&memtable);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = encode_key(i % 50_000);
            index.update_key(&key, MemtableId(1));
            criterion::black_box(index.lookup(&key));
        });
    });
    group.finish();
}

fn bench_zipfian(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Elements(1));
    group.bench_function("zipfian_next", |b| {
        let zipf = Zipfian::ycsb_default(1_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| criterion::black_box(zipf.next(&mut rng)));
    });
    group.bench_function("uniform_next", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| criterion::black_box(rng.gen_range(0u64..1_000_000)));
    });
    group.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let fabric = Fabric::with_defaults(2);
    let a = fabric.endpoint(NodeId(0));
    let b_ep = fabric.endpoint(NodeId(1));
    let region = b_ep.register_region(1 << 20);
    let payload = vec![7u8; 4096];
    let mut group = quick(c);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("fabric_rdma_write_4k", |b| {
        b.iter(|| a.rdma_write(NodeId(1), region, 0, &payload, None).unwrap());
    });
    group.bench_function("fabric_rdma_read_4k", |b| {
        b.iter(|| criterion::black_box(a.rdma_read(NodeId(1), region, 0, 4096).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_memtable,
    bench_sstable,
    bench_bloom,
    bench_lookup_index,
    bench_zipfian,
    bench_fabric
);
criterion_main!(benches);
