//! One cache shard: a hash map over an intrusive doubly-linked LRU list
//! stored in a slab, so get/insert/evict are O(1) with no per-entry
//! allocation beyond the slab slot.

use crate::BlockKey;
use bytes::Bytes;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Node {
    key: BlockKey,
    value: Bytes,
    charge: u64,
    prev: usize,
    next: usize,
}

/// Blocks and bytes removed by an eviction or invalidation pass.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Removed {
    pub count: u64,
    pub bytes: u64,
}

/// A single LRU shard. Not thread-safe; the cache wraps each shard in a
/// mutex.
pub(crate) struct LruShard {
    map: HashMap<BlockKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used entry, or NIL.
    head: usize,
    /// Least recently used entry, or NIL.
    tail: usize,
    used_bytes: u64,
}

impl LruShard {
    pub fn new() -> Self {
        LruShard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
        }
    }

    /// Number of resident entries (used by shard-distribution tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn contains(&self, key: &BlockKey) -> bool {
        self.map.contains_key(key)
    }

    /// The key that would be evicted next, if any.
    pub fn peek_victim(&self) -> Option<BlockKey> {
        if self.tail == NIL {
            None
        } else {
            Some(self.slab[self.tail].key)
        }
    }

    /// Look up and move to the MRU position.
    pub fn get(&mut self, key: &BlockKey) -> Option<Bytes> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Insert a new entry, evicting from the LRU end until `capacity` is
    /// respected. The caller has already checked `!contains(key)` and that
    /// the charge fits in an empty shard.
    pub fn insert_evicting(&mut self, key: BlockKey, value: Bytes, capacity: u64) -> Removed {
        let charge = value.len() as u64;
        let mut removed = Removed::default();
        while self.used_bytes + charge > capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over budget with an empty shard");
            if victim == NIL {
                break;
            }
            let bytes = self.slab[victim].charge;
            self.remove_index(victim);
            removed.count += 1;
            removed.bytes += bytes;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Node {
                    key,
                    value,
                    charge,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Node {
                    key,
                    value,
                    charge,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used_bytes += charge;
        removed
    }

    /// Remove every entry whose key matches `pred`.
    pub fn remove_matching(&mut self, pred: impl Fn(&BlockKey) -> bool) -> Removed {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, &i)| i)
            .collect();
        let mut removed = Removed::default();
        for idx in victims {
            removed.count += 1;
            removed.bytes += self.slab[idx].charge;
            self.remove_index(idx);
        }
        removed
    }

    fn remove_index(&mut self, idx: usize) {
        self.unlink(idx);
        let node = &mut self.slab[idx];
        self.used_bytes -= node.charge;
        node.value = Bytes::new();
        let key = node.key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::{StocFileId, StocId};

    fn key(seq: u32, offset: u64) -> BlockKey {
        BlockKey::new(StocFileId::new(StocId(0), seq), offset)
    }

    #[test]
    fn lru_order_and_slab_reuse() {
        let mut shard = LruShard::new();
        for i in 0..3u64 {
            shard.insert_evicting(key(1, i), Bytes::from(vec![0u8; 10]), 30);
        }
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.peek_victim(), Some(key(1, 0)));
        // Touch the victim; the next-coldest becomes the victim.
        assert!(shard.get(&key(1, 0)).is_some());
        assert_eq!(shard.peek_victim(), Some(key(1, 1)));
        // Over-budget insert evicts exactly one.
        let removed = shard.insert_evicting(key(1, 3), Bytes::from(vec![0u8; 10]), 30);
        assert_eq!(removed.count, 1);
        assert!(!shard.contains(&key(1, 1)));
        assert_eq!(shard.used_bytes(), 30);
        // Freed slab slot is reused rather than growing the slab.
        let slots = shard.slab.len();
        shard.remove_matching(|k| *k == key(1, 2));
        shard.insert_evicting(key(1, 9), Bytes::from(vec![0u8; 10]), 30);
        assert_eq!(shard.slab.len(), slots);
    }
}
