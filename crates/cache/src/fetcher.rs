//! A caching [`BlockFetcher`] decorator: resolves a table-relative
//! [`BlockLocation`] to its physical `(StocFileId, offset)` identity via the
//! table's [`SstableMeta`], consults the shared [`BlockCache`], and delegates
//! to the wrapped fetcher (normally the StoC read path) only on a miss.

use crate::{BlockCache, BlockKey};
use bytes::Bytes;
use nova_common::Result;
use nova_sstable::{BlockFetcher, BlockLocation, SstableMeta};

/// Wraps any [`BlockFetcher`] with a shared [`BlockCache`].
pub struct CachingFetcher<'a> {
    inner: &'a dyn BlockFetcher,
    cache: &'a BlockCache,
    meta: &'a SstableMeta,
    /// Whether fetched blocks are offered to the cache. `false` is the
    /// `ReadOptions::fill_cache = false` hint: hits are still served, but
    /// misses are not inserted, so a one-off analytical scan cannot churn
    /// the admission filter or displace the hot set.
    fill: bool,
}

impl<'a> CachingFetcher<'a> {
    /// Wrap `inner`, caching blocks of the table described by `meta`.
    pub fn new(inner: &'a dyn BlockFetcher, cache: &'a BlockCache, meta: &'a SstableMeta) -> Self {
        Self::with_fill(inner, cache, meta, true)
    }

    /// [`CachingFetcher::new`] with an explicit fill policy: when `fill` is
    /// false, cache misses are fetched but not inserted.
    pub fn with_fill(
        inner: &'a dyn BlockFetcher,
        cache: &'a BlockCache,
        meta: &'a SstableMeta,
        fill: bool,
    ) -> Self {
        CachingFetcher {
            inner,
            cache,
            meta,
            fill,
        }
    }

    /// The physical cache key for a logical block location, if the fragment
    /// has a placed primary replica. Blocks of unplaced fragments (only seen
    /// in tests building synthetic tables) bypass the cache.
    fn key_for(&self, location: &BlockLocation) -> Option<BlockKey> {
        let handle = self.meta.fragments.get(location.fragment as usize)?.primary()?;
        Some(BlockKey::new(handle.file, handle.offset + location.offset))
    }
}

impl BlockFetcher for CachingFetcher<'_> {
    fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
        let Some(key) = self.key_for(location) else {
            return self.inner.fetch(location);
        };
        if let Some(block) = self.cache.get(&key) {
            return Ok(block);
        }
        let block = self.inner.fetch(location)?;
        if self.fill {
            self.cache.insert(key, block.clone());
        }
        Ok(block)
    }

    /// Serve what the cache holds, then fetch only the misses through the
    /// wrapped fetcher's own `fetch_many` (one concurrent batch against the
    /// StoCs) and batch-fill the cache with the results. Admission still
    /// applies per block, so one-touch readahead traffic cannot flush the
    /// hot set.
    fn fetch_many(&self, locations: &[BlockLocation]) -> Vec<Result<Bytes>> {
        let mut out: Vec<Option<Result<Bytes>>> = Vec::with_capacity(locations.len());
        let mut miss_locations: Vec<BlockLocation> = Vec::new();
        let mut miss_slots: Vec<(usize, Option<BlockKey>)> = Vec::new();
        for (i, location) in locations.iter().enumerate() {
            let key = self.key_for(location);
            match key.and_then(|k| self.cache.get(&k)) {
                Some(block) => out.push(Some(Ok(block))),
                None => {
                    out.push(None);
                    miss_locations.push(*location);
                    miss_slots.push((i, key));
                }
            }
        }
        if !miss_locations.is_empty() {
            let fetched = self.inner.fetch_many(&miss_locations);
            for ((slot, key), result) in miss_slots.into_iter().zip(fetched) {
                if self.fill {
                    if let (Some(key), Ok(block)) = (key, &result) {
                        self.cache.insert(key, block.clone());
                    }
                }
                out[slot] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled by hit or miss path"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::{StocBlockHandle, StocFileId, StocId};
    use nova_sstable::{FragmentLocation, MemoryFetcher};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Counts how many fetches reach the wrapped fetcher.
    struct CountingFetcher {
        inner: MemoryFetcher,
        calls: AtomicU64,
    }

    impl BlockFetcher for CountingFetcher {
        fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.fetch(location)
        }
    }

    fn meta_for_fragments(sizes: &[usize]) -> SstableMeta {
        SstableMeta {
            fragments: sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| FragmentLocation {
                    size: size as u64,
                    replicas: vec![StocBlockHandle {
                        stoc: StocId(i as u32),
                        file: StocFileId::new(StocId(i as u32), 100 + i as u32),
                        offset: 0,
                        size: size as u32,
                    }],
                })
                .collect(),
            ..SstableMeta::default()
        }
    }

    #[test]
    fn second_fetch_is_served_from_cache() {
        let fragment = vec![9u8; 1 << 12];
        let counting = CountingFetcher {
            inner: MemoryFetcher::new(vec![fragment]),
            calls: AtomicU64::new(0),
        };
        let cache = BlockCache::new(1 << 20, 2, false);
        let meta = meta_for_fragments(&[1 << 12]);
        let caching = CachingFetcher::new(&counting, &cache, &meta);
        let loc = BlockLocation {
            fragment: 0,
            offset: 128,
            size: 256,
        };
        let first = caching.fetch(&loc).unwrap();
        let second = caching.fetch(&loc).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            counting.calls.load(Ordering::SeqCst),
            1,
            "second fetch must not reach the StoC path"
        );
        // A different offset within the same fragment is a distinct block.
        caching
            .fetch(&BlockLocation {
                fragment: 0,
                offset: 512,
                size: 256,
            })
            .unwrap();
        assert_eq!(counting.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn table_iterator_crosses_block_boundaries_identically_cached_and_uncached() {
        use nova_common::types::Entry;
        use nova_sstable::{collect_entries, TableBuilder, TableOptions, TableReader};

        // A small block size against 600 entries forces many data blocks and
        // three fragments, so iteration crosses block and fragment boundaries.
        let entries: Vec<Entry> = (0..600u64)
            .map(|i| {
                Entry::put(
                    format!("key-{i:06}").into_bytes(),
                    i + 1,
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect();
        let mut builder = TableBuilder::new(TableOptions {
            block_size: 256,
            bloom_bits_per_key: 10,
            num_fragments: 3,
        });
        for e in &entries {
            builder.add(e);
        }
        let built = builder.finish().unwrap();
        let reader = TableReader::open(&built.meta).unwrap();
        let sizes: Vec<usize> = built.fragments.iter().map(|f| f.len()).collect();
        let meta = meta_for_fragments(&sizes);

        let counting = CountingFetcher {
            inner: MemoryFetcher::new(built.fragments.clone()),
            calls: AtomicU64::new(0),
        };
        let cache = BlockCache::new(1 << 20, 4, false);

        // Uncached pass.
        let plain = MemoryFetcher::new(built.fragments.clone());
        let uncached = collect_entries(&mut reader.iter(&plain)).unwrap();
        assert_eq!(uncached, entries);

        // First cached pass populates the cache; blocks all come from inner.
        let caching = CachingFetcher::new(&counting, &cache, &meta);
        let first = collect_entries(&mut reader.iter(&caching)).unwrap();
        assert_eq!(first, entries, "cached iteration must return identical entries");
        let cold_fetches = counting.calls.load(Ordering::SeqCst);
        assert!(cold_fetches > 3, "expected many data blocks, got {cold_fetches}");

        // Second cached pass is served entirely from the cache.
        let second = collect_entries(&mut reader.iter(&caching)).unwrap();
        assert_eq!(second, entries);
        assert_eq!(
            counting.calls.load(Ordering::SeqCst),
            cold_fetches,
            "a warm full scan must not reach the wrapped fetcher"
        );
        assert_eq!(cache.stats().hits, cold_fetches);
    }

    #[test]
    fn fetch_many_serves_hits_and_batch_fills_misses() {
        let fragment = vec![5u8; 1 << 12];
        let counting = CountingFetcher {
            inner: MemoryFetcher::new(vec![fragment]),
            calls: AtomicU64::new(0),
        };
        let cache = BlockCache::new(1 << 20, 2, false);
        let meta = meta_for_fragments(&[1 << 12]);
        let caching = CachingFetcher::new(&counting, &cache, &meta);
        let locations: Vec<BlockLocation> = (0..8)
            .map(|i| BlockLocation {
                fragment: 0,
                offset: i * 256,
                size: 256,
            })
            .collect();

        // Warm up two of the eight blocks through the single-fetch path.
        caching.fetch(&locations[1]).unwrap();
        caching.fetch(&locations[4]).unwrap();
        let warm_calls = counting.calls.load(Ordering::SeqCst);
        assert_eq!(warm_calls, 2);

        // The batch serves those two from cache and fetches only the misses.
        let first = caching.fetch_many(&locations);
        assert!(first.iter().all(|r| r.is_ok()));
        assert_eq!(counting.calls.load(Ordering::SeqCst), warm_calls + 6);

        // A repeat batch is served entirely from the cache.
        let second = caching.fetch_many(&locations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        assert_eq!(
            counting.calls.load(Ordering::SeqCst),
            warm_calls + 6,
            "warm prefetch window must not reach the StoC path"
        );
    }

    #[test]
    fn no_fill_serves_hits_but_never_inserts() {
        let fragment = vec![7u8; 1 << 12];
        let counting = CountingFetcher {
            inner: MemoryFetcher::new(vec![fragment]),
            calls: AtomicU64::new(0),
        };
        let cache = BlockCache::new(1 << 20, 2, false);
        let meta = meta_for_fragments(&[1 << 12]);
        let loc = BlockLocation {
            fragment: 0,
            offset: 0,
            size: 256,
        };
        // Warm one block through the filling path.
        CachingFetcher::new(&counting, &cache, &meta).fetch(&loc).unwrap();
        assert_eq!(cache.stats().insertions, 1);

        let no_fill = CachingFetcher::with_fill(&counting, &cache, &meta, false);
        // The warm block is still a hit.
        no_fill.fetch(&loc).unwrap();
        assert_eq!(counting.calls.load(Ordering::SeqCst), 1);
        // A cold block is fetched but not inserted — twice in a row.
        let cold = BlockLocation {
            fragment: 0,
            offset: 512,
            size: 256,
        };
        no_fill.fetch(&cold).unwrap();
        no_fill.fetch(&cold).unwrap();
        assert_eq!(counting.calls.load(Ordering::SeqCst), 3);
        assert_eq!(cache.stats().insertions, 1, "no-fill must not insert");
        // The batched path obeys the same policy.
        let locations: Vec<BlockLocation> = (0..4)
            .map(|i| BlockLocation {
                fragment: 0,
                offset: i * 256,
                size: 256,
            })
            .collect();
        assert!(no_fill.fetch_many(&locations).iter().all(|r| r.is_ok()));
        assert_eq!(cache.stats().insertions, 1, "no-fill fetch_many must not insert");
    }

    #[test]
    fn unplaced_fragments_bypass_the_cache() {
        let counting = CountingFetcher {
            inner: MemoryFetcher::new(vec![vec![1u8; 1024]]),
            calls: AtomicU64::new(0),
        };
        let cache = BlockCache::new(1 << 20, 2, false);
        let meta = SstableMeta::default();
        let caching = CachingFetcher::new(&counting, &cache, &meta);
        let loc = BlockLocation {
            fragment: 0,
            offset: 0,
            size: 64,
        };
        caching.fetch(&loc).unwrap();
        caching.fetch(&loc).unwrap();
        assert_eq!(counting.calls.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().insertions, 0);
    }
}
