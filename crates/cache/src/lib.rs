//! # nova-cache
//!
//! A sharded block cache serving the LTC read path.
//!
//! In Nova-LSM the LTCs are the memory-rich compute tier while SSTable data
//! blocks live on disaggregated StoCs; every block read that misses this
//! cache pays a fabric round-trip plus a (simulated) disk access. The cache
//! therefore sits between the SSTable reader and the StoC client: a
//! [`CachingFetcher`] wraps any [`BlockFetcher`](nova_sstable::BlockFetcher)
//! and consults a shared [`BlockCache`] keyed by `(StocFileId, offset)` —
//! the physical identity of a block, which is stable across compactions
//! because StoC file ids are never reused.
//!
//! Design:
//!
//! * **Sharded**: the key hash picks one of N shards, each guarded by its own
//!   `parking_lot::Mutex`, so concurrent readers on different blocks do not
//!   serialize.
//! * **Capacity-charged LRU**: every entry is charged its block size; shards
//!   evict from the cold end of an intrusive LRU list until under budget.
//! * **Optional TinyLFU admission**: a count-min sketch of recent access
//!   frequencies; when the shard is full, a new block is admitted only if it
//!   is at least as popular as the eviction victim. This keeps one-touch scan
//!   blocks from flushing the hot working set.
//! * **Atomic statistics**: hits, misses, insertions, evictions and byte
//!   counters are lock-free and exposed as a [`CacheStats`] snapshot.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod lru;
mod tinylfu;

pub mod fetcher;

pub use fetcher::CachingFetcher;

use bytes::Bytes;
use lru::LruShard;
use nova_common::config::CacheConfig;
use nova_common::StocFileId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tinylfu::FrequencySketch;

/// Identity of a cached block: the (globally unique, never reused) StoC file
/// holding the primary copy of its fragment, plus the byte offset of the
/// block within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// StoC file containing the block.
    pub file: StocFileId,
    /// Byte offset of the block within the file.
    pub offset: u64,
}

impl BlockKey {
    /// Build a key.
    pub fn new(file: StocFileId, offset: u64) -> Self {
        BlockKey { file, offset }
    }

    fn hash(&self) -> u64 {
        // FxHash-style mix of the two words; cheap and well distributed for
        // the (file-id, offset) patterns the LTC produces.
        const K: u64 = 0x517cc1b727220a95;
        let mut h = self.file.0.wrapping_mul(K).rotate_left(5) ^ self.offset;
        h = h.wrapping_mul(K);
        h ^ (h >> 32)
    }
}

/// Point-in-time statistics of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to go to the StoC.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Bytes inserted.
    pub inserted_bytes: u64,
    /// Blocks evicted to stay under capacity.
    pub evictions: u64,
    /// Blocks rejected by the admission filter.
    pub admission_rejects: u64,
    /// Blocks dropped by explicit invalidation (file deletion).
    pub invalidations: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    inserted_bytes: AtomicU64,
    evictions: AtomicU64,
    admission_rejects: AtomicU64,
    invalidations: AtomicU64,
    resident_bytes: AtomicU64,
    resident_blocks: AtomicU64,
}

/// A sharded, capacity-charged block cache with LRU eviction and optional
/// TinyLFU admission.
pub struct BlockCache {
    shards: Vec<Mutex<LruShard>>,
    shard_mask: u64,
    per_shard_capacity: u64,
    admission: Option<FrequencySketch>,
    counters: Counters,
    metrics: Arc<nova_obs::Metrics>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("admission", &self.admission.is_some())
            .finish()
    }
}

impl BlockCache {
    /// Create a cache from the cluster configuration. Returns `None` when
    /// the configured capacity is zero (caching disabled).
    pub fn from_config(config: &CacheConfig) -> Option<Arc<BlockCache>> {
        Self::from_config_with_metrics(config, nova_obs::Metrics::disabled())
    }

    /// Like [`BlockCache::from_config`], with probe/fill latency recorded
    /// against [`nova_obs::Layer::Cache`] on the given metrics hub.
    pub fn from_config_with_metrics(
        config: &CacheConfig,
        metrics: Arc<nova_obs::Metrics>,
    ) -> Option<Arc<BlockCache>> {
        if !config.enabled() {
            return None;
        }
        Some(Arc::new(
            BlockCache::new(config.capacity_bytes, config.shards, config.admission).with_metrics(metrics),
        ))
    }

    /// Attach a metrics hub (builder style). Cache probes and fills record
    /// their latency against [`nova_obs::Layer::Cache`].
    pub fn with_metrics(mut self, metrics: Arc<nova_obs::Metrics>) -> BlockCache {
        self.metrics = metrics;
        self
    }

    /// Create a cache with `capacity_bytes` spread over `shards` shards.
    pub fn new(capacity_bytes: u64, shards: usize, admission: bool) -> BlockCache {
        let shards = shards.clamp(1, 1024).next_power_of_two();
        let per_shard_capacity = (capacity_bytes / shards as u64).max(1);
        let admission = if admission {
            // Size the sketch to roughly the number of 4 KB blocks the cache
            // can hold, with a floor that keeps tiny test caches honest.
            let blocks = (capacity_bytes / 4096).clamp(1024, 1 << 22) as usize;
            Some(FrequencySketch::with_capacity(blocks))
        } else {
            None
        };
        BlockCache {
            shards: (0..shards).map(|_| Mutex::new(LruShard::new())).collect(),
            shard_mask: shards as u64 - 1,
            per_shard_capacity,
            admission,
            counters: Counters::default(),
            metrics: nova_obs::Metrics::disabled(),
        }
    }

    fn shard_of(&self, hash: u64) -> &Mutex<LruShard> {
        &self.shards[(hash & self.shard_mask) as usize]
    }

    /// Look up a block, refreshing its recency (and its frequency estimate
    /// when admission is enabled).
    pub fn get(&self, key: &BlockKey) -> Option<Bytes> {
        let _timed = self.metrics.layer(nova_obs::Layer::Cache);
        let hash = key.hash();
        if let Some(sketch) = &self.admission {
            sketch.record(hash);
        }
        let found = self.shard_of(hash).lock().get(key);
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a block, evicting cold entries to stay under the shard budget.
    /// Blocks larger than a whole shard are never cached; when admission
    /// filtering is on, blocks colder than the would-be victim are rejected.
    pub fn insert(&self, key: BlockKey, block: Bytes) {
        let _timed = self.metrics.layer(nova_obs::Layer::Cache);
        let charge = block.len() as u64;
        if charge == 0 || charge > self.per_shard_capacity {
            return;
        }
        let hash = key.hash();
        let mut shard = self.shard_of(hash).lock();
        if shard.contains(&key) {
            // Another thread cached it between our miss and this insert;
            // keep the resident copy (identical bytes) and its recency.
            return;
        }
        if let Some(sketch) = &self.admission {
            // Admission: only displace resident blocks for a newcomer that is
            // at least as popular as the coldest victim it would evict.
            if shard.used_bytes() + charge > self.per_shard_capacity {
                if let Some(victim) = shard.peek_victim() {
                    if sketch.estimate(hash) < sketch.estimate(victim.hash()) {
                        self.counters.admission_rejects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }
        let evicted = shard.insert_evicting(key, block, self.per_shard_capacity);
        drop(shard);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        self.counters.inserted_bytes.fetch_add(charge, Ordering::Relaxed);
        self.counters.resident_blocks.fetch_add(1, Ordering::Relaxed);
        self.counters.resident_bytes.fetch_add(charge, Ordering::Relaxed);
        if evicted.count > 0 {
            self.counters
                .evictions
                .fetch_add(evicted.count, Ordering::Relaxed);
            self.counters
                .resident_blocks
                .fetch_sub(evicted.count, Ordering::Relaxed);
            self.counters
                .resident_bytes
                .fetch_sub(evicted.bytes, Ordering::Relaxed);
        }
    }

    /// Drop every cached block belonging to `file`. Called when a table is
    /// deleted after compaction so its StoC files' blocks stop occupying
    /// memory. (Correctness does not depend on this: StoC file ids are never
    /// reused, so stale entries can only waste space, not serve wrong data.)
    pub fn invalidate_file(&self, file: StocFileId) {
        let mut dropped_blocks = 0u64;
        let mut dropped_bytes = 0u64;
        for shard in &self.shards {
            let removed = shard.lock().remove_matching(|k| k.file == file);
            dropped_blocks += removed.count;
            dropped_bytes += removed.bytes;
        }
        if dropped_blocks > 0 {
            self.counters
                .invalidations
                .fetch_add(dropped_blocks, Ordering::Relaxed);
            self.counters
                .resident_blocks
                .fetch_sub(dropped_blocks, Ordering::Relaxed);
            self.counters
                .resident_bytes
                .fetch_sub(dropped_bytes, Ordering::Relaxed);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let removed = shard.lock().remove_matching(|_| true);
            self.counters
                .resident_blocks
                .fetch_sub(removed.count, Ordering::Relaxed);
            self.counters
                .resident_bytes
                .fetch_sub(removed.bytes, Ordering::Relaxed);
        }
    }

    /// Total configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.per_shard_capacity * self.shards.len() as u64
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A consistent-enough snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            inserted_bytes: self.counters.inserted_bytes.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            admission_rejects: self.counters.admission_rejects.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            resident_bytes: self.counters.resident_bytes.load(Ordering::Relaxed),
            resident_blocks: self.counters.resident_blocks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::StocId;

    fn key(stoc: u32, seq: u32, offset: u64) -> BlockKey {
        BlockKey::new(StocFileId::new(StocId(stoc), seq), offset)
    }

    fn block(len: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; len])
    }

    #[test]
    fn hit_miss_and_residency_accounting() {
        let cache = BlockCache::new(1 << 20, 4, false);
        assert_eq!(cache.get(&key(0, 1, 0)), None);
        cache.insert(key(0, 1, 0), block(100, 7));
        assert_eq!(cache.get(&key(0, 1, 0)).unwrap().as_ref(), &vec![7u8; 100][..]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.inserted_bytes, 100);
        assert_eq!(stats.resident_blocks, 1);
        assert_eq!(stats.resident_bytes, 100);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_charging_evicts_in_lru_order() {
        // One shard, capacity for exactly 4 blocks of 100 bytes.
        let cache = BlockCache::new(400, 1, false);
        for i in 0..4u64 {
            cache.insert(key(0, 1, i * 100), block(100, i as u8));
        }
        assert_eq!(cache.stats().resident_blocks, 4);
        // Touch blocks 0 and 1 so 2 is now the coldest.
        assert!(cache.get(&key(0, 1, 0)).is_some());
        assert!(cache.get(&key(0, 1, 100)).is_some());
        // Inserting a 5th block must evict exactly the coldest (block 2).
        cache.insert(key(0, 1, 900), block(100, 9));
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.get(&key(0, 1, 200)).is_none(),
            "coldest block must be the one evicted"
        );
        assert!(cache.get(&key(0, 1, 0)).is_some());
        assert!(cache.get(&key(0, 1, 300)).is_some());
        assert!(cache.get(&key(0, 1, 900)).is_some());
        assert_eq!(cache.stats().resident_bytes, 400);
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let cache = BlockCache::new(100, 1, false);
        cache.insert(key(0, 1, 0), block(101, 1));
        assert_eq!(cache.stats().resident_blocks, 0);
        cache.insert(key(0, 1, 0), block(100, 1));
        assert_eq!(cache.stats().resident_blocks, 1);
    }

    #[test]
    fn shard_distribution_spreads_keys() {
        let cache = BlockCache::new(16 << 20, 16, false);
        assert_eq!(cache.num_shards(), 16);
        for i in 0..4096u64 {
            cache.insert(key((i % 8) as u32, (i / 8) as u32, i * 4096), block(64, 0));
        }
        let occupancy: Vec<usize> = cache.shards.iter().map(|s| s.lock().len()).collect();
        assert_eq!(occupancy.iter().sum::<usize>(), 4096);
        // With 4096 keys over 16 shards every shard should see traffic, and
        // none should hold a wildly outsized share.
        assert!(
            occupancy.iter().all(|&n| n > 0),
            "some shard got no keys: {occupancy:?}"
        );
        assert!(
            occupancy.iter().all(|&n| n < 4096 / 4),
            "one shard swallowed a quarter of all keys: {occupancy:?}"
        );
    }

    #[test]
    fn admission_filter_protects_hot_blocks_from_one_touch_scans() {
        // One shard holding 4 blocks; admission on.
        let cache = BlockCache::new(400, 1, true);
        // Establish 4 hot blocks with several accesses each.
        for i in 0..4u64 {
            cache.insert(key(0, 1, i * 100), block(100, i as u8));
        }
        for _ in 0..8 {
            for i in 0..4u64 {
                assert!(cache.get(&key(0, 1, i * 100)).is_some());
            }
        }
        // A stream of one-touch blocks (a scan) must not displace them.
        for i in 10..30u64 {
            let k = key(0, 2, i * 100);
            assert!(cache.get(&k).is_none());
            cache.insert(k, block(100, 0));
        }
        for i in 0..4u64 {
            assert!(
                cache.get(&key(0, 1, i * 100)).is_some(),
                "hot block {i} was displaced by one-touch traffic"
            );
        }
        assert!(cache.stats().admission_rejects > 0);
    }

    #[test]
    fn repeated_cold_blocks_are_eventually_admitted() {
        let cache = BlockCache::new(200, 1, true);
        cache.insert(key(0, 1, 0), block(100, 1));
        cache.insert(key(0, 1, 100), block(100, 2));
        let newcomer = key(0, 9, 0);
        // Each get records a frequency sample; after a few rounds the
        // newcomer outranks the resident victims and gets in.
        for _ in 0..4 {
            let _ = cache.get(&newcomer);
        }
        cache.insert(newcomer, block(100, 3));
        assert!(
            cache.get(&newcomer).is_some(),
            "popular newcomer must eventually be admitted"
        );
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let cache = BlockCache::new(1 << 20, 4, false);
        for i in 0..10u64 {
            cache.insert(key(0, 1, i * 4096), block(100, 0));
            cache.insert(key(0, 2, i * 4096), block(100, 1));
        }
        cache.invalidate_file(StocFileId::new(StocId(0), 1));
        assert_eq!(cache.stats().resident_blocks, 10);
        assert_eq!(cache.stats().invalidations, 10);
        for i in 0..10u64 {
            assert!(cache.get(&key(0, 1, i * 4096)).is_none());
            assert!(cache.get(&key(0, 2, i * 4096)).is_some());
        }
        cache.clear();
        assert_eq!(cache.stats().resident_blocks, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn concurrent_hit_miss_counting_is_exact() {
        let cache = Arc::new(BlockCache::new(4 << 20, 8, false));
        // Pre-populate 64 blocks.
        for i in 0..64u64 {
            cache.insert(key(0, 1, i * 4096), block(128, 0));
        }
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for round in 0..1000u64 {
                        // Half the lookups hit (resident), half miss.
                        let hit = key(0, 1, ((round + t) % 64) * 4096);
                        let miss = key(9, 9, round * 4096);
                        assert!(cache.get(&hit).is_some());
                        assert!(cache.get(&miss).is_none());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 8 * 1000);
        assert_eq!(stats.misses, 8 * 1000);
    }

    #[test]
    fn zero_capacity_disables_cache_construction() {
        assert!(BlockCache::from_config(&CacheConfig::disabled()).is_none());
        assert!(BlockCache::from_config(&CacheConfig::default()).is_some());
    }
}
