//! A TinyLFU-style frequency sketch: a 4-row count-min sketch of 4-bit
//! counters with periodic halving, giving an O(1), lock-free estimate of how
//! often a block has been touched recently. Used by the cache's admission
//! policy to keep one-touch blocks (scans) from displacing the hot set.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const ROWS: usize = 4;
const COUNTER_MAX: u8 = 15;

/// A count-min sketch of recent access frequencies.
pub(crate) struct FrequencySketch {
    /// One flat table per row; each slot is a 4-bit-saturating counter stored
    /// in its own byte (simpler than packing and still 4 bytes per tracked
    /// block).
    rows: Vec<Vec<AtomicU8>>,
    mask: u64,
    /// Total increments since the last halving.
    samples: AtomicU64,
    /// Halve all counters once this many increments accumulate, so the
    /// sketch tracks *recent* popularity.
    sample_limit: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `entries` concurrently tracked blocks.
    pub fn with_capacity(entries: usize) -> FrequencySketch {
        let width = entries.next_power_of_two().max(64);
        FrequencySketch {
            rows: (0..ROWS)
                .map(|_| (0..width).map(|_| AtomicU8::new(0)).collect())
                .collect(),
            mask: width as u64 - 1,
            samples: AtomicU64::new(0),
            sample_limit: (entries as u64 * 8).max(1024),
        }
    }

    fn slots(&self, hash: u64) -> [usize; ROWS] {
        // Derive one index per row from independent mixes of the hash.
        let mut out = [0usize; ROWS];
        let mut h = hash | 1;
        for (i, slot) in out.iter_mut().enumerate() {
            h = h.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17 + i as u32);
            *slot = (h & self.mask) as usize;
        }
        out
    }

    /// Record one access.
    pub fn record(&self, hash: u64) {
        for (row, slot) in self.rows.iter().zip(self.slots(hash)) {
            // Saturating increment; a lost race undercounts by at most one.
            let current = row[slot].load(Ordering::Relaxed);
            if current < COUNTER_MAX {
                let _ = row[slot].compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        if self.samples.fetch_add(1, Ordering::Relaxed) + 1 >= self.sample_limit {
            self.halve();
        }
    }

    /// Estimate the recent access count of a block (min across rows).
    pub fn estimate(&self, hash: u64) -> u8 {
        self.rows
            .iter()
            .zip(self.slots(hash))
            .map(|(row, slot)| row[slot].load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Age the sketch: halve every counter and reset the sample clock.
    fn halve(&self) {
        self.samples.store(0, Ordering::Relaxed);
        for row in &self.rows {
            for counter in row {
                // fetch_update keeps concurrent increments from being lost
                // beyond a factor-of-two error, which the policy tolerates.
                let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c / 2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_recorded_frequency() {
        let sketch = FrequencySketch::with_capacity(1024);
        for _ in 0..10 {
            sketch.record(42);
        }
        sketch.record(7);
        assert!(sketch.estimate(42) >= 8, "hot key must estimate high");
        assert!(sketch.estimate(7) <= 2, "cold key must estimate low");
        assert_eq!(sketch.estimate(999_999), 0);
    }

    #[test]
    fn counters_saturate_and_halve() {
        let sketch = FrequencySketch::with_capacity(64);
        for _ in 0..100 {
            sketch.record(1);
        }
        assert_eq!(sketch.estimate(1), COUNTER_MAX);
        sketch.halve();
        assert_eq!(sketch.estimate(1), COUNTER_MAX / 2);
    }
}
