//! The SSTable builder.
//!
//! A table is built from entries added in internal-key order and produces:
//!
//! * ρ *data fragments* — contiguous runs of data blocks, each fragment
//!   destined for a different StoC (Section 4.4);
//! * one *metadata block* containing the index block (whose values are
//!   [`BlockLocation`]s into the fragments), the bloom filter over user keys,
//!   and table properties; the LTC replicates this small block when the
//!   availability policy asks for it (Section 4.4.1).
//!
//! The physical placement of fragments is decided later by the LTC's
//! placement policy; the builder only decides the *logical* split.

use crate::block::BlockBuilder;
use crate::bloom::BloomFilter;
use crate::handle::BlockLocation;
use nova_common::types::Entry;
use nova_common::varint::{
    decode_fixed32, decode_fixed64, decode_length_prefixed_slice, decode_varint64, put_fixed32, put_fixed64,
    put_length_prefixed_slice, put_varint64,
};
use nova_common::{Error, Result};

/// Magic number terminating the metadata block ("NOVALSM!").
pub const META_MAGIC: u64 = 0x4e4f_5641_4c53_4d21;

/// Tuning parameters for table construction.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Target uncompressed size of a data block.
    pub block_size: usize,
    /// Bloom filter bits per user key (0 disables the filter).
    pub bloom_bits_per_key: usize,
    /// Number of fragments (ρ) to split the data blocks across.
    pub num_fragments: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_size: 4096,
            bloom_bits_per_key: 10,
            num_fragments: 1,
        }
    }
}

/// Properties describing a finished table, persisted inside the metadata
/// block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableProperties {
    /// Number of entries (versions).
    pub num_entries: u64,
    /// Total bytes across all data fragments.
    pub data_size: u64,
    /// Number of data blocks.
    pub num_data_blocks: u64,
    /// Smallest user key.
    pub smallest: Vec<u8>,
    /// Largest user key.
    pub largest: Vec<u8>,
    /// Size of each fragment in bytes.
    pub fragment_sizes: Vec<u64>,
}

impl TableProperties {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint64(&mut out, self.num_entries);
        put_varint64(&mut out, self.data_size);
        put_varint64(&mut out, self.num_data_blocks);
        put_length_prefixed_slice(&mut out, &self.smallest);
        put_length_prefixed_slice(&mut out, &self.largest);
        put_varint64(&mut out, self.fragment_sizes.len() as u64);
        for &s in &self.fragment_sizes {
            put_varint64(&mut out, s);
        }
        out
    }

    fn decode(src: &[u8]) -> Result<TableProperties> {
        let mut n = 0;
        let (num_entries, c) = decode_varint64(&src[n..])?;
        n += c;
        let (data_size, c) = decode_varint64(&src[n..])?;
        n += c;
        let (num_data_blocks, c) = decode_varint64(&src[n..])?;
        n += c;
        let (smallest, c) = decode_length_prefixed_slice(&src[n..])?;
        let smallest = smallest.to_vec();
        n += c;
        let (largest, c) = decode_length_prefixed_slice(&src[n..])?;
        let largest = largest.to_vec();
        n += c;
        let (count, c) = decode_varint64(&src[n..])?;
        n += c;
        let mut fragment_sizes = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (s, c) = decode_varint64(&src[n..])?;
            fragment_sizes.push(s);
            n += c;
        }
        Ok(TableProperties {
            num_entries,
            data_size,
            num_data_blocks,
            smallest,
            largest,
            fragment_sizes,
        })
    }
}

/// The output of [`TableBuilder::finish`]: fragment payloads plus the
/// metadata block, ready to be written to StoCs.
#[derive(Debug, Clone)]
pub struct BuiltTable {
    /// One payload per fragment (ρ entries).
    pub fragments: Vec<Vec<u8>>,
    /// The serialized metadata block (index + filter + properties + footer).
    pub meta: Vec<u8>,
    /// Table properties (also embedded in `meta`).
    pub properties: TableProperties,
}

impl BuiltTable {
    /// Compute the parity block for the data fragments: a byte-wise XOR of
    /// all fragments padded to the longest fragment (Section 4.4.1). With any
    /// single fragment missing, XOR-ing the parity with the survivors
    /// reconstructs it.
    pub fn parity_block(&self) -> Vec<u8> {
        parity_of(&self.fragments)
    }
}

/// XOR-parity over a set of byte strings (padded to the longest).
pub fn parity_of<T: AsRef<[u8]>>(fragments: &[T]) -> Vec<u8> {
    let max_len = fragments.iter().map(|f| f.as_ref().len()).max().unwrap_or(0);
    let mut parity = vec![0u8; max_len];
    for f in fragments {
        for (p, &b) in parity.iter_mut().zip(f.as_ref().iter()) {
            *p ^= b;
        }
    }
    parity
}

/// Reconstruct a missing fragment of length `missing_len` from the parity
/// block and the surviving fragments.
pub fn reconstruct_from_parity<T: AsRef<[u8]>>(
    parity: &[u8],
    survivors: &[T],
    missing_len: usize,
) -> Vec<u8> {
    let mut out = parity.to_vec();
    for f in survivors {
        for (o, &b) in out.iter_mut().zip(f.as_ref().iter()) {
            *o ^= b;
        }
    }
    out.truncate(missing_len);
    out
}

/// Builds one SSTable from entries supplied in internal-key order.
#[derive(Debug)]
pub struct TableBuilder {
    options: TableOptions,
    current: BlockBuilder,
    /// Finished data blocks and the last internal key of each.
    finished: Vec<(Vec<u8>, Vec<u8>)>,
    user_keys: Vec<Vec<u8>>,
    properties: TableProperties,
    last_internal_key: Vec<u8>,
}

impl TableBuilder {
    /// Create a builder with the given options.
    pub fn new(options: TableOptions) -> Self {
        assert!(options.num_fragments >= 1, "a table needs at least one fragment");
        TableBuilder {
            options,
            current: BlockBuilder::new(),
            finished: Vec::new(),
            user_keys: Vec::new(),
            properties: TableProperties::default(),
            last_internal_key: Vec::new(),
        }
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.properties.num_entries
    }

    /// Estimated size of the finished data fragments so far.
    pub fn estimated_size(&self) -> usize {
        self.finished.iter().map(|(_, b)| b.len()).sum::<usize>() + self.current.current_size_estimate()
    }

    /// Add an entry. Entries must be added in ascending internal-key order.
    pub fn add(&mut self, entry: &Entry) {
        let ikey = entry.internal_key().encoded().to_vec();
        debug_assert!(
            self.last_internal_key.is_empty()
                || nova_common::types::compare_internal_keys(&self.last_internal_key, &ikey)
                    != std::cmp::Ordering::Greater,
            "entries must be added in internal-key order"
        );
        if self.properties.num_entries == 0 {
            self.properties.smallest = entry.key.to_vec();
        }
        self.properties.largest = entry.key.to_vec();
        if self.user_keys.last().map(|k| k.as_slice()) != Some(entry.key.as_ref()) {
            self.user_keys.push(entry.key.to_vec());
        }
        self.current.add(&ikey, &entry.value);
        self.last_internal_key = ikey;
        self.properties.num_entries += 1;
        if self.current.current_size_estimate() >= self.options.block_size {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let builder = std::mem::take(&mut self.current);
        let block = builder.finish();
        self.finished.push((self.last_internal_key.clone(), block));
    }

    /// Finish the table.
    pub fn finish(mut self) -> Result<BuiltTable> {
        self.flush_block();
        if self.finished.is_empty() {
            return Err(Error::InvalidArgument("cannot build an empty SSTable".into()));
        }
        self.properties.num_data_blocks = self.finished.len() as u64;
        let total_bytes: usize = self.finished.iter().map(|(_, b)| b.len()).sum();
        self.properties.data_size = total_bytes as u64;

        // Split the data blocks into `num_fragments` contiguous groups of
        // roughly equal byte size.
        let num_fragments = self.options.num_fragments.min(self.finished.len()).max(1);
        let target = total_bytes.div_ceil(num_fragments);
        let mut fragments: Vec<Vec<u8>> = vec![Vec::new(); num_fragments];
        let mut index = BlockBuilder::new();
        let mut fragment_idx = 0usize;
        for (last_key, block) in &self.finished {
            if fragments[fragment_idx].len() + block.len() > target
                && !fragments[fragment_idx].is_empty()
                && fragment_idx + 1 < num_fragments
            {
                fragment_idx += 1;
            }
            let location = BlockLocation {
                fragment: fragment_idx as u32,
                offset: fragments[fragment_idx].len() as u64,
                size: block.len() as u32,
            };
            fragments[fragment_idx].extend_from_slice(block);
            index.add(last_key, &location.encode());
        }
        self.properties.fragment_sizes = fragments.iter().map(|f| f.len() as u64).collect();

        // Metadata block: [index][filter][properties][footer].
        let index_block = index.finish();
        let filter = if self.options.bloom_bits_per_key > 0 {
            let refs: Vec<&[u8]> = self.user_keys.iter().map(|k| k.as_slice()).collect();
            BloomFilter::build(&refs, self.options.bloom_bits_per_key).encode()
        } else {
            Vec::new()
        };
        let props = self.properties.encode();

        let mut meta = Vec::with_capacity(index_block.len() + filter.len() + props.len() + 44);
        let index_offset = 0u64;
        meta.extend_from_slice(&index_block);
        let filter_offset = meta.len() as u64;
        meta.extend_from_slice(&filter);
        let props_offset = meta.len() as u64;
        meta.extend_from_slice(&props);
        // Footer.
        put_fixed64(&mut meta, index_offset);
        put_fixed32(&mut meta, index_block.len() as u32);
        put_fixed64(&mut meta, filter_offset);
        put_fixed32(&mut meta, filter.len() as u32);
        put_fixed64(&mut meta, props_offset);
        put_fixed32(&mut meta, props.len() as u32);
        put_fixed64(&mut meta, META_MAGIC);

        Ok(BuiltTable {
            fragments,
            meta,
            properties: self.properties,
        })
    }
}

/// The decoded footer of a metadata block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaFooter {
    /// Extent of the index block within the metadata buffer.
    pub index: (u64, u32),
    /// Extent of the bloom filter within the metadata buffer.
    pub filter: (u64, u32),
    /// Extent of the properties within the metadata buffer.
    pub properties: (u64, u32),
}

/// Footer length in bytes.
pub const FOOTER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 4 + 8;

impl MetaFooter {
    /// Decode the footer from the tail of a metadata buffer.
    pub fn decode(meta: &[u8]) -> Result<MetaFooter> {
        if meta.len() < FOOTER_LEN {
            return Err(Error::Corruption("metadata block too small for footer".into()));
        }
        let f = &meta[meta.len() - FOOTER_LEN..];
        let magic = decode_fixed64(&f[36..])?;
        if magic != META_MAGIC {
            return Err(Error::Corruption(format!("bad metadata magic {magic:#x}")));
        }
        Ok(MetaFooter {
            index: (decode_fixed64(&f[0..])?, decode_fixed32(&f[8..])?),
            filter: (decode_fixed64(&f[12..])?, decode_fixed32(&f[20..])?),
            properties: (decode_fixed64(&f[24..])?, decode_fixed32(&f[32..])?),
        })
    }
}

/// Decode the [`TableProperties`] from a metadata buffer.
pub fn decode_properties(meta: &[u8]) -> Result<TableProperties> {
    let footer = MetaFooter::decode(meta)?;
    let (off, len) = footer.properties;
    let (off, len) = (off as usize, len as usize);
    if off + len > meta.len() {
        return Err(Error::Corruption("properties extent out of bounds".into()));
    }
    TableProperties::decode(&meta[off..off + len])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                Entry::put(
                    format!("key-{i:06}").into_bytes(),
                    i + 1,
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn build(n: u64, options: TableOptions) -> BuiltTable {
        let mut b = TableBuilder::new(options);
        for e in entries(n) {
            b.add(&e);
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_fragments_and_meta() {
        let t = build(
            1000,
            TableOptions {
                block_size: 1024,
                bloom_bits_per_key: 10,
                num_fragments: 3,
            },
        );
        assert_eq!(t.fragments.len(), 3);
        assert_eq!(t.properties.num_entries, 1000);
        assert_eq!(t.properties.smallest, b"key-000000".to_vec());
        assert_eq!(t.properties.largest, b"key-000999".to_vec());
        assert_eq!(t.properties.fragment_sizes.len(), 3);
        let total: u64 = t.properties.fragment_sizes.iter().sum();
        assert_eq!(total, t.properties.data_size);
        // Fragments are roughly balanced (within a block of one another).
        let min = *t.properties.fragment_sizes.iter().min().unwrap();
        let max = *t.properties.fragment_sizes.iter().max().unwrap();
        assert!(
            max - min <= 2048,
            "fragments unbalanced: {:?}",
            t.properties.fragment_sizes
        );
    }

    #[test]
    fn empty_table_is_an_error() {
        let b = TableBuilder::new(TableOptions::default());
        assert!(b.finish().is_err());
    }

    #[test]
    fn more_fragments_than_blocks_is_clamped() {
        let t = build(
            3,
            TableOptions {
                block_size: 1 << 20,
                bloom_bits_per_key: 10,
                num_fragments: 8,
            },
        );
        // Only one data block exists, so only one fragment can be produced.
        assert_eq!(t.fragments.len(), 1);
    }

    #[test]
    fn footer_and_properties_round_trip() {
        let t = build(
            500,
            TableOptions {
                block_size: 512,
                bloom_bits_per_key: 8,
                num_fragments: 2,
            },
        );
        let footer = MetaFooter::decode(&t.meta).unwrap();
        assert!(footer.index.1 > 0);
        assert!(footer.filter.1 > 0);
        let props = decode_properties(&t.meta).unwrap();
        assert_eq!(props, t.properties);
    }

    #[test]
    fn footer_rejects_corruption() {
        let t = build(10, TableOptions::default());
        let mut meta = t.meta.clone();
        let n = meta.len();
        meta[n - 1] ^= 0xff;
        assert!(MetaFooter::decode(&meta).is_err());
        assert!(MetaFooter::decode(&meta[..10]).is_err());
    }

    #[test]
    fn parity_reconstructs_any_single_fragment() {
        let t = build(
            2000,
            TableOptions {
                block_size: 512,
                bloom_bits_per_key: 10,
                num_fragments: 4,
            },
        );
        let parity = t.parity_block();
        for missing in 0..t.fragments.len() {
            let survivors: Vec<&Vec<u8>> = t
                .fragments
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, f)| f)
                .collect();
            let rebuilt = reconstruct_from_parity(&parity, &survivors, t.fragments[missing].len());
            assert_eq!(
                rebuilt, t.fragments[missing],
                "fragment {missing} must be reconstructible"
            );
        }
    }

    #[test]
    fn estimated_size_grows() {
        let mut b = TableBuilder::new(TableOptions::default());
        let before = b.estimated_size();
        for e in entries(100) {
            b.add(&e);
        }
        assert!(b.estimated_size() > before);
        assert_eq!(b.num_entries(), 100);
    }

    #[test]
    fn single_fragment_layout() {
        let t = build(
            200,
            TableOptions {
                block_size: 1024,
                bloom_bits_per_key: 0,
                num_fragments: 1,
            },
        );
        assert_eq!(t.fragments.len(), 1);
        assert_eq!(t.properties.fragment_sizes[0] as usize, t.fragments[0].len());
        // Bloom disabled: the filter extent is empty but the footer still parses.
        let footer = MetaFooter::decode(&t.meta).unwrap();
        assert_eq!(footer.filter.1, 0);
    }
}
