//! Prefix-compressed blocks with restart points — the unit of storage inside
//! an SSTable, in the same format LevelDB uses.
//!
//! A block is a sequence of records
//! `[shared][non_shared][value_len][key_delta][value]` (all lengths varint)
//! followed by an array of restart offsets and the restart count, and finally
//! a masked CRC32C of everything before it. Keys are encoded internal keys.

use nova_common::checksum;
use nova_common::types::compare_internal_keys;
use nova_common::varint::{decode_fixed32, decode_varint32, put_fixed32, put_varint32};
use nova_common::{Error, Result};

/// Number of keys between restart points.
pub const RESTART_INTERVAL: usize = 16;

/// Builds a block from keys added in sorted (internal-key) order.
#[derive(Debug)]
pub struct BlockBuilder {
    buffer: Vec<u8>,
    restarts: Vec<u32>,
    counter: usize,
    last_key: Vec<u8>,
    num_entries: usize,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        BlockBuilder {
            buffer: Vec::new(),
            restarts: vec![0],
            counter: 0,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Append an entry; `key` must be `>=` every previously added key.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.num_entries == 0 || key >= self.last_key.as_slice() || {
                // Internal keys may compare differently from raw bytes only in
                // the trailer; enforce the internal-key order instead.
                compare_internal_keys(&self.last_key, key) != std::cmp::Ordering::Greater
            },
            "keys must be added to a block in sorted order"
        );
        let mut shared = 0;
        if self.counter < RESTART_INTERVAL {
            let min_len = self.last_key.len().min(key.len());
            while shared < min_len && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buffer.len() as u32);
            self.counter = 0;
        }
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buffer, shared as u32);
        put_varint32(&mut self.buffer, non_shared as u32);
        put_varint32(&mut self.buffer, value.len() as u32);
        self.buffer.extend_from_slice(&key[shared..]);
        self.buffer.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.num_entries += 1;
    }

    /// Estimated size of the finished block.
    pub fn current_size_estimate(&self) -> usize {
        self.buffer.len() + self.restarts.len() * 4 + 4 + 4
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Finish the block, returning its serialized bytes (including the
    /// restart array and trailing checksum).
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed32(&mut self.buffer, r);
        }
        put_fixed32(&mut self.buffer, self.restarts.len() as u32);
        let crc = checksum::mask(checksum::crc32c(&self.buffer));
        put_fixed32(&mut self.buffer, crc);
        self.buffer
    }
}

/// A decoded, immutable block.
#[derive(Debug, Clone)]
pub struct Block {
    data: Vec<u8>,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parse a serialized block, verifying its checksum.
    pub fn decode(data: &[u8]) -> Result<Block> {
        if data.len() < 12 {
            return Err(Error::Corruption("block too small".into()));
        }
        let payload_len = data.len() - 4;
        let stored_crc = checksum::unmask(decode_fixed32(&data[payload_len..])?);
        let actual_crc = checksum::crc32c(&data[..payload_len]);
        if stored_crc != actual_crc {
            return Err(Error::Corruption(format!(
                "block checksum mismatch: stored {stored_crc:#x}, computed {actual_crc:#x}"
            )));
        }
        let num_restarts = decode_fixed32(&data[payload_len - 4..])? as usize;
        let restarts_offset = payload_len
            .checked_sub(4 + num_restarts * 4)
            .ok_or_else(|| Error::Corruption("restart array larger than block".into()))?;
        Ok(Block {
            data: data[..payload_len].to_vec(),
            restarts_offset,
            num_restarts,
        })
    }

    fn restart_point(&self, index: usize) -> usize {
        let off = self.restarts_offset + index * 4;
        decode_fixed32(&self.data[off..]).expect("restart offsets validated at decode time") as usize
    }

    /// Number of restart points.
    pub fn num_restarts(&self) -> usize {
        self.num_restarts
    }

    /// Create an iterator over the block.
    pub fn iter(&self) -> BlockIterator<'_> {
        BlockIterator {
            block: self,
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }
}

/// Iterator over a decoded block. Keys are the raw (internal) keys stored in
/// the block; interpreting them is up to the caller.
#[derive(Debug)]
pub struct BlockIterator<'a> {
    block: &'a Block,
    /// Offset of the *next* record to parse.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl<'a> BlockIterator<'a> {
    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// The key at the current position.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// The value at the current position.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.offset = 0;
        self.key.clear();
        self.valid = false;
        self.parse_next()
    }

    /// Position at the first entry whose key is `>= target` in internal-key
    /// order.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        // Binary search restart points for the last restart whose key < target.
        let mut left = 0usize;
        let mut right = self.block.num_restarts.saturating_sub(1);
        while left < right {
            let mid = (left + right).div_ceil(2);
            let offset = self.block.restart_point(mid);
            let key = self.key_at_restart(offset)?;
            if compare_internal_keys(&key, target) == std::cmp::Ordering::Less {
                left = mid;
            } else {
                right = mid - 1;
            }
        }
        self.offset = self.block.restart_point(left);
        self.key.clear();
        self.valid = false;
        // Linear scan forward.
        loop {
            self.parse_next()?;
            if !self.valid {
                return Ok(());
            }
            if compare_internal_keys(&self.key, target) != std::cmp::Ordering::Less {
                return Ok(());
            }
        }
    }

    /// Advance to the next entry.
    #[allow(clippy::should_implement_trait)] // fallible cursor advance, not an Iterator
    pub fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        self.parse_next()
    }

    fn key_at_restart(&self, offset: usize) -> Result<Vec<u8>> {
        let data = &self.block.data[..self.block.restarts_offset];
        let mut cursor = offset;
        let (shared, n) = decode_varint32(&data[cursor..])?;
        if shared != 0 {
            return Err(Error::Corruption("restart point entry has shared bytes".into()));
        }
        cursor += n;
        let (non_shared, n) = decode_varint32(&data[cursor..])?;
        cursor += n;
        let (_value_len, n) = decode_varint32(&data[cursor..])?;
        cursor += n;
        if cursor + non_shared as usize > data.len() {
            return Err(Error::Corruption("restart entry key extends past block".into()));
        }
        Ok(data[cursor..cursor + non_shared as usize].to_vec())
    }

    fn parse_next(&mut self) -> Result<()> {
        let data = &self.block.data[..self.block.restarts_offset];
        if self.offset >= data.len() {
            self.valid = false;
            return Ok(());
        }
        let mut cursor = self.offset;
        let (shared, n) = decode_varint32(&data[cursor..])?;
        cursor += n;
        let (non_shared, n) = decode_varint32(&data[cursor..])?;
        cursor += n;
        let (value_len, n) = decode_varint32(&data[cursor..])?;
        cursor += n;
        let shared = shared as usize;
        let non_shared = non_shared as usize;
        let value_len = value_len as usize;
        if shared > self.key.len() || cursor + non_shared + value_len > data.len() {
            return Err(Error::Corruption("malformed block entry".into()));
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[cursor..cursor + non_shared]);
        cursor += non_shared;
        self.value_range = (cursor, cursor + value_len);
        cursor += value_len;
        self.offset = cursor;
        self.valid = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::types::{InternalKey, ValueType};
    use proptest::prelude::*;

    fn ikey(user: &[u8], seq: u64) -> Vec<u8> {
        InternalKey::new(user, seq, ValueType::Value).encoded().to_vec()
    }

    #[test]
    fn empty_block_round_trips() {
        let block = Block::decode(&BlockBuilder::new().finish()).unwrap();
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert!(!it.valid());
        it.seek(&ikey(b"x", 1)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn build_and_iterate() {
        let mut b = BlockBuilder::new();
        let keys: Vec<Vec<u8>> = (0..100)
            .map(|i| ikey(format!("key-{i:04}").as_bytes(), 1))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            b.add(k, format!("value-{i}").as_bytes());
        }
        assert_eq!(b.num_entries(), 100);
        assert!(b.current_size_estimate() > 0);
        let block = Block::decode(&b.finish()).unwrap();
        assert!(block.num_restarts() >= 100 / RESTART_INTERVAL);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert!(it.valid());
            assert_eq!(it.key(), &k[..]);
            assert_eq!(it.value(), format!("value-{i}").as_bytes());
            it.next().unwrap();
        }
        assert!(!it.valid());
    }

    #[test]
    fn seek_finds_exact_and_following_keys() {
        let mut b = BlockBuilder::new();
        for i in (0..100).step_by(2) {
            b.add(&ikey(format!("k{i:04}").as_bytes(), 5), b"v");
        }
        let block = Block::decode(&b.finish()).unwrap();
        let mut it = block.iter();
        // Exact key.
        it.seek(&ikey(b"k0010", 5)).unwrap();
        assert!(it.valid());
        assert_eq!(&it.key()[..5], b"k0010");
        // Key between entries seeks to the next one.
        it.seek(&ikey(b"k0011", 5)).unwrap();
        assert!(it.valid());
        assert_eq!(&it.key()[..5], b"k0012");
        // Past the end.
        it.seek(&ikey(b"k9999", 5)).unwrap();
        assert!(!it.valid());
        // Before the start.
        it.seek(&ikey(b"a", 5)).unwrap();
        assert!(it.valid());
        assert_eq!(&it.key()[..5], b"k0000");
    }

    #[test]
    fn corruption_is_detected() {
        let mut b = BlockBuilder::new();
        b.add(&ikey(b"k", 1), b"v");
        let mut data = b.finish();
        // Flip a byte in the payload.
        data[0] ^= 0xff;
        assert!(matches!(Block::decode(&data), Err(Error::Corruption(_))));
        // Truncated block.
        assert!(Block::decode(&data[..4]).is_err());
    }

    #[test]
    fn same_user_key_versions_are_ordered_newest_first() {
        let mut b = BlockBuilder::new();
        b.add(&ikey(b"k", 9), b"newest");
        b.add(&ikey(b"k", 5), b"middle");
        b.add(&ikey(b"k", 1), b"oldest");
        let block = Block::decode(&b.finish()).unwrap();
        let mut it = block.iter();
        // Seeking at a snapshot of 6 should skip the version at 9.
        it.seek(&ikey(b"k", 6)).unwrap();
        assert!(it.valid());
        assert_eq!(it.value(), b"middle");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_round_trip(user_keys in proptest::collection::btree_set(proptest::collection::vec(any::<u8>(), 1..24), 1..120)) {
            let keys: Vec<Vec<u8>> = user_keys.iter().map(|k| ikey(k, 7)).collect();
            let mut b = BlockBuilder::new();
            for (i, k) in keys.iter().enumerate() {
                b.add(k, format!("{i}").as_bytes());
            }
            let block = Block::decode(&b.finish()).unwrap();
            let mut it = block.iter();
            it.seek_to_first().unwrap();
            let mut count = 0;
            while it.valid() {
                prop_assert_eq!(it.key(), &keys[count][..]);
                count += 1;
                it.next().unwrap();
            }
            prop_assert_eq!(count, keys.len());
            // Every key can be found by seeking for it.
            for k in &keys {
                it.seek(k).unwrap();
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), &k[..]);
            }
        }
    }
}
