//! Block locations, fragment descriptors and SSTable metadata.
//!
//! An SSTable's data blocks are partitioned into ρ *fragments*, each written
//! to a different StoC (Section 4.4, Figure 9). The index block therefore
//! addresses blocks by `(fragment, offset within fragment, size)` — a
//! [`BlockLocation`] — and the table's metadata ([`SstableMeta`]) records
//! where each fragment (and its replicas / parity block / metadata-block
//! replicas) physically lives as [`StocBlockHandle`]s.

use nova_common::varint::{
    decode_length_prefixed_slice, decode_varint32, decode_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use nova_common::{Error, FileNumber, Result, StocBlockHandle, StocFileId, StocId};

/// The location of one block within the logical fragment layout of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockLocation {
    /// Index of the fragment containing the block.
    pub fragment: u32,
    /// Byte offset within the fragment.
    pub offset: u64,
    /// Size of the block in bytes.
    pub size: u32,
}

impl BlockLocation {
    /// Serialize into `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint32(dst, self.fragment);
        put_varint64(dst, self.offset);
        put_varint32(dst, self.size);
    }

    /// Serialize into a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        self.encode_to(&mut out);
        out
    }

    /// Decode from the front of `src`, returning the location and bytes
    /// consumed.
    pub fn decode(src: &[u8]) -> Result<(BlockLocation, usize)> {
        let (fragment, a) = decode_varint32(src)?;
        let (offset, b) = decode_varint64(&src[a..])?;
        let (size, c) = decode_varint32(&src[a + b..])?;
        Ok((
            BlockLocation {
                fragment,
                offset,
                size,
            },
            a + b + c,
        ))
    }
}

/// Helpers for encoding a [`StocBlockHandle`].
pub fn encode_stoc_handle(dst: &mut Vec<u8>, h: &StocBlockHandle) {
    put_varint32(dst, h.stoc.0);
    put_varint64(dst, h.file.0);
    put_varint64(dst, h.offset);
    put_varint32(dst, h.size);
}

/// Decode a [`StocBlockHandle`] from the front of `src`.
pub fn decode_stoc_handle(src: &[u8]) -> Result<(StocBlockHandle, usize)> {
    let (stoc, a) = decode_varint32(src)?;
    let (file, b) = decode_varint64(&src[a..])?;
    let (offset, c) = decode_varint64(&src[a + b..])?;
    let (size, d) = decode_varint32(&src[a + b + c..])?;
    Ok((
        StocBlockHandle {
            stoc: StocId(stoc),
            file: StocFileId(file),
            offset,
            size,
        },
        a + b + c + d,
    ))
}

/// Where one data fragment of an SSTable lives: its size plus the handle of
/// every replica (the first entry is the primary copy).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FragmentLocation {
    /// Fragment size in bytes.
    pub size: u64,
    /// Primary handle followed by replica handles.
    pub replicas: Vec<StocBlockHandle>,
}

impl FragmentLocation {
    /// The primary replica's handle, if the fragment has been placed.
    pub fn primary(&self) -> Option<&StocBlockHandle> {
        self.replicas.first()
    }

    fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.size);
        put_varint32(dst, self.replicas.len() as u32);
        for r in &self.replicas {
            encode_stoc_handle(dst, r);
        }
    }

    fn decode(src: &[u8]) -> Result<(FragmentLocation, usize)> {
        let (size, mut n) = decode_varint64(src)?;
        let (count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut replicas = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (h, c) = decode_stoc_handle(&src[n..])?;
            replicas.push(h);
            n += c;
        }
        Ok((FragmentLocation { size, replicas }, n))
    }
}

/// Complete metadata describing one SSTable: enough to read it (via its
/// metadata block and fragment handles) and enough for the MANIFEST to
/// reconstruct the LSM-tree after a crash (Section 4.5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SstableMeta {
    /// File number, unique within the owning range.
    pub file_number: FileNumber,
    /// Level of the tree the table belongs to.
    pub level: u32,
    /// Smallest user key contained in the table.
    pub smallest: Vec<u8>,
    /// Largest user key contained in the table.
    pub largest: Vec<u8>,
    /// Number of entries (versions) stored.
    pub num_entries: u64,
    /// Total bytes of data-block fragments.
    pub data_size: u64,
    /// Per-fragment physical locations.
    pub fragments: Vec<FragmentLocation>,
    /// Replicas of the metadata block (index + bloom filter + properties).
    pub meta_blocks: Vec<StocBlockHandle>,
    /// The parity block, when the availability policy computes one.
    pub parity: Option<StocBlockHandle>,
    /// The Drange that produced this Level-0 table, if any. Level-0 tables
    /// from different Dranges are mutually exclusive in key space and may be
    /// compacted in parallel (Section 4.3).
    pub drange: Option<u32>,
}

impl SstableMeta {
    /// True if the table's key range overlaps `[smallest, largest]` (user
    /// keys, inclusive bounds).
    pub fn overlaps(&self, smallest: &[u8], largest: &[u8]) -> bool {
        !(self.largest.as_slice() < smallest || self.smallest.as_slice() > largest)
    }

    /// True if `user_key` lies within the table's key range.
    pub fn contains_key(&self, user_key: &[u8]) -> bool {
        self.smallest.as_slice() <= user_key && user_key <= self.largest.as_slice()
    }

    /// Total physical bytes consumed including replicas and parity.
    pub fn physical_bytes(&self) -> u64 {
        let fragment_bytes: u64 = self
            .fragments
            .iter()
            .map(|f| f.size * f.replicas.len().max(1) as u64)
            .sum();
        let parity_bytes = self.parity.map(|p| p.size as u64).unwrap_or(0);
        let meta_bytes: u64 = self.meta_blocks.iter().map(|m| m.size as u64).sum();
        fragment_bytes + parity_bytes + meta_bytes
    }

    /// The set of StoCs that hold any piece of this table.
    pub fn stocs(&self) -> Vec<StocId> {
        let mut out: Vec<StocId> = self
            .fragments
            .iter()
            .flat_map(|f| f.replicas.iter().map(|h| h.stoc))
            .chain(self.meta_blocks.iter().map(|h| h.stoc))
            .chain(self.parity.iter().map(|h| h.stoc))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Serialize for inclusion in a MANIFEST record or an RPC payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint64(&mut out, self.file_number);
        put_varint32(&mut out, self.level);
        put_length_prefixed_slice(&mut out, &self.smallest);
        put_length_prefixed_slice(&mut out, &self.largest);
        put_varint64(&mut out, self.num_entries);
        put_varint64(&mut out, self.data_size);
        put_varint32(&mut out, self.fragments.len() as u32);
        for f in &self.fragments {
            f.encode_to(&mut out);
        }
        put_varint32(&mut out, self.meta_blocks.len() as u32);
        for m in &self.meta_blocks {
            encode_stoc_handle(&mut out, m);
        }
        match &self.parity {
            Some(p) => {
                out.push(1);
                encode_stoc_handle(&mut out, p);
            }
            None => out.push(0),
        }
        match self.drange {
            Some(d) => {
                out.push(1);
                put_varint32(&mut out, d);
            }
            None => out.push(0),
        }
        out
    }

    /// Decode a table description, returning it and the bytes consumed.
    pub fn decode(src: &[u8]) -> Result<(SstableMeta, usize)> {
        let mut n = 0usize;
        let (file_number, c) = decode_varint64(&src[n..])?;
        n += c;
        let (level, c) = decode_varint32(&src[n..])?;
        n += c;
        let (smallest, c) = decode_length_prefixed_slice(&src[n..])?;
        let smallest = smallest.to_vec();
        n += c;
        let (largest, c) = decode_length_prefixed_slice(&src[n..])?;
        let largest = largest.to_vec();
        n += c;
        let (num_entries, c) = decode_varint64(&src[n..])?;
        n += c;
        let (data_size, c) = decode_varint64(&src[n..])?;
        n += c;
        let (frag_count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut fragments = Vec::with_capacity(frag_count as usize);
        for _ in 0..frag_count {
            let (f, c) = FragmentLocation::decode(&src[n..])?;
            fragments.push(f);
            n += c;
        }
        let (meta_count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut meta_blocks = Vec::with_capacity(meta_count as usize);
        for _ in 0..meta_count {
            let (h, c) = decode_stoc_handle(&src[n..])?;
            meta_blocks.push(h);
            n += c;
        }
        let flag = *src
            .get(n)
            .ok_or_else(|| Error::Corruption("truncated SstableMeta".into()))?;
        n += 1;
        let parity = if flag == 1 {
            let (h, c) = decode_stoc_handle(&src[n..])?;
            n += c;
            Some(h)
        } else {
            None
        };
        let flag = *src
            .get(n)
            .ok_or_else(|| Error::Corruption("truncated SstableMeta".into()))?;
        n += 1;
        let drange = if flag == 1 {
            let (d, c) = decode_varint32(&src[n..])?;
            n += c;
            Some(d)
        } else {
            None
        };
        Ok((
            SstableMeta {
                file_number,
                level,
                smallest,
                largest,
                num_entries,
                data_size,
                fragments,
                meta_blocks,
                parity,
                drange,
            },
            n,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn handle(stoc: u32, seq: u32, offset: u64, size: u32) -> StocBlockHandle {
        StocBlockHandle {
            stoc: StocId(stoc),
            file: StocFileId::new(StocId(stoc), seq),
            offset,
            size,
        }
    }

    fn sample_meta() -> SstableMeta {
        SstableMeta {
            file_number: 42,
            level: 0,
            smallest: b"aaa".to_vec(),
            largest: b"zzz".to_vec(),
            num_entries: 1000,
            data_size: 1 << 20,
            fragments: vec![
                FragmentLocation {
                    size: 512 << 10,
                    replicas: vec![handle(0, 1, 0, 512 << 10)],
                },
                FragmentLocation {
                    size: 512 << 10,
                    replicas: vec![handle(1, 7, 0, 512 << 10), handle(2, 3, 0, 512 << 10)],
                },
            ],
            meta_blocks: vec![handle(0, 2, 0, 4096), handle(1, 8, 0, 4096)],
            parity: Some(handle(3, 1, 0, 512 << 10)),
            drange: Some(5),
        }
    }

    #[test]
    fn block_location_round_trips() {
        let loc = BlockLocation {
            fragment: 3,
            offset: 123456,
            size: 4096,
        };
        let encoded = loc.encode();
        let (decoded, n) = BlockLocation::decode(&encoded).unwrap();
        assert_eq!(decoded, loc);
        assert_eq!(n, encoded.len());
    }

    #[test]
    fn stoc_handle_round_trips() {
        let h = handle(9, 77, 1 << 30, 65536);
        let mut buf = Vec::new();
        encode_stoc_handle(&mut buf, &h);
        let (decoded, n) = decode_stoc_handle(&buf).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn sstable_meta_round_trips() {
        let meta = sample_meta();
        let encoded = meta.encode();
        let (decoded, n) = SstableMeta::decode(&encoded).unwrap();
        assert_eq!(decoded, meta);
        assert_eq!(n, encoded.len());
    }

    #[test]
    fn sstable_meta_without_optionals_round_trips() {
        let meta = SstableMeta {
            parity: None,
            drange: None,
            meta_blocks: vec![],
            fragments: vec![],
            ..sample_meta()
        };
        let (decoded, _) = SstableMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn overlap_and_containment() {
        let meta = sample_meta();
        assert!(meta.overlaps(b"mmm", b"qqq"));
        assert!(meta.overlaps(b"zzz", b"zzzz"));
        assert!(!meta.overlaps(b"zzzz", b"zzzzz"));
        assert!(!meta.overlaps(b"a", b"aa"));
        assert!(meta.contains_key(b"mmm"));
        assert!(meta.contains_key(b"aaa"));
        assert!(!meta.contains_key(b"a"));
    }

    #[test]
    fn physical_accounting_and_stoc_listing() {
        let meta = sample_meta();
        // fragment0: 512K, fragment1: 512K × 2 replicas, parity 512K, meta 2×4K.
        assert_eq!(meta.physical_bytes(), (512 << 10) * 4 + 2 * 4096);
        let stocs = meta.stocs();
        assert_eq!(stocs, vec![StocId(0), StocId(1), StocId(2), StocId(3)]);
    }

    #[test]
    fn truncated_meta_is_rejected() {
        let encoded = sample_meta().encode();
        for cut in [1usize, 5, encoded.len() / 2, encoded.len() - 1] {
            assert!(
                SstableMeta::decode(&encoded[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_block_location_round_trips(fragment in any::<u32>(), offset in any::<u64>(), size in any::<u32>()) {
            let loc = BlockLocation { fragment, offset, size };
            let (decoded, n) = BlockLocation::decode(&loc.encode()).unwrap();
            prop_assert_eq!(decoded, loc);
            prop_assert_eq!(n, loc.encode().len());
        }
    }
}
