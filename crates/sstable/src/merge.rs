//! Merging iterators used by compaction and by scans that must combine
//! memtables, Level-0 tables and higher-level tables.

use crate::iter::EntryIterator;
use nova_common::types::Entry;
use nova_common::{Result, SequenceNumber, ValueType};

/// Merges several [`EntryIterator`]s into a single stream in internal-key
/// order. When two children expose the same internal key, the child that was
/// supplied *earlier* wins (callers order children newest-first).
pub struct MergingIterator<I> {
    children: Vec<I>,
    current: Option<usize>,
}

impl<I: EntryIterator> MergingIterator<I> {
    /// Build a merging iterator over `children`.
    pub fn new(children: Vec<I>) -> Self {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<(usize, Entry)> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            let e = child.entry();
            let replace = match &smallest {
                None => true,
                Some((_, s)) => e.internal_key() < s.internal_key(),
            };
            if replace {
                smallest = Some((i, e));
            }
        }
        self.current = smallest.map(|(i, _)| i);
    }
}

impl<I: EntryIterator> EntryIterator for MergingIterator<I> {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, user_key: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(user_key)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn entry(&self) -> Entry {
        let i = self.current.expect("entry() on invalid iterator");
        self.children[i].entry()
    }

    fn next(&mut self) -> Result<()> {
        if let Some(i) = self.current {
            self.children[i].next()?;
        }
        self.find_smallest();
        Ok(())
    }
}

/// A boxed, object-safe entry iterator, convenient for mixing children of
/// different concrete types inside one merge.
pub type BoxedIterator = Box<dyn EntryIterator + Send>;

impl EntryIterator for BoxedIterator {
    fn valid(&self) -> bool {
        self.as_ref().valid()
    }

    fn seek_to_first(&mut self) -> Result<()> {
        self.as_mut().seek_to_first()
    }

    fn seek(&mut self, user_key: &[u8]) -> Result<()> {
        self.as_mut().seek(user_key)
    }

    fn entry(&self) -> Entry {
        self.as_ref().entry()
    }

    fn next(&mut self) -> Result<()> {
        self.as_mut().next()
    }
}

/// Compaction-style reduction of a merged stream: keep only the newest
/// version of each user key that is visible at `snapshot`, and drop
/// tombstones entirely when `drop_tombstones` is true (only safe when
/// compacting into the bottom-most level).
pub fn compact_entries<I: EntryIterator>(
    iter: &mut I,
    snapshot: SequenceNumber,
    drop_tombstones: bool,
) -> Result<Vec<Entry>> {
    let mut out: Vec<Entry> = Vec::new();
    iter.seek_to_first()?;
    let mut last_user_key: Option<Vec<u8>> = None;
    while iter.valid() {
        let e = iter.entry();
        iter.next()?;
        if e.sequence > snapshot {
            continue;
        }
        if last_user_key.as_deref() == Some(e.key.as_ref()) {
            // An older version of a key we already emitted (or suppressed).
            continue;
        }
        last_user_key = Some(e.key.to_vec());
        if e.is_tombstone() && drop_tombstones {
            continue;
        }
        out.push(e);
    }
    Ok(out)
}

/// Count the live (non-tombstone) unique user keys visible in a stream; used
/// by the flush path's "fewer than 100 unique keys" rule (Section 4.2).
pub fn count_unique_live_keys<I: EntryIterator>(iter: &mut I) -> Result<usize> {
    Ok(compact_entries(iter, SequenceNumber::MAX, true)?.len())
}

/// True if the entry should be surfaced to a reader (i.e. it is not a
/// tombstone).
pub fn visible(entry: &Entry) -> bool {
    entry.value_type == ValueType::Value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::{collect_entries, VecIterator};

    fn it(entries: Vec<Entry>) -> VecIterator {
        VecIterator::from_unsorted(entries)
    }

    #[test]
    fn merge_interleaves_sorted_children() {
        let a = it(vec![
            Entry::put(&b"a"[..], 1, &b"1"[..]),
            Entry::put(&b"c"[..], 2, &b"2"[..]),
        ]);
        let b = it(vec![
            Entry::put(&b"b"[..], 3, &b"3"[..]),
            Entry::put(&b"d"[..], 4, &b"4"[..]),
        ]);
        let mut m = MergingIterator::new(vec![a, b]);
        let collected = collect_entries(&mut m).unwrap();
        let keys: Vec<&[u8]> = collected.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(
            keys,
            vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref(), b"d".as_ref()]
        );
    }

    #[test]
    fn merge_orders_versions_newest_first() {
        let newer = it(vec![Entry::put(&b"k"[..], 10, &b"new"[..])]);
        let older = it(vec![Entry::put(&b"k"[..], 2, &b"old"[..])]);
        let mut m = MergingIterator::new(vec![older, newer]);
        let collected = collect_entries(&mut m).unwrap();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].sequence, 10);
        assert_eq!(collected[1].sequence, 2);
    }

    #[test]
    fn merge_seek_positions_all_children() {
        let a = it(vec![
            Entry::put(&b"a"[..], 1, &b""[..]),
            Entry::put(&b"m"[..], 1, &b""[..]),
        ]);
        let b = it(vec![
            Entry::put(&b"c"[..], 1, &b""[..]),
            Entry::put(&b"z"[..], 1, &b""[..]),
        ]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(b"d").unwrap();
        assert!(m.valid());
        assert_eq!(m.entry().key.as_ref(), b"m");
        m.next().unwrap();
        assert_eq!(m.entry().key.as_ref(), b"z");
        m.next().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn empty_merge_is_invalid() {
        let mut m: MergingIterator<VecIterator> = MergingIterator::new(vec![]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
        let mut m = MergingIterator::new(vec![it(vec![])]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn compaction_keeps_newest_visible_version() {
        let versions = it(vec![
            Entry::put(&b"a"[..], 5, &b"a5"[..]),
            Entry::put(&b"a"[..], 3, &b"a3"[..]),
            Entry::delete(&b"b"[..], 9),
            Entry::put(&b"b"[..], 4, &b"b4"[..]),
            Entry::put(&b"c"[..], 2, &b"c2"[..]),
        ]);
        let mut m = MergingIterator::new(vec![versions]);
        // Keep tombstones (not bottom level).
        let kept = compact_entries(&mut m, SequenceNumber::MAX, false).unwrap();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].value.as_ref(), b"a5");
        assert!(kept[1].is_tombstone());
        assert_eq!(kept[2].value.as_ref(), b"c2");
        // Drop tombstones (bottom level).
        let mut m2 = MergingIterator::new(vec![it(vec![
            Entry::put(&b"a"[..], 5, &b"a5"[..]),
            Entry::delete(&b"b"[..], 9),
            Entry::put(&b"b"[..], 4, &b"b4"[..]),
        ])]);
        let dropped = compact_entries(&mut m2, SequenceNumber::MAX, true).unwrap();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].key.as_ref(), b"a");
    }

    #[test]
    fn compaction_respects_snapshot() {
        let mut m = MergingIterator::new(vec![it(vec![
            Entry::put(&b"a"[..], 10, &b"new"[..]),
            Entry::put(&b"a"[..], 2, &b"old"[..]),
        ])]);
        let kept = compact_entries(&mut m, 5, false).unwrap();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].value.as_ref(), b"old");
    }

    #[test]
    fn unique_live_key_count() {
        let mut m = MergingIterator::new(vec![it(vec![
            Entry::put(&b"a"[..], 3, &b""[..]),
            Entry::put(&b"a"[..], 2, &b""[..]),
            Entry::delete(&b"b"[..], 4),
            Entry::put(&b"c"[..], 1, &b""[..]),
        ])]);
        assert_eq!(count_unique_live_keys(&mut m).unwrap(), 2);
    }

    #[test]
    fn boxed_iterators_can_be_merged() {
        let a: BoxedIterator = Box::new(it(vec![Entry::put(&b"a"[..], 1, &b""[..])]));
        let b: BoxedIterator = Box::new(it(vec![Entry::put(&b"b"[..], 1, &b""[..])]));
        let mut m = MergingIterator::new(vec![a, b]);
        let collected = collect_entries(&mut m).unwrap();
        assert_eq!(collected.len(), 2);
        assert!(visible(&collected[0]));
    }
}
