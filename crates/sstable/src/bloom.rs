//! Bloom filters over user keys.
//!
//! "Each SSTable contains a bloom filter and LTC caches them in its memory. A
//! get skips a SSTable if the referenced key does not exist in its bloom
//! filter." (Section 4.1.1). The filter is the classic double-hashing scheme
//! LevelDB uses, tuned by bits-per-key.

/// A bloom filter builder/matcher over user keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_probes: u32,
}

fn bloom_hash(key: &[u8]) -> u32 {
    // A 32-bit FNV-1a variant with a final avalanche; deterministic across
    // platforms, which matters because filters are persisted.
    let mut h: u32 = 0x811c_9dc5;
    for &b in key {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h
}

impl BloomFilter {
    /// Build a filter for `keys` using `bits_per_key` bits per key.
    pub fn build(keys: &[&[u8]], bits_per_key: usize) -> BloomFilter {
        let bits_per_key = bits_per_key.max(1);
        // k = bits_per_key * ln(2), clamped like LevelDB.
        let num_probes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut num_bits = keys.len() * bits_per_key;
        if num_bits < 64 {
            num_bits = 64;
        }
        let num_bytes = num_bits.div_ceil(8);
        let num_bits = num_bytes * 8;
        let mut bits = vec![0u8; num_bytes];
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17) | 1;
            for _ in 0..num_probes {
                let bit = (h as usize) % num_bits;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        BloomFilter { bits, num_probes }
    }

    /// True if `key` *may* have been added; false only if it definitely was
    /// not.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let num_bits = self.bits.len() * 8;
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17) | 1;
        for _ in 0..self.num_probes {
            let bit = (h as usize) % num_bits;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Serialize the filter (bit array followed by the probe count).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.num_probes as u8);
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        if data.is_empty() {
            return None;
        }
        let (bits, probes) = data.split_at(data.len() - 1);
        let num_probes = probes[0] as u32;
        if num_probes == 0 || num_probes > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: bits.to_vec(),
            num_probes,
        })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user-key-{i:06}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let owned = keys(10_000);
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let filter = BloomFilter::build(&refs, 10);
        for k in &owned {
            assert!(
                filter.may_contain(k),
                "bloom filters must never produce false negatives"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let owned = keys(10_000);
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let filter = BloomFilter::build(&refs, 10);
        let mut false_positives = 0;
        let probes = 10_000;
        for i in 0..probes {
            let missing = format!("missing-key-{i:06}");
            if filter.may_contain(missing.as_bytes()) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / probes as f64;
        // 10 bits/key gives ~1% in theory; allow generous slack.
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_is_valid() {
        let filter = BloomFilter::build(&[], 10);
        // An empty filter simply never reports presence.
        assert!(!filter.may_contain(b"anything"));
        let decoded = BloomFilter::decode(&filter.encode()).unwrap();
        assert_eq!(decoded, filter);
    }

    #[test]
    fn encode_decode_round_trip() {
        let owned = keys(100);
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let filter = BloomFilter::build(&refs, 8);
        let encoded = filter.encode();
        assert_eq!(encoded.len(), filter.encoded_len());
        let decoded = BloomFilter::decode(&encoded).unwrap();
        assert_eq!(decoded, filter);
        for k in &owned {
            assert!(decoded.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0, 0, 0, 200]).is_none());
        assert!(BloomFilter::decode(&[0, 0, 0, 0]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_never_false_negative(
            key_set in proptest::collection::btree_set(proptest::collection::vec(any::<u8>(), 1..32), 1..200),
            bits_per_key in 1usize..20,
        ) {
            let owned: Vec<Vec<u8>> = key_set.into_iter().collect();
            let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
            let filter = BloomFilter::build(&refs, bits_per_key);
            for k in &owned {
                prop_assert!(filter.may_contain(k));
            }
            let decoded = BloomFilter::decode(&filter.encode()).unwrap();
            for k in &owned {
                prop_assert!(decoded.may_contain(k));
            }
        }
    }
}
