//! The iterator abstraction shared by memtables, blocks, tables, levels and
//! merging iterators.
//!
//! All iterators yield [`Entry`] values in *internal-key order*: ascending by
//! user key and, among versions of the same user key, newest (highest
//! sequence number) first. Compaction and scans are written against this
//! trait so that the same code paths work over memtables, local SSTables and
//! SSTables scattered across StoCs.

use nova_common::types::Entry;
use nova_common::Result;

/// A sorted stream of entries supporting seeks.
pub trait EntryIterator {
    /// True if the iterator is positioned at an entry.
    fn valid(&self) -> bool;

    /// Position at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;

    /// Position at the first entry whose user key is `>= user_key`.
    fn seek(&mut self, user_key: &[u8]) -> Result<()>;

    /// The entry at the current position. Must only be called when valid.
    fn entry(&self) -> Entry;

    /// Advance to the next entry.
    fn next(&mut self) -> Result<()>;
}

/// An [`EntryIterator`] over an in-memory vector of entries (already sorted
/// in internal-key order). Used in tests and for iterating small merged
/// memtables.
#[derive(Debug, Clone)]
pub struct VecIterator {
    entries: Vec<Entry>,
    pos: usize,
    started: bool,
}

impl VecIterator {
    /// Create an iterator over `entries`, which must already be sorted by
    /// internal key.
    pub fn new(entries: Vec<Entry>) -> Self {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| w[0].internal_key() <= w[1].internal_key()),
            "VecIterator input must be sorted by internal key"
        );
        VecIterator {
            entries,
            pos: 0,
            started: false,
        }
    }

    /// Sort `entries` by internal key and create an iterator.
    pub fn from_unsorted(mut entries: Vec<Entry>) -> Self {
        entries.sort_by_key(|a| a.internal_key());
        VecIterator {
            entries,
            pos: 0,
            started: false,
        }
    }
}

impl EntryIterator for VecIterator {
    fn valid(&self) -> bool {
        self.started && self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.started = true;
        Ok(())
    }

    fn seek(&mut self, user_key: &[u8]) -> Result<()> {
        self.started = true;
        self.pos = self.entries.partition_point(|e| e.key.as_ref() < user_key);
        Ok(())
    }

    fn entry(&self) -> Entry {
        self.entries[self.pos].clone()
    }

    fn next(&mut self) -> Result<()> {
        self.pos += 1;
        Ok(())
    }
}

/// Drain an iterator into a vector of entries (for tests and small merges).
pub fn collect_entries<I: EntryIterator>(iter: &mut I) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    iter.seek_to_first()?;
    while iter.valid() {
        out.push(iter.entry());
        iter.next()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::ValueType;

    fn entries() -> Vec<Entry> {
        vec![
            Entry::put(&b"a"[..], 3, &b"a3"[..]),
            Entry::put(&b"b"[..], 7, &b"b7"[..]),
            Entry::put(&b"b"[..], 2, &b"b2"[..]),
            Entry::delete(&b"c"[..], 9),
        ]
    }

    #[test]
    fn vec_iterator_basics() {
        let mut it = VecIterator::new(entries());
        assert!(!it.valid());
        it.seek_to_first().unwrap();
        assert!(it.valid());
        assert_eq!(it.entry().key.as_ref(), b"a");
        it.next().unwrap();
        assert_eq!(it.entry().sequence, 7);
        it.next().unwrap();
        assert_eq!(it.entry().sequence, 2);
        it.next().unwrap();
        assert_eq!(it.entry().value_type, ValueType::Deletion);
        it.next().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn vec_iterator_seek() {
        let mut it = VecIterator::new(entries());
        it.seek(b"b").unwrap();
        assert_eq!(it.entry().key.as_ref(), b"b");
        assert_eq!(it.entry().sequence, 7, "newest version of b first");
        it.seek(b"bb").unwrap();
        assert_eq!(it.entry().key.as_ref(), b"c");
        it.seek(b"zzz").unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn from_unsorted_sorts() {
        let mut shuffled = entries();
        shuffled.reverse();
        let mut it = VecIterator::from_unsorted(shuffled);
        let collected = collect_entries(&mut it).unwrap();
        assert_eq!(collected, entries());
    }
}
