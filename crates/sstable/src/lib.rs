//! # nova-sstable
//!
//! The Sorted String Table (SSTable) substrate shared by Nova-LSM's LTC, the
//! StoC-side offloaded compaction, and the monolithic baselines.
//!
//! Differences from a classic LevelDB table, driven by the paper:
//!
//! * Data blocks are split into ρ **fragments** so that one table's blocks
//!   can be scattered across ρ StoCs (Section 4.4, Figure 9). The index block
//!   addresses blocks by `(fragment, offset, size)`.
//! * The **metadata block** (index + bloom filter + properties) is a separate
//!   small artifact that LTCs cache in memory and may replicate independently
//!   of the data fragments (the paper's Hybrid availability, Section 4.4.1).
//! * A **parity block** (XOR across fragments) can be computed at build time
//!   to tolerate a StoC failure without full replication.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod bloom;
pub mod builder;
pub mod handle;
pub mod iter;
pub mod merge;
pub mod reader;

pub use block::{Block, BlockBuilder, BlockIterator};
pub use bloom::BloomFilter;
pub use builder::{
    parity_of, reconstruct_from_parity, BuiltTable, TableBuilder, TableOptions, TableProperties,
};
pub use handle::{BlockLocation, FragmentLocation, SstableMeta};
pub use iter::{collect_entries, EntryIterator, VecIterator};
pub use merge::{compact_entries, BoxedIterator, MergingIterator};
pub use reader::{BlockFetcher, MemoryFetcher, TableIterator, TableLookup, TableReader};
