//! The SSTable reader.
//!
//! A reader is constructed from the table's *metadata block* alone (index +
//! bloom filter + properties); data blocks are fetched on demand through a
//! [`BlockFetcher`], which the LTC implements with one-sided reads against
//! the StoCs holding the table's fragments and the baselines implement with
//! local disk reads. This mirrors the paper's design where LTCs cache
//! metadata/bloom blocks in memory (Section 4.1.1) and pull data blocks over
//! RDMA only when needed.

use crate::block::Block;
use crate::bloom::BloomFilter;
use crate::builder::{decode_properties, MetaFooter, TableProperties};
use crate::handle::BlockLocation;
use crate::iter::EntryIterator;
use bytes::Bytes;
use nova_common::types::{compare_internal_keys, Entry, InternalKey, MAX_SEQUENCE_NUMBER};
use nova_common::{Error, Result, SequenceNumber, ValueType};

/// Fetches a data block given its logical location within the table.
pub trait BlockFetcher: Send + Sync {
    /// Fetch the raw bytes of the block at `location`.
    fn fetch(&self, location: &BlockLocation) -> Result<Bytes>;

    /// Fetch a batch of blocks, returning each block's individual outcome in
    /// input order. The default fetches serially; fetchers backed by remote
    /// storage override this to issue the batch concurrently (scans use it
    /// to read ahead of the cursor), and caching decorators override it to
    /// batch-fill the cache on miss.
    fn fetch_many(&self, locations: &[BlockLocation]) -> Vec<Result<Bytes>> {
        locations.iter().map(|location| self.fetch(location)).collect()
    }
}

/// A [`BlockFetcher`] over in-memory fragments — used by tests, by
/// compaction (which prefetches whole fragments) and by the baselines.
#[derive(Debug, Clone, Default)]
pub struct MemoryFetcher {
    fragments: Vec<Bytes>,
}

impl MemoryFetcher {
    /// Wrap a set of fragment payloads.
    pub fn new<T: Into<Bytes>>(fragments: Vec<T>) -> Self {
        MemoryFetcher {
            fragments: fragments.into_iter().map(Into::into).collect(),
        }
    }
}

impl BlockFetcher for MemoryFetcher {
    fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
        let fragment = self.fragments.get(location.fragment as usize).ok_or_else(|| {
            Error::InvalidArgument(format!("fragment {} does not exist", location.fragment))
        })?;
        let start = location.offset as usize;
        let end = start + location.size as usize;
        if end > fragment.len() {
            return Err(Error::Corruption(format!(
                "block [{start}, {end}) extends past fragment of {} bytes",
                fragment.len()
            )));
        }
        Ok(fragment.slice(start..end))
    }
}

/// Result of a point lookup in a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableLookup {
    /// The newest visible version is a value.
    Found(Entry),
    /// The newest visible version is a tombstone.
    Deleted(Entry),
    /// The table holds no visible version of the key.
    NotFound,
}

/// An open SSTable: parsed index block, bloom filter and properties.
#[derive(Debug, Clone)]
pub struct TableReader {
    index: Block,
    filter: Option<BloomFilter>,
    properties: TableProperties,
}

impl TableReader {
    /// Open a table from its metadata block.
    pub fn open(meta: &[u8]) -> Result<TableReader> {
        let footer = MetaFooter::decode(meta)?;
        let (ioff, ilen) = (footer.index.0 as usize, footer.index.1 as usize);
        if ioff + ilen > meta.len() {
            return Err(Error::Corruption("index extent out of bounds".into()));
        }
        let index = Block::decode(&meta[ioff..ioff + ilen])?;
        let (foff, flen) = (footer.filter.0 as usize, footer.filter.1 as usize);
        let filter = if flen == 0 {
            None
        } else {
            if foff + flen > meta.len() {
                return Err(Error::Corruption("filter extent out of bounds".into()));
            }
            BloomFilter::decode(&meta[foff..foff + flen])
        };
        let properties = decode_properties(meta)?;
        Ok(TableReader {
            index,
            filter,
            properties,
        })
    }

    /// The table's properties.
    pub fn properties(&self) -> &TableProperties {
        &self.properties
    }

    /// True if the bloom filter admits the key (or there is no filter).
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        self.filter
            .as_ref()
            .map(|f| f.may_contain(user_key))
            .unwrap_or(true)
    }

    /// Point lookup: find the newest version of `user_key` visible at
    /// `snapshot`.
    pub fn get(
        &self,
        fetcher: &dyn BlockFetcher,
        user_key: &[u8],
        snapshot: SequenceNumber,
    ) -> Result<TableLookup> {
        if !self.may_contain(user_key) {
            return Ok(TableLookup::NotFound);
        }
        // Find the first data block whose last key is >= the seek key.
        let seek_key = InternalKey::new(user_key, snapshot, ValueType::Value);
        let mut index_iter = self.index.iter();
        index_iter.seek(seek_key.encoded())?;
        if !index_iter.valid() {
            return Ok(TableLookup::NotFound);
        }
        let (location, _) = BlockLocation::decode(index_iter.value())?;
        let block_bytes = fetcher.fetch(&location)?;
        let block = Block::decode(&block_bytes)?;
        let mut iter = block.iter();
        iter.seek(seek_key.encoded())?;
        if !iter.valid() {
            return Ok(TableLookup::NotFound);
        }
        let found = InternalKey::decode(iter.key())
            .ok_or_else(|| Error::Corruption("malformed internal key in data block".into()))?;
        if found.user_key() != user_key {
            return Ok(TableLookup::NotFound);
        }
        let entry = Entry {
            key: Bytes::copy_from_slice(found.user_key()),
            sequence: found.sequence(),
            value_type: found.value_type(),
            value: Bytes::copy_from_slice(iter.value()),
        };
        match found.value_type() {
            ValueType::Value => Ok(TableLookup::Found(entry)),
            ValueType::Deletion => Ok(TableLookup::Deleted(entry)),
        }
    }

    /// Create an iterator over the whole table.
    pub fn iter<'a>(&'a self, fetcher: &'a dyn BlockFetcher) -> TableIterator<'a> {
        self.iter_with_readahead(fetcher, 0)
    }

    /// Create an iterator that prefetches up to `readahead` data blocks past
    /// the cursor through [`BlockFetcher::fetch_many`]. With a scatter-
    /// gather fetcher the window's blocks are fetched concurrently, so a
    /// sequential scan pays ~one round trip per window instead of one per
    /// block; with a caching fetcher the window also lands in the block
    /// cache. `readahead == 0` fetches strictly on demand.
    pub fn iter_with_readahead<'a>(
        &'a self,
        fetcher: &'a dyn BlockFetcher,
        readahead: usize,
    ) -> TableIterator<'a> {
        TableIterator {
            reader: self,
            fetcher,
            index_iter_pos: None,
            current: Vec::new(),
            current_pos: 0,
            readahead,
            prefetched: Vec::new(),
        }
    }
}

/// Iterator over all entries of a table in internal-key order. Data blocks
/// are fetched lazily, one at a time.
pub struct TableIterator<'a> {
    reader: &'a TableReader,
    fetcher: &'a dyn BlockFetcher,
    /// Position within the index block: the ordinal of the current data
    /// block, or `None` before the first seek.
    index_iter_pos: Option<usize>,
    current: Vec<Entry>,
    current_pos: usize,
    /// How many blocks past the cursor to prefetch (0 = on demand).
    readahead: usize,
    /// Raw prefetched blocks keyed by ordinal, awaiting consumption.
    prefetched: Vec<(usize, Bytes)>,
}

impl<'a> TableIterator<'a> {
    /// The block locations for ordinals `[start, start + count)`, in order
    /// (shorter when the table ends first).
    fn locations_from(&self, start: usize, count: usize) -> Result<Vec<BlockLocation>> {
        let mut out = Vec::with_capacity(count);
        let mut it = self.reader.index.iter();
        it.seek_to_first()?;
        let mut i = 0;
        while it.valid() && out.len() < count {
            if i >= start {
                let (location, _) = BlockLocation::decode(it.value())?;
                out.push(location);
            }
            it.next()?;
            i += 1;
        }
        Ok(out)
    }

    /// Load the data block at `ordinal`. `sequential` is true when the
    /// cursor advanced into this block from its predecessor — only then is
    /// the readahead window opened, so a seek for a short limited scan pays
    /// one block read, not a speculative window per table.
    fn load_block_at_index(&mut self, ordinal: usize, sequential: bool) -> Result<bool> {
        let bytes = match self
            .prefetched
            .iter()
            .position(|&(prefetched_ordinal, _)| prefetched_ordinal == ordinal)
        {
            Some(pos) => self.prefetched.swap_remove(pos).1,
            None => {
                let want = if sequential { 1 + self.readahead } else { 1 };
                let locations = self.locations_from(ordinal, want)?;
                if locations.is_empty() {
                    self.current.clear();
                    self.current_pos = 0;
                    return Ok(false);
                }
                let mut results = self.fetcher.fetch_many(&locations).into_iter();
                let first = results.next().expect("one result per location")?;
                // Stash the rest of the window; a prefetch failure is not an
                // error until (unless) the cursor actually reaches the block.
                self.prefetched.clear();
                for (offset, result) in results.enumerate() {
                    if let Ok(block) = result {
                        self.prefetched.push((ordinal + 1 + offset, block));
                    }
                }
                first
            }
        };
        let block = Block::decode(&bytes)?;
        self.current = decode_block_entries(&block)?;
        self.current_pos = 0;
        Ok(true)
    }

    fn num_blocks(&self) -> Result<usize> {
        let mut it = self.reader.index.iter();
        it.seek_to_first()?;
        let mut n = 0;
        while it.valid() {
            n += 1;
            it.next()?;
        }
        Ok(n)
    }
}

/// Decode every entry in a data block.
pub fn decode_block_entries(block: &Block) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    let mut it = block.iter();
    it.seek_to_first()?;
    while it.valid() {
        let key = InternalKey::decode(it.key())
            .ok_or_else(|| Error::Corruption("malformed internal key".into()))?;
        out.push(Entry {
            key: Bytes::copy_from_slice(key.user_key()),
            sequence: key.sequence(),
            value_type: key.value_type(),
            value: Bytes::copy_from_slice(it.value()),
        });
        it.next()?;
    }
    Ok(out)
}

impl EntryIterator for TableIterator<'_> {
    fn valid(&self) -> bool {
        self.index_iter_pos.is_some() && self.current_pos < self.current.len()
    }

    fn seek_to_first(&mut self) -> Result<()> {
        self.index_iter_pos = Some(0);
        self.load_block_at_index(0, false)?;
        Ok(())
    }

    fn seek(&mut self, user_key: &[u8]) -> Result<()> {
        let target = InternalKey::new(user_key, MAX_SEQUENCE_NUMBER, ValueType::Value);
        // Locate the block whose last key is >= target via the index.
        let mut it = self.reader.index.iter();
        it.seek_to_first()?;
        let mut ordinal = 0usize;
        let mut found = false;
        while it.valid() {
            if compare_internal_keys(it.key(), target.encoded()) != std::cmp::Ordering::Less {
                found = true;
                break;
            }
            ordinal += 1;
            it.next()?;
        }
        if !found {
            self.index_iter_pos = Some(ordinal);
            self.current.clear();
            self.current_pos = 0;
            return Ok(());
        }
        self.index_iter_pos = Some(ordinal);
        self.load_block_at_index(ordinal, false)?;
        self.current_pos = self.current.partition_point(|e| e.key.as_ref() < user_key);
        if self.current_pos >= self.current.len() {
            // The target falls after every key in this block; advance.
            self.advance_block()?;
        }
        Ok(())
    }

    fn entry(&self) -> Entry {
        self.current[self.current_pos].clone()
    }

    fn next(&mut self) -> Result<()> {
        self.current_pos += 1;
        if self.current_pos >= self.current.len() {
            self.advance_block()?;
        }
        Ok(())
    }
}

impl TableIterator<'_> {
    fn advance_block(&mut self) -> Result<()> {
        let pos = self.index_iter_pos.unwrap_or(0) + 1;
        if pos >= self.num_blocks()? {
            self.index_iter_pos = Some(pos);
            self.current.clear();
            self.current_pos = 0;
            return Ok(());
        }
        self.index_iter_pos = Some(pos);
        self.load_block_at_index(pos, true)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TableBuilder, TableOptions};
    use crate::iter::collect_entries;

    fn build_table(n: u64, fragments: usize) -> (TableReader, MemoryFetcher, Vec<Entry>) {
        let entries: Vec<Entry> = (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    Entry::delete(format!("key-{i:06}").into_bytes(), i + 1)
                } else {
                    Entry::put(
                        format!("key-{i:06}").into_bytes(),
                        i + 1,
                        format!("value-{i}").into_bytes(),
                    )
                }
            })
            .collect();
        let mut b = TableBuilder::new(TableOptions {
            block_size: 512,
            bloom_bits_per_key: 10,
            num_fragments: fragments,
        });
        for e in &entries {
            b.add(e);
        }
        let built = b.finish().unwrap();
        let reader = TableReader::open(&built.meta).unwrap();
        let fetcher = MemoryFetcher::new(built.fragments);
        (reader, fetcher, entries)
    }

    #[test]
    fn point_lookups_find_values_and_tombstones() {
        let (reader, fetcher, _) = build_table(500, 3);
        match reader.get(&fetcher, b"key-000123", MAX_SEQUENCE_NUMBER).unwrap() {
            TableLookup::Found(e) => assert_eq!(e.value.as_ref(), b"value-123"),
            other => panic!("unexpected {other:?}"),
        }
        match reader.get(&fetcher, b"key-000009", MAX_SEQUENCE_NUMBER).unwrap() {
            TableLookup::Deleted(e) => assert_eq!(e.sequence, 10),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            reader.get(&fetcher, b"key-999999", MAX_SEQUENCE_NUMBER).unwrap(),
            TableLookup::NotFound
        );
        assert_eq!(
            reader.get(&fetcher, b"zzz", MAX_SEQUENCE_NUMBER).unwrap(),
            TableLookup::NotFound
        );
    }

    #[test]
    fn snapshot_reads_respect_sequence_numbers() {
        let entries = vec![
            Entry::put(&b"k"[..], 10, &b"new"[..]),
            Entry::put(&b"k"[..], 5, &b"old"[..]),
        ];
        let mut b = TableBuilder::new(TableOptions::default());
        for e in &entries {
            b.add(e);
        }
        let built = b.finish().unwrap();
        let reader = TableReader::open(&built.meta).unwrap();
        let fetcher = MemoryFetcher::new(built.fragments);
        match reader.get(&fetcher, b"k", 7).unwrap() {
            TableLookup::Found(e) => assert_eq!(e.value.as_ref(), b"old"),
            other => panic!("unexpected {other:?}"),
        }
        match reader.get(&fetcher, b"k", MAX_SEQUENCE_NUMBER).unwrap() {
            TableLookup::Found(e) => assert_eq!(e.value.as_ref(), b"new"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reader.get(&fetcher, b"k", 3).unwrap(), TableLookup::NotFound);
    }

    #[test]
    fn full_scan_returns_every_entry_in_order() {
        let (reader, fetcher, entries) = build_table(1000, 4);
        let mut it = reader.iter(&fetcher);
        let collected = collect_entries(&mut it).unwrap();
        assert_eq!(collected.len(), entries.len());
        assert_eq!(collected, entries);
    }

    #[test]
    fn iterator_seek_lands_on_first_key_geq() {
        let (reader, fetcher, _) = build_table(1000, 4);
        let mut it = reader.iter(&fetcher);
        it.seek(b"key-000500").unwrap();
        assert!(it.valid());
        assert_eq!(it.entry().key.as_ref(), b"key-000500");
        it.seek(b"key-0005005").unwrap();
        assert!(it.valid());
        assert_eq!(it.entry().key.as_ref(), b"key-000501");
        it.seek(b"zzz").unwrap();
        assert!(!it.valid());
        it.seek(b"a").unwrap();
        assert!(it.valid());
        assert_eq!(it.entry().key.as_ref(), b"key-000000");
    }

    /// Delegates to a [`MemoryFetcher`] while recording the size of every
    /// batch that reaches `fetch_many` (a plain `fetch` records a batch of
    /// one).
    struct BatchRecordingFetcher {
        inner: MemoryFetcher,
        batches: std::sync::Mutex<Vec<usize>>,
    }

    impl BlockFetcher for BatchRecordingFetcher {
        fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
            self.batches.lock().unwrap().push(1);
            self.inner.fetch(location)
        }

        fn fetch_many(&self, locations: &[BlockLocation]) -> Vec<Result<Bytes>> {
            self.batches.lock().unwrap().push(locations.len());
            self.inner.fetch_many(locations)
        }
    }

    #[test]
    fn readahead_scan_matches_on_demand_scan_across_block_boundaries() {
        let (reader, fetcher, entries) = build_table(1000, 4);
        let on_demand = collect_entries(&mut reader.iter(&fetcher)).unwrap();
        assert_eq!(on_demand, entries);
        for readahead in [1usize, 3, 7, 64] {
            let prefetched = collect_entries(&mut reader.iter_with_readahead(&fetcher, readahead)).unwrap();
            assert_eq!(prefetched, entries, "readahead {readahead} changed scan results");
        }
    }

    #[test]
    fn readahead_seek_and_resume_stays_correct() {
        let (reader, fetcher, _) = build_table(1000, 4);
        let mut it = reader.iter_with_readahead(&fetcher, 4);
        it.seek(b"key-000500").unwrap();
        for i in 500..520 {
            assert!(it.valid());
            assert_eq!(it.entry().key.as_ref(), format!("key-{i:06}").as_bytes());
            it.next().unwrap();
        }
        // Seeking backwards discards the stale prefetch window.
        it.seek(b"key-000010").unwrap();
        assert_eq!(it.entry().key.as_ref(), b"key-000010");
        it.seek(b"zzz").unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn readahead_batches_block_fetches_instead_of_fetching_one_by_one() {
        let (_, fetcher, entries) = build_table(1000, 4);
        let recording = BatchRecordingFetcher {
            inner: fetcher,
            batches: std::sync::Mutex::new(Vec::new()),
        };
        // Rebuild a reader over the same fragments.
        let (reader, _, _) = build_table(1000, 4);

        let collected = collect_entries(&mut reader.iter(&recording)).unwrap();
        assert_eq!(collected, entries);
        let on_demand_batches = std::mem::take(&mut *recording.batches.lock().unwrap());
        let num_blocks = on_demand_batches.len();
        assert!(num_blocks > 8, "table too small to exercise readahead");
        // On-demand iteration touches the fetcher once per block…
        assert!(on_demand_batches.iter().all(|&batch| batch == 1));

        let readahead = 4usize;
        let collected = collect_entries(&mut reader.iter_with_readahead(&recording, readahead)).unwrap();
        assert_eq!(collected, entries);
        let prefetch_batches = std::mem::take(&mut *recording.batches.lock().unwrap());
        // …while readahead asks for full windows and therefore issues far
        // fewer fetch round trips.
        assert!(
            prefetch_batches.len() <= num_blocks / readahead + 2,
            "expected ~1 batch per {} blocks, got {} batches for {} blocks",
            readahead + 1,
            prefetch_batches.len(),
            num_blocks
        );
        assert!(prefetch_batches.iter().any(|&batch| batch == readahead + 1));
        assert_eq!(prefetch_batches.iter().sum::<usize>(), num_blocks);
        // The first load (a seek, not a sequential advance) must not open a
        // speculative window: short limited scans pay one block per table.
        assert_eq!(prefetch_batches[0], 1);

        // A short seek-then-read-a-few scan stays cheap under readahead.
        let mut it = reader.iter_with_readahead(&recording, readahead);
        it.seek(b"key-000100").unwrap();
        assert!(it.valid());
        let seek_batches = std::mem::take(&mut *recording.batches.lock().unwrap());
        assert_eq!(
            seek_batches,
            vec![1],
            "a seek must fetch exactly the sought block"
        );
    }

    #[test]
    fn bloom_filter_short_circuits_missing_keys() {
        let (reader, _fetcher, _) = build_table(100, 1);
        // The bloom filter is consulted without touching the fetcher: use a
        // fetcher that panics to prove short-circuiting for a key the filter
        // excludes. (A false positive is possible but astronomically unlikely
        // for this fixed key set.)
        struct PanicFetcher;
        impl BlockFetcher for PanicFetcher {
            fn fetch(&self, _: &BlockLocation) -> Result<Bytes> {
                panic!("fetch must not be called when the bloom filter rejects the key");
            }
        }
        let missing = b"definitely-not-present-key-xyz";
        if !reader.may_contain(missing) {
            assert_eq!(
                reader.get(&PanicFetcher, missing, MAX_SEQUENCE_NUMBER).unwrap(),
                TableLookup::NotFound
            );
        }
    }

    #[test]
    fn reader_rejects_corrupt_meta() {
        let (_, _, _) = build_table(10, 1);
        assert!(TableReader::open(b"garbage").is_err());
    }

    #[test]
    fn memory_fetcher_bounds_checks() {
        let f = MemoryFetcher::new(vec![vec![0u8; 10]]);
        assert!(f
            .fetch(&BlockLocation {
                fragment: 1,
                offset: 0,
                size: 1
            })
            .is_err());
        assert!(f
            .fetch(&BlockLocation {
                fragment: 0,
                offset: 8,
                size: 4
            })
            .is_err());
        assert!(f
            .fetch(&BlockLocation {
                fragment: 0,
                offset: 0,
                size: 10
            })
            .is_ok());
    }
}
