//! # nova-fabric
//!
//! A simulated RDMA fabric that connects Nova-LSM components.
//!
//! The paper connects LTCs, LogCs and StoCs with 56 Gbps RDMA and relies on
//! three properties of that interconnect:
//!
//! 1. **One-sidedness** — `RDMA READ`/`RDMA WRITE` move data without
//!    involving the target's CPU, which is what makes log replication and
//!    block fetches cheap for StoCs (Sections 5 and 6).
//! 2. **Microsecond latency / high bandwidth** — the network is never the
//!    bottleneck; disks and CPUs are.
//! 3. **Reliable connected queue pairs** — requests are delivered in order
//!    and are never silently dropped.
//!
//! This crate reproduces those properties in-process: every node registers
//! memory regions that peers can read and write directly (one-sided verbs,
//! charged only to the issuing node), `send` delivers two-sided messages into
//! the target's receive queue (charged to both sides), and an RPC layer built
//! on top of `send` gives components a simple request/response interface.
//! Latency and bandwidth are modelled by a configurable [`latency::LatencyModel`];
//! by default transfer time is *accounted* in per-node statistics rather than
//! slept, because the network is never the bottleneck in the paper's
//! experiments.
//!
//! Failure injection (`fail_node` / `recover_node`) lets tests and the
//! availability experiments (Figure 16, Section 4.4.1) take a StoC down.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fabric;
pub mod latency;
pub mod message;
pub mod region;
pub mod rpc;

pub use fabric::{Endpoint, Fabric, FabricNodeStats};
pub use latency::LatencyModel;
pub use message::{Delivery, RegionId};
pub use rpc::{RpcHandler, RpcServer};
