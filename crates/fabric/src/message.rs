//! Message and delivery types exchanged over the fabric.

use bytes::Bytes;
use nova_common::NodeId;

/// Identifier of a registered memory region on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Something delivered to a node's receive queue.
///
/// One-sided `RDMA READ`s never produce a delivery (they bypass the target
/// entirely); one-sided `RDMA WRITE`s only produce a delivery when the writer
/// attaches 4-byte immediate data, mirroring the paper's use of
/// write-with-immediate to notify a StoC that a block landed in its file
/// buffer (Figure 10, step 2).
#[derive(Debug, Clone)]
pub enum Delivery {
    /// A two-sided message sent with `send`.
    Message {
        /// Sending node.
        from: NodeId,
        /// Opaque payload.
        payload: Bytes,
    },
    /// An RPC request; the handler must eventually `reply` with the same
    /// `call_id`.
    Request {
        /// Sending node.
        from: NodeId,
        /// Correlation id chosen by the caller.
        call_id: u64,
        /// Opaque request payload.
        payload: Bytes,
    },
    /// Notification that a peer performed an `RDMA WRITE` with immediate
    /// data into one of this node's regions.
    WriteImmediate {
        /// Writing node.
        from: NodeId,
        /// Region that was written.
        region: RegionId,
        /// Offset at which the write landed.
        offset: u64,
        /// Number of bytes written.
        len: u64,
        /// The 4-byte immediate value.
        immediate: u32,
    },
}

impl Delivery {
    /// The node that produced this delivery.
    pub fn from(&self) -> NodeId {
        match self {
            Delivery::Message { from, .. }
            | Delivery::Request { from, .. }
            | Delivery::WriteImmediate { from, .. } => *from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_reports_sender() {
        let m = Delivery::Message {
            from: NodeId(1),
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(m.from(), NodeId(1));
        let r = Delivery::Request {
            from: NodeId(2),
            call_id: 9,
            payload: Bytes::new(),
        };
        assert_eq!(r.from(), NodeId(2));
        let w = Delivery::WriteImmediate {
            from: NodeId(3),
            region: RegionId(0),
            offset: 0,
            len: 4,
            immediate: 7,
        };
        assert_eq!(w.from(), NodeId(3));
    }
}
