//! Latency and bandwidth model for the simulated fabric.

use nova_common::config::FabricConfig;
use std::time::Duration;

/// Computes the transfer time of a verb given its payload size.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// One-way latency applied to every verb.
    pub base: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Whether the issuing thread actually sleeps for the transfer time.
    pub simulate_delay: bool,
}

impl LatencyModel {
    /// Build a model from the cluster fabric configuration.
    pub fn from_config(cfg: &FabricConfig) -> Self {
        LatencyModel {
            base: Duration::from_nanos(cfg.latency_nanos),
            bandwidth_bytes_per_sec: cfg.bandwidth_bytes_per_sec.max(1),
            simulate_delay: cfg.simulate_delay,
        }
    }

    /// An instantaneous fabric (useful in unit tests).
    pub fn instant() -> Self {
        LatencyModel {
            base: Duration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            simulate_delay: false,
        }
    }

    /// The modelled time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let transfer_nanos = if self.bandwidth_bytes_per_sec == u64::MAX {
            0
        } else {
            (bytes as u128 * 1_000_000_000u128 / self.bandwidth_bytes_per_sec as u128) as u64
        };
        self.base + Duration::from_nanos(transfer_nanos)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::from_config(&FabricConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let m = LatencyModel {
            base: Duration::from_micros(3),
            bandwidth_bytes_per_sec: 1_000_000_000,
            simulate_delay: false,
        };
        let small = m.transfer_time(1_000);
        let large = m.transfer_time(1_000_000);
        assert!(large > small);
        // 1 MB at 1 GB/s is 1 ms plus the 3 µs base.
        assert_eq!(large, Duration::from_micros(1_003));
    }

    #[test]
    fn instant_model_is_zero_cost() {
        let m = LatencyModel::instant();
        assert_eq!(m.transfer_time(usize::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn default_model_matches_config() {
        let cfg = FabricConfig::default();
        let m = LatencyModel::from_config(&cfg);
        assert_eq!(m.base, Duration::from_nanos(cfg.latency_nanos));
        assert!(!m.simulate_delay);
    }
}
