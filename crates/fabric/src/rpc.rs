//! A small RPC server loop built on the fabric's request/reply layer.
//!
//! The paper's thread model (Section 3.2) dedicates *exchange (xchg)
//! threads* to pulling queue pairs for requests and handing the actual work
//! to other threads. [`RpcServer`] reproduces that: it spawns a configurable
//! number of xchg threads that pull deliveries from the node's receive queue
//! and dispatch them to a [`RpcHandler`] on a worker pool. The xchg threads
//! back off exponentially when idle, exactly as described in the paper, to
//! trade latency for CPU.

use crate::fabric::Endpoint;
use crate::message::Delivery;
use bytes::Bytes;
use nova_common::{NodeId, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Application logic invoked for every request or message delivered to a
/// node.
pub trait RpcHandler: Send + Sync + 'static {
    /// Handle a request and produce a response payload.
    fn handle_request(&self, from: NodeId, payload: Bytes) -> Result<Bytes>;

    /// Handle a one-way message (no response expected). Default: ignore.
    fn handle_message(&self, from: NodeId, payload: Bytes) {
        let _ = (from, payload);
    }

    /// Handle a write-with-immediate notification. Default: ignore.
    fn handle_write_immediate(
        &self,
        from: NodeId,
        region: crate::message::RegionId,
        offset: u64,
        len: u64,
        immediate: u32,
    ) {
        let _ = (from, region, offset, len, immediate);
    }
}

/// A running RPC server: xchg threads pulling a node's receive queue and
/// dispatching to worker threads.
pub struct RpcServer {
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// Initial back-off used by idle xchg threads.
const IDLE_BACKOFF_MIN: Duration = Duration::from_micros(50);
/// Maximum back-off: bounds the latency penalty of an idle node.
const IDLE_BACKOFF_MAX: Duration = Duration::from_millis(2);

impl RpcServer {
    /// Start `num_xchg_threads` exchange threads plus `num_workers` worker
    /// threads serving `handler` on `endpoint`'s node.
    ///
    /// If `num_workers` is zero the xchg threads execute handlers inline,
    /// which matches the paper's configuration where dedicated threads are
    /// scarce.
    pub fn start(
        endpoint: Endpoint,
        handler: Arc<dyn RpcHandler>,
        num_xchg_threads: usize,
        num_workers: usize,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // Work queue between xchg threads and workers.
        let (work_tx, work_rx) = crossbeam::channel::unbounded::<Delivery>();

        // Worker threads.
        for w in 0..num_workers {
            let rx = work_rx.clone();
            let handler = Arc::clone(&handler);
            let endpoint = endpoint.clone();
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("stoc-worker-{}-{}", endpoint.node_id(), w))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Relaxed) {
                            match rx.recv_timeout(Duration::from_millis(50)) {
                                Ok(delivery) => dispatch(&endpoint, handler.as_ref(), delivery),
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        // Exchange threads: pull the receive queue, hand work to workers (or
        // run it inline when there are none).
        for x in 0..num_xchg_threads.max(1) {
            let endpoint = endpoint.clone();
            let handler = Arc::clone(&handler);
            let shutdown = Arc::clone(&shutdown);
            let work_tx = work_tx.clone();
            let inline = num_workers == 0;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("xchg-{}-{}", endpoint.node_id(), x))
                    .spawn(move || {
                        let mut backoff = IDLE_BACKOFF_MIN;
                        while !shutdown.load(Ordering::Relaxed) {
                            match endpoint.recv_timeout(backoff) {
                                Ok(Some(delivery)) => {
                                    backoff = IDLE_BACKOFF_MIN;
                                    if inline {
                                        dispatch(&endpoint, handler.as_ref(), delivery);
                                    } else if work_tx.send(delivery).is_err() {
                                        break;
                                    }
                                }
                                Ok(None) => {
                                    // Exponential back-off while idle (Section 3.2).
                                    backoff = (backoff * 2).min(IDLE_BACKOFF_MAX);
                                }
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn xchg thread"),
            );
        }

        RpcServer { shutdown, threads }
    }

    /// Signal shutdown and join all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn dispatch(endpoint: &Endpoint, handler: &dyn RpcHandler, delivery: Delivery) {
    match delivery {
        Delivery::Request {
            from,
            call_id,
            payload,
        } => {
            let response = handler.handle_request(from, payload);
            // If the caller has given up (timed out) the reply fails; that is
            // not an error for the server.
            let _ = endpoint.reply(from, call_id, response);
        }
        Delivery::Message { from, payload } => handler.handle_message(from, payload),
        Delivery::WriteImmediate {
            from,
            region,
            offset,
            len,
            immediate,
        } => handler.handle_write_immediate(from, region, offset, len, immediate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use nova_common::Error;
    use std::sync::atomic::AtomicU64;

    struct EchoHandler {
        messages_seen: AtomicU64,
        immediates_seen: AtomicU64,
    }

    impl RpcHandler for EchoHandler {
        fn handle_request(&self, _from: NodeId, payload: Bytes) -> Result<Bytes> {
            if payload.is_empty() {
                return Err(Error::InvalidArgument("empty".into()));
            }
            Ok(payload)
        }

        fn handle_message(&self, _from: NodeId, _payload: Bytes) {
            self.messages_seen.fetch_add(1, Ordering::SeqCst);
        }

        fn handle_write_immediate(
            &self,
            _from: NodeId,
            _r: crate::message::RegionId,
            _o: u64,
            _l: u64,
            _i: u32,
        ) {
            self.immediates_seen.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn new_echo() -> Arc<EchoHandler> {
        Arc::new(EchoHandler {
            messages_seen: AtomicU64::new(0),
            immediates_seen: AtomicU64::new(0),
        })
    }

    #[test]
    fn server_answers_requests_from_multiple_clients() {
        let fabric = Fabric::with_defaults(3);
        let server_ep = fabric.endpoint(NodeId(2));
        let server = RpcServer::start(server_ep, new_echo(), 2, 2);

        let mut joins = Vec::new();
        for client in 0..2u32 {
            let ep = fabric.endpoint(NodeId(client));
            joins.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let msg = Bytes::from(format!("client {client} msg {i}"));
                    let reply = ep.call(NodeId(2), msg.clone()).unwrap();
                    assert_eq!(reply, msg);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn server_propagates_handler_errors() {
        let fabric = Fabric::with_defaults(2);
        let server = RpcServer::start(fabric.endpoint(NodeId(1)), new_echo(), 1, 0);
        let client = fabric.endpoint(NodeId(0));
        let err = client.call(NodeId(1), Bytes::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        server.stop();
    }

    #[test]
    fn server_sees_messages_and_immediates() {
        let fabric = Fabric::with_defaults(2);
        let handler = new_echo();
        let server = RpcServer::start(fabric.endpoint(NodeId(1)), handler.clone(), 1, 1);
        let client = fabric.endpoint(NodeId(0));
        let region = fabric.endpoint(NodeId(1)).register_region(16);
        client.send(NodeId(1), Bytes::from_static(b"one-way")).unwrap();
        client.rdma_write(NodeId(1), region, 0, b"data", Some(7)).unwrap();
        // Wait for asynchronous processing.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while std::time::Instant::now() < deadline {
            if handler.messages_seen.load(Ordering::SeqCst) == 1
                && handler.immediates_seen.load(Ordering::SeqCst) == 1
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handler.messages_seen.load(Ordering::SeqCst), 1);
        assert_eq!(handler.immediates_seen.load(Ordering::SeqCst), 1);
        server.stop();
    }

    #[test]
    fn dropping_the_server_stops_its_threads() {
        let fabric = Fabric::with_defaults(2);
        {
            let _server = RpcServer::start(fabric.endpoint(NodeId(1)), new_echo(), 1, 1);
        }
        // If threads leaked and still owned the receiver, this send would
        // succeed but nobody would drain it; primarily we assert no panic /
        // deadlock on drop.
        let client = fabric.endpoint(NodeId(0));
        let _ = client.send(NodeId(1), Bytes::from_static(b"late"));
    }
}
