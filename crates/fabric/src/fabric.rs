//! The fabric itself: nodes, endpoints and verbs.

use crate::latency::LatencyModel;
use crate::message::{Delivery, RegionId};
use crate::region::{Region, RegionTable};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nova_common::config::FabricConfig;
use nova_common::rate::ComponentStats;
use nova_common::{Error, NodeId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-node state held by the fabric.
struct Node {
    regions: RegionTable,
    inbox_tx: Sender<Delivery>,
    inbox_rx: Receiver<Delivery>,
    /// Completed RPC responses are routed directly to the waiting caller
    /// through this table instead of the inbox.
    pending_calls: Mutex<HashMap<u64, Sender<Result<Bytes>>>>,
    stats: ComponentStats,
    alive: AtomicBool,
    /// Liveness probes answered (the failure detector's heartbeat RPC path).
    pings: AtomicU64,
}

impl Node {
    fn new() -> Self {
        let (inbox_tx, inbox_rx) = unbounded();
        Node {
            regions: RegionTable::new(),
            inbox_tx,
            inbox_rx,
            pending_calls: Mutex::new(HashMap::new()),
            stats: ComponentStats::new(),
            alive: AtomicBool::new(true),
            pings: AtomicU64::new(0),
        }
    }
}

/// The simulated RDMA fabric connecting a fixed set of nodes.
///
/// Nodes are identified by dense [`NodeId`]s `0..num_nodes`. Additional nodes
/// can be added at runtime with [`Fabric::add_node`] (used by the elasticity
/// experiments of Section 9).
pub struct Fabric {
    nodes: parking_lot::RwLock<Vec<Arc<Node>>>,
    latency: LatencyModel,
    next_call_id: AtomicU64,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.nodes.read().len())
            .finish()
    }
}

impl Fabric {
    /// Create a fabric with `num_nodes` nodes using the given configuration.
    pub fn new(num_nodes: usize, config: &FabricConfig) -> Arc<Self> {
        let nodes = (0..num_nodes).map(|_| Arc::new(Node::new())).collect();
        Arc::new(Fabric {
            nodes: parking_lot::RwLock::new(nodes),
            latency: LatencyModel::from_config(config),
            next_call_id: AtomicU64::new(1),
        })
    }

    /// Create a fabric with default configuration — convenient for tests.
    pub fn with_defaults(num_nodes: usize) -> Arc<Self> {
        Self::new(num_nodes, &FabricConfig::default())
    }

    /// Number of nodes currently attached to the fabric.
    pub fn num_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Add a new node, returning its id. Used when the coordinator scales the
    /// cluster out (Section 9).
    pub fn add_node(self: &Arc<Self>) -> NodeId {
        let mut nodes = self.nodes.write();
        nodes.push(Arc::new(Node::new()));
        NodeId((nodes.len() - 1) as u32)
    }

    /// Obtain the endpoint for `node`, through which that node issues verbs.
    pub fn endpoint(self: &Arc<Self>, node: NodeId) -> Endpoint {
        assert!(
            (node.0 as usize) < self.num_nodes(),
            "node {node} is not attached to this fabric"
        );
        Endpoint {
            fabric: Arc::clone(self),
            node,
        }
    }

    /// Mark a node as failed: all verbs targeting it fail until it recovers.
    pub fn fail_node(&self, node: NodeId) {
        if let Some(n) = self.nodes.read().get(node.0 as usize) {
            n.alive.store(false, Ordering::SeqCst);
            // Calls the node has in flight will never complete on a dead
            // RNIC: complete them with an error now instead of stranding
            // the issuing threads for the full call timeout.
            let waiters: Vec<Sender<Result<Bytes>>> =
                n.pending_calls.lock().drain().map(|(_, tx)| tx).collect();
            for tx in waiters {
                let _ = tx.send(Err(Error::FabricUnavailable(format!("{node} has failed"))));
            }
        }
    }

    /// Recover a previously failed node.
    pub fn recover_node(&self, node: NodeId) {
        if let Some(n) = self.nodes.read().get(node.0 as usize) {
            n.alive.store(true, Ordering::SeqCst);
        }
    }

    /// Liveness probe of `node`: the heartbeat RPC the failure detector
    /// rides on. Models the coordinator's periodic heartbeat exchange with
    /// each component — succeeds (and counts on the node's ping counter) iff
    /// the node is attached and alive, and fails with the same
    /// [`Error::FabricUnavailable`] a data verb against the dead node would
    /// surface.
    pub fn ping(&self, node: NodeId) -> Result<()> {
        let n = self.live_node(node)?;
        n.pings.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// True if the node is currently reachable.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes
            .read()
            .get(node.0 as usize)
            .map(|n| n.alive.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    fn node(&self, node: NodeId) -> Result<Arc<Node>> {
        self.nodes
            .read()
            .get(node.0 as usize)
            .cloned()
            .ok_or(Error::FabricUnavailable(format!("{node} does not exist")))
    }

    /// Snapshot of one node's fabric-side accounting (the health report's
    /// per-node traffic view). `None` for detached nodes.
    pub fn node_stats(&self, node: NodeId) -> Option<FabricNodeStats> {
        self.nodes.read().get(node.0 as usize).map(|n| FabricNodeStats {
            bytes_read: n.stats.bytes_read.get(),
            bytes_written: n.stats.bytes_written.get(),
            network_busy_nanos: n.stats.cpu.busy_nanos(),
            alive: n.alive.load(Ordering::SeqCst),
            pings: n.pings.load(Ordering::Relaxed),
        })
    }

    fn live_node(&self, node: NodeId) -> Result<Arc<Node>> {
        let n = self.node(node)?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::FabricUnavailable(format!("{node} has failed")));
        }
        Ok(n)
    }

    fn charge(&self, issuer: &Node, bytes: usize) {
        let d = self.latency.transfer_time(bytes);
        issuer.stats.cpu.add(d);
        if self.latency.simulate_delay && !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Point-in-time fabric accounting for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricNodeStats {
    /// Bytes the node has read with one-sided READs.
    pub bytes_read: u64,
    /// Bytes the node has written with WRITE / SEND / replies.
    pub bytes_written: u64,
    /// Simulated network busy time charged to the node, in nanoseconds.
    pub network_busy_nanos: u64,
    /// False once the node has been failed and not yet recovered.
    pub alive: bool,
    /// Liveness probes ([`Fabric::ping`]) the node has answered.
    pub pings: u64,
}

/// A node's handle onto the fabric. All verbs are issued through an endpoint
/// and charged to that endpoint's node.
#[derive(Clone)]
pub struct Endpoint {
    fabric: Arc<Fabric>,
    node: NodeId,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("node", &self.node).finish()
    }
}

impl Endpoint {
    /// The node this endpoint belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    // ----- memory region management (local) -------------------------------

    /// Register a memory region of `capacity` bytes on this node.
    pub fn register_region(&self, capacity: usize) -> RegionId {
        let node = self.fabric.node(self.node).expect("own node exists");
        node.regions.register(capacity)
    }

    /// Deregister a region on this node.
    pub fn deregister_region(&self, region: RegionId) -> bool {
        let node = self.fabric.node(self.node).expect("own node exists");
        node.regions.deregister(region)
    }

    /// Access one of this node's own regions directly (no fabric cost).
    pub fn local_region(&self, region: RegionId) -> Result<Arc<Region>> {
        let node = self.fabric.node(self.node)?;
        node.regions.get(region)
    }

    /// Total bytes of memory registered on this node.
    pub fn registered_bytes(&self) -> usize {
        let node = self.fabric.node(self.node).expect("own node exists");
        node.regions.registered_bytes()
    }

    // ----- one-sided verbs -------------------------------------------------

    /// `RDMA READ`: read `len` bytes at `offset` from `region` on `target`,
    /// bypassing the target's CPU.
    pub fn rdma_read(&self, target: NodeId, region: RegionId, offset: u64, len: usize) -> Result<Bytes> {
        let issuer = self.fabric.live_node(self.node)?;
        let peer = self.fabric.live_node(target)?;
        let data = peer.regions.get(region)?.read(offset, len)?;
        issuer.stats.bytes_read.add(len as u64);
        self.fabric.charge(&issuer, len);
        Ok(Bytes::from(data))
    }

    /// `RDMA WRITE`: write `data` at `offset` into `region` on `target`,
    /// bypassing the target's CPU. If `immediate` is provided the target is
    /// notified with a [`Delivery::WriteImmediate`].
    pub fn rdma_write(
        &self,
        target: NodeId,
        region: RegionId,
        offset: u64,
        data: &[u8],
        immediate: Option<u32>,
    ) -> Result<()> {
        let issuer = self.fabric.live_node(self.node)?;
        let peer = self.fabric.live_node(target)?;
        peer.regions.get(region)?.write(offset, data)?;
        issuer.stats.bytes_written.add(data.len() as u64);
        self.fabric.charge(&issuer, data.len());
        if let Some(imm) = immediate {
            let delivery = Delivery::WriteImmediate {
                from: self.node,
                region,
                offset,
                len: data.len() as u64,
                immediate: imm,
            };
            peer.inbox_tx
                .send(delivery)
                .map_err(|_| Error::FabricUnavailable(format!("{target} inbox closed")))?;
        }
        Ok(())
    }

    // ----- two-sided verbs -------------------------------------------------

    /// `RDMA SEND`: deliver `payload` into the target's receive queue. This
    /// involves the target's CPU (it must pull the message).
    pub fn send(&self, target: NodeId, payload: Bytes) -> Result<()> {
        let issuer = self.fabric.live_node(self.node)?;
        let peer = self.fabric.live_node(target)?;
        issuer.stats.bytes_written.add(payload.len() as u64);
        self.fabric.charge(&issuer, payload.len());
        peer.inbox_tx
            .send(Delivery::Message {
                from: self.node,
                payload,
            })
            .map_err(|_| Error::FabricUnavailable(format!("{target} inbox closed")))
    }

    /// Block until a delivery arrives for this node.
    pub fn recv(&self) -> Result<Delivery> {
        let node = self.fabric.node(self.node)?;
        node.inbox_rx.recv().map_err(|_| Error::ShuttingDown)
    }

    /// Receive with a timeout; returns `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Delivery>> {
        let node = self.fabric.node(self.node)?;
        match node.inbox_rx.recv_timeout(timeout) {
            Ok(d) => Ok(Some(d)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(Error::ShuttingDown),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Delivery> {
        let node = self.fabric.node(self.node).ok()?;
        node.inbox_rx.try_recv().ok()
    }

    // ----- RPC layer --------------------------------------------------------

    /// Issue a request to `target` and block until its handler replies.
    ///
    /// The request is delivered as a [`Delivery::Request`]; the responder
    /// must call [`Endpoint::reply`] with the same `call_id`.
    pub fn call(&self, target: NodeId, payload: Bytes) -> Result<Bytes> {
        self.call_timeout(target, payload, Duration::from_secs(30))
    }

    /// [`Endpoint::call`] with an explicit timeout.
    pub fn call_timeout(&self, target: NodeId, payload: Bytes, timeout: Duration) -> Result<Bytes> {
        let issuer = self.fabric.live_node(self.node)?;
        let peer = self.fabric.live_node(target)?;
        let call_id = self.fabric.next_call_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::bounded(1);
        issuer.pending_calls.lock().insert(call_id, tx);
        issuer.stats.bytes_written.add(payload.len() as u64);
        self.fabric.charge(&issuer, payload.len());
        let sent = peer
            .inbox_tx
            .send(Delivery::Request {
                from: self.node,
                call_id,
                payload,
            })
            .map_err(|_| Error::FabricUnavailable(format!("{target} inbox closed")));
        if let Err(e) = sent {
            issuer.pending_calls.lock().remove(&call_id);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => {
                issuer.pending_calls.lock().remove(&call_id);
                Err(Error::FabricUnavailable(format!(
                    "call {call_id} to {target} timed out"
                )))
            }
        }
    }

    /// Reply to a previously received [`Delivery::Request`].
    ///
    /// If this node failed after the request was delivered but before the
    /// reply, the waiting caller is still unblocked — with a
    /// [`Error::FabricUnavailable`] instead of the payload, the way a real
    /// RNIC surfaces a peer death as a completion error. Silently dropping
    /// the reply would strand the caller for its full call timeout.
    pub fn reply(&self, target: NodeId, call_id: u64, payload: Result<Bytes>) -> Result<()> {
        // The issuer is resolved even when dead (to unblock its waiting
        // caller with an error), but a dead *target* still rejects delivery:
        // a failed caller must not observe successful RPC completions.
        let issuer = self.fabric.node(self.node)?;
        let peer = match self.fabric.live_node(target) {
            Ok(peer) => peer,
            Err(e) => {
                // The caller's node died while this call was in flight. Its
                // RNIC cannot receive the completion, but the waiting thread
                // must not sit out the full call timeout: hand it an error.
                if let Ok(dead) = self.fabric.node(target) {
                    if let Some(tx) = dead.pending_calls.lock().remove(&call_id) {
                        let _ = tx.send(Err(Error::FabricUnavailable(format!("{target} has failed"))));
                    }
                }
                return Err(e);
            }
        };
        let issuer_alive = issuer.alive.load(Ordering::SeqCst);
        let payload = if issuer_alive {
            let bytes = payload.as_ref().map(|b| b.len()).unwrap_or(0);
            issuer.stats.bytes_written.add(bytes as u64);
            self.fabric.charge(&issuer, bytes);
            payload
        } else {
            Err(Error::FabricUnavailable(format!("{} has failed", self.node)))
        };
        let waiter = peer.pending_calls.lock().remove(&call_id);
        let delivered = match waiter {
            Some(tx) => {
                let _ = tx.send(payload);
                Ok(())
            }
            None => Err(Error::InvalidArgument(format!(
                "no pending call {call_id} on {target}"
            ))),
        };
        if !issuer_alive {
            return Err(Error::FabricUnavailable(format!("{} has failed", self.node)));
        }
        delivered
    }

    // ----- statistics -------------------------------------------------------

    /// Bytes this node has read with one-sided READs.
    pub fn bytes_read(&self) -> u64 {
        self.fabric
            .node(self.node)
            .map(|n| n.stats.bytes_read.get())
            .unwrap_or(0)
    }

    /// Bytes this node has written with WRITE / SEND / replies.
    pub fn bytes_written(&self) -> u64 {
        self.fabric
            .node(self.node)
            .map(|n| n.stats.bytes_written.get())
            .unwrap_or(0)
    }

    /// Simulated network busy time charged to this node, in nanoseconds.
    pub fn network_busy_nanos(&self) -> u64 {
        self.fabric
            .node(self.node)
            .map(|n| n.stats.cpu.busy_nanos())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_write_then_read_round_trips() {
        let fabric = Fabric::with_defaults(2);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let region = b.register_region(1024);
        a.rdma_write(NodeId(1), region, 100, b"one-sided", None).unwrap();
        let data = a.rdma_read(NodeId(1), region, 100, 9).unwrap();
        assert_eq!(&data[..], b"one-sided");
        // One-sided verbs never produce a delivery at the target.
        assert!(b.try_recv().is_none());
        assert_eq!(a.bytes_written(), 9);
        assert_eq!(a.bytes_read(), 9);
    }

    #[test]
    fn write_with_immediate_notifies_target() {
        let fabric = Fabric::with_defaults(2);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let region = b.register_region(64);
        a.rdma_write(NodeId(1), region, 0, b"block", Some(42)).unwrap();
        match b.recv().unwrap() {
            Delivery::WriteImmediate {
                from,
                region: r,
                offset,
                len,
                immediate,
            } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(r, region);
                assert_eq!(offset, 0);
                assert_eq!(len, 5);
                assert_eq!(immediate, 42);
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn send_delivers_in_order() {
        let fabric = Fabric::with_defaults(2);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        for i in 0..10u8 {
            a.send(NodeId(1), Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..10u8 {
            match b.recv().unwrap() {
                Delivery::Message { payload, .. } => assert_eq!(payload[0], i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rpc_round_trip() {
        let fabric = Fabric::with_defaults(2);
        let client = fabric.endpoint(NodeId(0));
        let server = fabric.endpoint(NodeId(1));
        let handle = std::thread::spawn(move || match server.recv().unwrap() {
            Delivery::Request {
                from,
                call_id,
                payload,
            } => {
                let mut response = payload.to_vec();
                response.reverse();
                server.reply(from, call_id, Ok(Bytes::from(response))).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        });
        let response = client.call(NodeId(1), Bytes::from_static(b"abc")).unwrap();
        assert_eq!(&response[..], b"cba");
        handle.join().unwrap();
    }

    #[test]
    fn rpc_can_return_errors() {
        let fabric = Fabric::with_defaults(2);
        let client = fabric.endpoint(NodeId(0));
        let server = fabric.endpoint(NodeId(1));
        let handle = std::thread::spawn(move || {
            if let Delivery::Request { from, call_id, .. } = server.recv().unwrap() {
                server.reply(from, call_id, Err(Error::NotFound)).unwrap();
            }
        });
        let err = client.call(NodeId(1), Bytes::from_static(b"k")).unwrap_err();
        assert_eq!(err, Error::NotFound);
        handle.join().unwrap();
    }

    #[test]
    fn failed_node_rejects_verbs_until_recovered() {
        let fabric = Fabric::with_defaults(2);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let region = b.register_region(16);
        fabric.fail_node(NodeId(1));
        assert!(!fabric.is_alive(NodeId(1)));
        assert!(a.rdma_read(NodeId(1), region, 0, 1).is_err());
        assert!(a.rdma_write(NodeId(1), region, 0, b"x", None).is_err());
        assert!(a.send(NodeId(1), Bytes::new()).is_err());
        fabric.recover_node(NodeId(1));
        assert!(fabric.is_alive(NodeId(1)));
        assert!(a.rdma_read(NodeId(1), region, 0, 1).is_ok());
    }

    #[test]
    fn reply_from_a_failed_node_unblocks_the_caller_with_an_error() {
        // A request delivered just before the responder fails must not
        // strand the caller for its full call timeout: the responder's
        // (rejected) reply surfaces as a completion error instead.
        let fabric = Fabric::with_defaults(2);
        let client = fabric.endpoint(NodeId(0));
        let server = fabric.endpoint(NodeId(1));
        let fabric2 = Arc::clone(&fabric);
        let handle = std::thread::spawn(move || {
            if let Delivery::Request { from, call_id, .. } = server.recv().unwrap() {
                // The responder dies after the request was delivered.
                fabric2.fail_node(NodeId(1));
                let err = server
                    .reply(from, call_id, Ok(Bytes::from_static(b"late")))
                    .unwrap_err();
                assert!(matches!(err, Error::FabricUnavailable(_)));
            }
        });
        let start = std::time::Instant::now();
        let err = client
            .call_timeout(NodeId(1), Bytes::from_static(b"req"), Duration::from_secs(30))
            .unwrap_err();
        assert!(matches!(err, Error::FabricUnavailable(_)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the caller must be unblocked promptly, not wait out the timeout"
        );
        handle.join().unwrap();
    }

    #[test]
    fn ping_tracks_liveness_and_counts() {
        let fabric = Fabric::with_defaults(2);
        assert!(fabric.ping(NodeId(1)).is_ok());
        assert!(fabric.ping(NodeId(1)).is_ok());
        assert_eq!(fabric.node_stats(NodeId(1)).unwrap().pings, 2);
        fabric.fail_node(NodeId(1));
        let err = fabric.ping(NodeId(1)).unwrap_err();
        assert!(matches!(err, Error::FabricUnavailable(_)));
        // A failed probe does not count as answered.
        assert_eq!(fabric.node_stats(NodeId(1)).unwrap().pings, 2);
        fabric.recover_node(NodeId(1));
        assert!(fabric.ping(NodeId(1)).is_ok());
        // Probing a detached node is an error, not a panic.
        assert!(fabric.ping(NodeId(9)).is_err());
    }

    #[test]
    fn add_node_grows_the_fabric() {
        let fabric = Fabric::with_defaults(1);
        assert_eq!(fabric.num_nodes(), 1);
        let id = fabric.add_node();
        assert_eq!(id, NodeId(1));
        assert_eq!(fabric.num_nodes(), 2);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(id);
        let r = b.register_region(8);
        a.rdma_write(id, r, 0, b"hi", None).unwrap();
        assert_eq!(&a.rdma_read(id, r, 0, 2).unwrap()[..], b"hi");
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let fabric = Fabric::with_defaults(1);
        let a = fabric.endpoint(NodeId(0));
        assert!(a.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn call_timeout_cleans_up_pending_entry() {
        let fabric = Fabric::with_defaults(2);
        let a = fabric.endpoint(NodeId(0));
        // Nobody is serving node 1, so the call times out.
        let err = a
            .call_timeout(NodeId(1), Bytes::from_static(b"x"), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, Error::FabricUnavailable(_)));
    }

    #[test]
    #[should_panic]
    fn endpoint_for_unknown_node_panics() {
        let fabric = Fabric::with_defaults(1);
        let _ = fabric.endpoint(NodeId(5));
    }
}
