//! Registered memory regions.
//!
//! A node registers memory regions with the fabric; peers may then read and
//! write those regions with one-sided verbs. An in-memory StoC file, a StoC
//! file buffer slot, and a log-record replica are all registered regions.

use crate::message::RegionId;
use nova_common::{Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single registered memory region. Peers address it by `(NodeId, RegionId)`.
#[derive(Debug)]
pub struct Region {
    data: RwLock<Vec<u8>>,
    capacity: usize,
}

impl Region {
    fn new(capacity: usize) -> Self {
        Region {
            data: RwLock::new(vec![0; capacity]),
            capacity,
        }
    }

    /// The fixed capacity of the region in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Copy `src` into the region at `offset`.
    pub fn write(&self, offset: u64, src: &[u8]) -> Result<()> {
        let offset = offset as usize;
        let end = offset
            .checked_add(src.len())
            .ok_or_else(|| Error::InvalidArgument("region write overflows address space".into()))?;
        if end > self.capacity {
            return Err(Error::InvalidArgument(format!(
                "region write [{offset}, {end}) exceeds capacity {}",
                self.capacity
            )));
        }
        self.data.write()[offset..end].copy_from_slice(src);
        Ok(())
    }

    /// Read `len` bytes starting at `offset`.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let offset = offset as usize;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| Error::InvalidArgument("region read overflows address space".into()))?;
        if end > self.capacity {
            return Err(Error::InvalidArgument(format!(
                "region read [{offset}, {end}) exceeds capacity {}",
                self.capacity
            )));
        }
        Ok(self.data.read()[offset..end].to_vec())
    }
}

/// The set of regions registered by one node.
#[derive(Debug, Default)]
pub struct RegionTable {
    regions: RwLock<HashMap<RegionId, Arc<Region>>>,
    next_id: AtomicU64,
}

impl RegionTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new zero-filled region of `capacity` bytes.
    pub fn register(&self, capacity: usize) -> RegionId {
        let id = RegionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.regions.write().insert(id, Arc::new(Region::new(capacity)));
        id
    }

    /// Deregister a region, freeing its memory. Outstanding handles keep the
    /// memory alive until dropped, matching RDMA deregistration semantics.
    pub fn deregister(&self, id: RegionId) -> bool {
        self.regions.write().remove(&id).is_some()
    }

    /// Look up a region.
    pub fn get(&self, id: RegionId) -> Result<Arc<Region>> {
        self.regions
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument(format!("unknown memory region {id:?}")))
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total registered bytes.
    pub fn registered_bytes(&self) -> usize {
        self.regions.read().values().map(|r| r.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_write_round_trip() {
        let table = RegionTable::new();
        let id = table.register(64);
        let region = table.get(id).unwrap();
        region.write(8, b"hello").unwrap();
        assert_eq!(region.read(8, 5).unwrap(), b"hello");
        // Unwritten bytes read as zero.
        assert_eq!(region.read(0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let table = RegionTable::new();
        let id = table.register(16);
        let region = table.get(id).unwrap();
        assert!(region.write(10, &[0u8; 10]).is_err());
        assert!(region.read(10, 10).is_err());
        assert!(region.write(u64::MAX, b"x").is_err());
        assert!(region.read(u64::MAX, 1).is_err());
        // Exactly at capacity is fine.
        assert!(region.write(0, &[1u8; 16]).is_ok());
        assert_eq!(region.read(0, 16).unwrap().len(), 16);
    }

    #[test]
    fn deregister_removes_region() {
        let table = RegionTable::new();
        let id = table.register(8);
        assert_eq!(table.len(), 1);
        assert_eq!(table.registered_bytes(), 8);
        assert!(table.deregister(id));
        assert!(!table.deregister(id));
        assert!(table.get(id).is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn region_ids_are_unique() {
        let table = RegionTable::new();
        let a = table.register(8);
        let b = table.register(8);
        assert_ne!(a, b);
    }
}
