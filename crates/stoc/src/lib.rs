//! # nova-stoc
//!
//! The Storage Component (StoC) of Nova-LSM (Section 6 of the paper) and the
//! client machinery other components use to talk to it.
//!
//! A StoC is deliberately simple: it stores, retrieves and manages
//! variable-sized blocks in append-only files, exposes its disk queue depth
//! (so LTCs can run power-of-d placement), serves one-sided in-memory files
//! for LogC, and can execute offloaded compaction jobs on behalf of LTCs
//! (Section 4.3).
//!
//! Storage media:
//! * [`medium::SimDisk`] — an in-memory disk with a hard-disk timing model
//!   (seek + bytes/bandwidth, single arm, observable queue). This substitutes
//!   for the paper's per-node 1 TB hard disks and is what the experiment
//!   harness uses.
//! * [`medium::FsDisk`] — real files on the local filesystem, no timing
//!   model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod compaction;
pub mod io_pool;
pub mod medium;
pub mod message;
pub mod replication;
pub mod server;
pub mod table_io;

pub use client::{MemFileHandle, StocClient, StocDirectory, StocStats};
pub use compaction::{execute_compaction, load_table_entries, CompactionJob};
pub use io_pool::{IoPool, DEFAULT_IO_PARALLELISM};
pub use medium::{DiskStats, FsDisk, SimDisk, StorageMedium};
pub use message::{StocRequest, StocResponse};
pub use replication::{copy_fragment, copy_meta_block, with_fragment_replica, with_meta_replica};
pub use server::{StocServer, StocState};
pub use table_io::{
    delete_table, local_spec, read_fragment, read_meta_block, write_table, ScatteredBlockFetcher,
    TableWriteSpec,
};
