//! The wire protocol between StoC clients (LTCs, LogCs, other StoCs) and a
//! StoC server.
//!
//! The interfaces mirror Figure 4 and Section 6 of the paper: variable-sized
//! block interfaces over append-only files, plus in-memory StoC files used by
//! LogC, plus the compaction-offload entry point (Section 4.3). Data movement
//! happens through one-sided verbs; these messages carry only control
//! information and small metadata.

use crate::compaction::CompactionJob;
use nova_common::varint::{
    decode_length_prefixed_slice, decode_varint32, decode_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use nova_common::{Error, Result, StocFileId};
use nova_sstable::SstableMeta;

/// A request sent to a StoC.
#[derive(Debug, Clone, PartialEq)]
pub enum StocRequest {
    /// Open a new persistent StoC file and allocate a file-buffer memory
    /// region of `size` bytes the client will `RDMA WRITE` its block into
    /// (Figure 10, step 1).
    OpenFileForWrite {
        /// Size of the block about to be written.
        size: u64,
    },
    /// Flush a previously opened file's buffer to disk and release the
    /// buffer (Figure 10, steps 3–4).
    SealFile {
        /// The file returned by [`StocRequest::OpenFileForWrite`].
        file: StocFileId,
    },
    /// Read `len` bytes at `offset` of `file` into the client's registered
    /// region `client_region` via `RDMA WRITE` (Section 6.2).
    ReadBlock {
        /// File to read.
        file: StocFileId,
        /// Offset within the file.
        offset: u64,
        /// Number of bytes.
        len: u64,
        /// The client's memory region to write the data into.
        client_region: u64,
    },
    /// Delete a persistent file.
    DeleteFile {
        /// File to delete.
        file: StocFileId,
    },
    /// Query the size of a persistent file.
    FileSize {
        /// File to query.
        file: StocFileId,
    },
    /// Query the disk queue depth (power-of-d peeks at this, Section 4.4).
    QueueDepth,
    /// List every persistent file on this StoC (used when a StoC rejoins the
    /// configuration, Section 9).
    ListFiles,
    /// Open (or reopen) a named in-memory StoC file of `size` bytes backed by
    /// a registered region; the client appends log records with one-sided
    /// writes (Section 6.1).
    OpenMemFile {
        /// Logical name, e.g. `log/<range>/<memtable-id>`.
        name: String,
        /// Region capacity in bytes.
        size: u64,
    },
    /// Look up a named in-memory file (used during recovery).
    GetMemFile {
        /// Logical name.
        name: String,
    },
    /// List in-memory files whose name starts with `prefix`.
    ListMemFiles {
        /// Name prefix.
        prefix: String,
    },
    /// Delete a named in-memory file (when its memtable is flushed).
    DeleteMemFile {
        /// Logical name.
        name: String,
    },
    /// Execute an offloaded compaction job (Section 4.3).
    Compaction(CompactionJob),
    /// Retrieve cumulative statistics.
    Stats,
    /// Append a chunk of log records to a named *persistent* log file
    /// (durability mode of LogC, Section 5). The write is charged to the
    /// StoC's disk.
    AppendLog {
        /// Logical log name, e.g. `log/<range>/<memtable-id>`.
        name: String,
        /// The serialized log records.
        data: Vec<u8>,
    },
    /// Read the entire contents of a named persistent log file.
    ReadLog {
        /// Logical log name.
        name: String,
    },
    /// List persistent log files whose name starts with `prefix`.
    ListLogs {
        /// Name prefix.
        prefix: String,
    },
    /// Delete a named persistent log file.
    DeleteLog {
        /// Logical log name.
        name: String,
    },
}

/// A successful response from a StoC.
#[derive(Debug, Clone, PartialEq)]
pub enum StocResponse {
    /// A file was opened; the client may now write into `region`.
    Opened {
        /// The new file's id.
        file: StocFileId,
        /// The file-buffer region to `RDMA WRITE` into.
        region: u64,
    },
    /// A file was sealed to disk.
    Sealed {
        /// Final size of the file on disk.
        size: u64,
    },
    /// A block read completed; the data now sits in the client's region.
    BlockRead,
    /// Generic acknowledgement.
    Ok,
    /// A file size.
    Size {
        /// The size in bytes.
        size: u64,
    },
    /// The disk queue depth.
    Depth {
        /// Requests queued or in service.
        depth: u64,
    },
    /// A list of persistent files.
    Files {
        /// The file ids.
        files: Vec<StocFileId>,
    },
    /// Information about an in-memory file.
    MemFile {
        /// Backing file id.
        file: StocFileId,
        /// Registered region holding the contents.
        region: u64,
        /// Region capacity.
        size: u64,
    },
    /// Names of in-memory files.
    MemFiles {
        /// Matching names.
        names: Vec<String>,
    },
    /// Results of an offloaded compaction.
    CompactionDone {
        /// Metadata of the newly written output tables.
        outputs: Vec<SstableMeta>,
    },
    /// Cumulative statistics.
    Stats {
        /// Disk queue depth.
        queue_depth: u64,
        /// Total bytes written to the medium.
        bytes_written: u64,
        /// Total bytes read from the medium.
        bytes_read: u64,
        /// Simulated disk busy time in nanoseconds.
        disk_busy_nanos: u64,
        /// Number of persistent files.
        num_files: u64,
    },
    /// The contents of a persistent log file.
    LogContent {
        /// The serialized log records.
        data: Vec<u8>,
    },
}

// --- encoding helpers -------------------------------------------------------

fn put_string(dst: &mut Vec<u8>, s: &str) {
    put_length_prefixed_slice(dst, s.as_bytes());
}

fn get_string(src: &[u8]) -> Result<(String, usize)> {
    let (bytes, n) = decode_length_prefixed_slice(src)?;
    Ok((
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corruption("invalid utf-8 in StoC message".into()))?,
        n,
    ))
}

impl StocRequest {
    /// Serialize the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StocRequest::OpenFileForWrite { size } => {
                out.push(1);
                put_varint64(&mut out, *size);
            }
            StocRequest::SealFile { file } => {
                out.push(2);
                put_varint64(&mut out, file.0);
            }
            StocRequest::ReadBlock {
                file,
                offset,
                len,
                client_region,
            } => {
                out.push(3);
                put_varint64(&mut out, file.0);
                put_varint64(&mut out, *offset);
                put_varint64(&mut out, *len);
                put_varint64(&mut out, *client_region);
            }
            StocRequest::DeleteFile { file } => {
                out.push(4);
                put_varint64(&mut out, file.0);
            }
            StocRequest::FileSize { file } => {
                out.push(5);
                put_varint64(&mut out, file.0);
            }
            StocRequest::QueueDepth => out.push(6),
            StocRequest::ListFiles => out.push(7),
            StocRequest::OpenMemFile { name, size } => {
                out.push(8);
                put_string(&mut out, name);
                put_varint64(&mut out, *size);
            }
            StocRequest::GetMemFile { name } => {
                out.push(9);
                put_string(&mut out, name);
            }
            StocRequest::ListMemFiles { prefix } => {
                out.push(10);
                put_string(&mut out, prefix);
            }
            StocRequest::DeleteMemFile { name } => {
                out.push(11);
                put_string(&mut out, name);
            }
            StocRequest::Compaction(job) => {
                out.push(12);
                let encoded = job.encode();
                put_length_prefixed_slice(&mut out, &encoded);
            }
            StocRequest::Stats => out.push(13),
            StocRequest::AppendLog { name, data } => {
                out.push(14);
                put_string(&mut out, name);
                put_length_prefixed_slice(&mut out, data);
            }
            StocRequest::ReadLog { name } => {
                out.push(15);
                put_string(&mut out, name);
            }
            StocRequest::ListLogs { prefix } => {
                out.push(16);
                put_string(&mut out, prefix);
            }
            StocRequest::DeleteLog { name } => {
                out.push(17);
                put_string(&mut out, name);
            }
        }
        out
    }

    /// Deserialize a request.
    pub fn decode(src: &[u8]) -> Result<StocRequest> {
        let tag = *src
            .first()
            .ok_or_else(|| Error::Corruption("empty StoC request".into()))?;
        let body = &src[1..];
        Ok(match tag {
            1 => {
                let (size, _) = decode_varint64(body)?;
                StocRequest::OpenFileForWrite { size }
            }
            2 => {
                let (file, _) = decode_varint64(body)?;
                StocRequest::SealFile {
                    file: StocFileId(file),
                }
            }
            3 => {
                let (file, a) = decode_varint64(body)?;
                let (offset, b) = decode_varint64(&body[a..])?;
                let (len, c) = decode_varint64(&body[a + b..])?;
                let (client_region, _) = decode_varint64(&body[a + b + c..])?;
                StocRequest::ReadBlock {
                    file: StocFileId(file),
                    offset,
                    len,
                    client_region,
                }
            }
            4 => {
                let (file, _) = decode_varint64(body)?;
                StocRequest::DeleteFile {
                    file: StocFileId(file),
                }
            }
            5 => {
                let (file, _) = decode_varint64(body)?;
                StocRequest::FileSize {
                    file: StocFileId(file),
                }
            }
            6 => StocRequest::QueueDepth,
            7 => StocRequest::ListFiles,
            8 => {
                let (name, n) = get_string(body)?;
                let (size, _) = decode_varint64(&body[n..])?;
                StocRequest::OpenMemFile { name, size }
            }
            9 => {
                let (name, _) = get_string(body)?;
                StocRequest::GetMemFile { name }
            }
            10 => {
                let (prefix, _) = get_string(body)?;
                StocRequest::ListMemFiles { prefix }
            }
            11 => {
                let (name, _) = get_string(body)?;
                StocRequest::DeleteMemFile { name }
            }
            12 => {
                let (encoded, _) = decode_length_prefixed_slice(body)?;
                StocRequest::Compaction(CompactionJob::decode(encoded)?)
            }
            13 => StocRequest::Stats,
            14 => {
                let (name, n) = get_string(body)?;
                let (data, _) = decode_length_prefixed_slice(&body[n..])?;
                StocRequest::AppendLog {
                    name,
                    data: data.to_vec(),
                }
            }
            15 => {
                let (name, _) = get_string(body)?;
                StocRequest::ReadLog { name }
            }
            16 => {
                let (prefix, _) = get_string(body)?;
                StocRequest::ListLogs { prefix }
            }
            17 => {
                let (name, _) = get_string(body)?;
                StocRequest::DeleteLog { name }
            }
            other => return Err(Error::Corruption(format!("unknown StoC request tag {other}"))),
        })
    }
}

impl StocResponse {
    /// Serialize the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StocResponse::Opened { file, region } => {
                out.push(1);
                put_varint64(&mut out, file.0);
                put_varint64(&mut out, *region);
            }
            StocResponse::Sealed { size } => {
                out.push(2);
                put_varint64(&mut out, *size);
            }
            StocResponse::BlockRead => out.push(3),
            StocResponse::Ok => out.push(4),
            StocResponse::Size { size } => {
                out.push(5);
                put_varint64(&mut out, *size);
            }
            StocResponse::Depth { depth } => {
                out.push(6);
                put_varint64(&mut out, *depth);
            }
            StocResponse::Files { files } => {
                out.push(7);
                put_varint32(&mut out, files.len() as u32);
                for f in files {
                    put_varint64(&mut out, f.0);
                }
            }
            StocResponse::MemFile { file, region, size } => {
                out.push(8);
                put_varint64(&mut out, file.0);
                put_varint64(&mut out, *region);
                put_varint64(&mut out, *size);
            }
            StocResponse::MemFiles { names } => {
                out.push(9);
                put_varint32(&mut out, names.len() as u32);
                for n in names {
                    put_string(&mut out, n);
                }
            }
            StocResponse::CompactionDone { outputs } => {
                out.push(10);
                put_varint32(&mut out, outputs.len() as u32);
                for o in outputs {
                    let encoded = o.encode();
                    put_length_prefixed_slice(&mut out, &encoded);
                }
            }
            StocResponse::Stats {
                queue_depth,
                bytes_written,
                bytes_read,
                disk_busy_nanos,
                num_files,
            } => {
                out.push(11);
                put_varint64(&mut out, *queue_depth);
                put_varint64(&mut out, *bytes_written);
                put_varint64(&mut out, *bytes_read);
                put_varint64(&mut out, *disk_busy_nanos);
                put_varint64(&mut out, *num_files);
            }
            StocResponse::LogContent { data } => {
                out.push(12);
                put_length_prefixed_slice(&mut out, data);
            }
        }
        out
    }

    /// Deserialize a response.
    pub fn decode(src: &[u8]) -> Result<StocResponse> {
        let tag = *src
            .first()
            .ok_or_else(|| Error::Corruption("empty StoC response".into()))?;
        let body = &src[1..];
        Ok(match tag {
            1 => {
                let (file, a) = decode_varint64(body)?;
                let (region, _) = decode_varint64(&body[a..])?;
                StocResponse::Opened {
                    file: StocFileId(file),
                    region,
                }
            }
            2 => {
                let (size, _) = decode_varint64(body)?;
                StocResponse::Sealed { size }
            }
            3 => StocResponse::BlockRead,
            4 => StocResponse::Ok,
            5 => {
                let (size, _) = decode_varint64(body)?;
                StocResponse::Size { size }
            }
            6 => {
                let (depth, _) = decode_varint64(body)?;
                StocResponse::Depth { depth }
            }
            7 => {
                let (count, mut n) = decode_varint32(body)?;
                let mut files = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (f, c) = decode_varint64(&body[n..])?;
                    files.push(StocFileId(f));
                    n += c;
                }
                StocResponse::Files { files }
            }
            8 => {
                let (file, a) = decode_varint64(body)?;
                let (region, b) = decode_varint64(&body[a..])?;
                let (size, _) = decode_varint64(&body[a + b..])?;
                StocResponse::MemFile {
                    file: StocFileId(file),
                    region,
                    size,
                }
            }
            9 => {
                let (count, mut n) = decode_varint32(body)?;
                let mut names = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (s, c) = get_string(&body[n..])?;
                    names.push(s);
                    n += c;
                }
                StocResponse::MemFiles { names }
            }
            10 => {
                let (count, mut n) = decode_varint32(body)?;
                let mut outputs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (encoded, c) = decode_length_prefixed_slice(&body[n..])?;
                    let (meta, _) = SstableMeta::decode(encoded)?;
                    outputs.push(meta);
                    n += c;
                }
                StocResponse::CompactionDone { outputs }
            }
            11 => {
                let (queue_depth, a) = decode_varint64(body)?;
                let (bytes_written, b) = decode_varint64(&body[a..])?;
                let (bytes_read, c) = decode_varint64(&body[a + b..])?;
                let (disk_busy_nanos, d) = decode_varint64(&body[a + b + c..])?;
                let (num_files, _) = decode_varint64(&body[a + b + c + d..])?;
                StocResponse::Stats {
                    queue_depth,
                    bytes_written,
                    bytes_read,
                    disk_busy_nanos,
                    num_files,
                }
            }
            12 => {
                let (data, _) = decode_length_prefixed_slice(body)?;
                StocResponse::LogContent { data: data.to_vec() }
            }
            other => return Err(Error::Corruption(format!("unknown StoC response tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::{StocBlockHandle, StocId};
    use nova_sstable::FragmentLocation;

    fn round_trip_request(req: StocRequest) {
        let decoded = StocRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: StocResponse) {
        let decoded = StocResponse::decode(&resp.encode()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(StocRequest::OpenFileForWrite { size: 1 << 20 });
        round_trip_request(StocRequest::SealFile { file: StocFileId(99) });
        round_trip_request(StocRequest::ReadBlock {
            file: StocFileId(7),
            offset: 4096,
            len: 8192,
            client_region: 3,
        });
        round_trip_request(StocRequest::DeleteFile { file: StocFileId(1) });
        round_trip_request(StocRequest::FileSize { file: StocFileId(2) });
        round_trip_request(StocRequest::QueueDepth);
        round_trip_request(StocRequest::ListFiles);
        round_trip_request(StocRequest::OpenMemFile {
            name: "log/3/17".into(),
            size: 1 << 16,
        });
        round_trip_request(StocRequest::GetMemFile {
            name: "log/3/17".into(),
        });
        round_trip_request(StocRequest::ListMemFiles {
            prefix: "log/3/".into(),
        });
        round_trip_request(StocRequest::DeleteMemFile {
            name: "log/3/17".into(),
        });
        round_trip_request(StocRequest::Stats);
        round_trip_request(StocRequest::AppendLog {
            name: "log/3/17".into(),
            data: vec![1, 2, 3],
        });
        round_trip_request(StocRequest::ReadLog {
            name: "log/3/17".into(),
        });
        round_trip_request(StocRequest::ListLogs {
            prefix: "log/3/".into(),
        });
        round_trip_request(StocRequest::DeleteLog {
            name: "log/3/17".into(),
        });
    }

    #[test]
    fn compaction_request_round_trips() {
        let meta = SstableMeta {
            file_number: 5,
            level: 0,
            smallest: b"a".to_vec(),
            largest: b"z".to_vec(),
            num_entries: 10,
            data_size: 100,
            fragments: vec![FragmentLocation {
                size: 100,
                replicas: vec![StocBlockHandle {
                    stoc: StocId(0),
                    file: StocFileId::new(StocId(0), 1),
                    offset: 0,
                    size: 100,
                }],
            }],
            meta_blocks: vec![],
            parity: None,
            drange: Some(1),
        };
        let job = CompactionJob {
            range_id: 3,
            inputs: vec![meta],
            output_level: 1,
            output_file_numbers: vec![100, 101],
            output_placement: vec![StocId(0), StocId(1)],
            scatter_width: 1,
            max_output_bytes: 1 << 20,
            block_size: 4096,
            bloom_bits_per_key: 10,
            drop_tombstones: true,
        };
        round_trip_request(StocRequest::Compaction(job));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(StocResponse::Opened {
            file: StocFileId(1),
            region: 2,
        });
        round_trip_response(StocResponse::Sealed { size: 12345 });
        round_trip_response(StocResponse::BlockRead);
        round_trip_response(StocResponse::Ok);
        round_trip_response(StocResponse::Size { size: 1 });
        round_trip_response(StocResponse::Depth { depth: 7 });
        round_trip_response(StocResponse::Files {
            files: vec![StocFileId(1), StocFileId(2)],
        });
        round_trip_response(StocResponse::MemFile {
            file: StocFileId(3),
            region: 4,
            size: 5,
        });
        round_trip_response(StocResponse::MemFiles {
            names: vec!["a".into(), "b".into()],
        });
        round_trip_response(StocResponse::CompactionDone { outputs: vec![] });
        round_trip_response(StocResponse::Stats {
            queue_depth: 1,
            bytes_written: 2,
            bytes_read: 3,
            disk_busy_nanos: 4,
            num_files: 5,
        });
        round_trip_response(StocResponse::LogContent { data: vec![9, 8, 7] });
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(StocRequest::decode(&[]).is_err());
        assert!(StocRequest::decode(&[200]).is_err());
        assert!(StocResponse::decode(&[]).is_err());
        assert!(StocResponse::decode(&[200]).is_err());
    }
}
