//! Offloaded compaction (Section 4.3).
//!
//! "When StoCs have sufficient processing capability, the coordinator thread
//! offloads a compaction job to a StoC … The StoC pre-fetches all SSTables in
//! the compaction job into its memory. It then starts merging these SSTables
//! into a new set of SSTables while respecting the boundaries of Dranges and
//! the maximum SSTable size."
//!
//! The same executor is used by the LTC when it runs compactions locally, so
//! offloading changes *where* the work runs, not *what* it does.

use crate::client::StocClient;
use crate::table_io::{read_fragment, read_meta_block, write_table, TableWriteSpec};
use nova_common::types::Entry;
use nova_common::varint::{
    decode_length_prefixed_slice, decode_varint32, decode_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use nova_common::{Error, Result, SequenceNumber, StocId};
use nova_sstable::{
    collect_entries, MemoryFetcher, MergingIterator, SstableMeta, TableBuilder, TableOptions, TableReader,
    VecIterator,
};

/// A self-contained description of one compaction job, shippable to a StoC.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionJob {
    /// The application range this job belongs to (for bookkeeping only).
    pub range_id: u32,
    /// Input tables. The order matters: earlier tables shadow later ones when
    /// they contain the same internal key, so callers list newer tables
    /// first.
    pub inputs: Vec<SstableMeta>,
    /// Level the outputs are written to.
    pub output_level: u32,
    /// Pre-allocated file numbers for the outputs (must be at least as many
    /// as the job can produce; unused numbers are simply not consumed).
    pub output_file_numbers: Vec<u64>,
    /// Candidate StoCs for output placement, used round-robin.
    pub output_placement: Vec<StocId>,
    /// ρ for the outputs: how many StoCs each output table is scattered
    /// across.
    pub scatter_width: u32,
    /// Maximum bytes of entries per output table (the paper uses the SSTable
    /// size τ, e.g. 16 MB).
    pub max_output_bytes: u64,
    /// Data block size for the outputs.
    pub block_size: u32,
    /// Bloom filter bits per key for the outputs.
    pub bloom_bits_per_key: u32,
    /// Whether tombstones may be dropped (true only when compacting into the
    /// bottom-most populated level).
    pub drop_tombstones: bool,
}

impl CompactionJob {
    /// Serialize the job.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint32(&mut out, self.range_id);
        put_varint32(&mut out, self.inputs.len() as u32);
        for i in &self.inputs {
            let encoded = i.encode();
            put_length_prefixed_slice(&mut out, &encoded);
        }
        put_varint32(&mut out, self.output_level);
        put_varint32(&mut out, self.output_file_numbers.len() as u32);
        for &n in &self.output_file_numbers {
            put_varint64(&mut out, n);
        }
        put_varint32(&mut out, self.output_placement.len() as u32);
        for s in &self.output_placement {
            put_varint32(&mut out, s.0);
        }
        put_varint32(&mut out, self.scatter_width);
        put_varint64(&mut out, self.max_output_bytes);
        put_varint32(&mut out, self.block_size);
        put_varint32(&mut out, self.bloom_bits_per_key);
        out.push(self.drop_tombstones as u8);
        out
    }

    /// Deserialize a job.
    pub fn decode(src: &[u8]) -> Result<CompactionJob> {
        let mut n = 0usize;
        let (range_id, c) = decode_varint32(&src[n..])?;
        n += c;
        let (input_count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut inputs = Vec::with_capacity(input_count as usize);
        for _ in 0..input_count {
            let (encoded, c) = decode_length_prefixed_slice(&src[n..])?;
            let (meta, _) = SstableMeta::decode(encoded)?;
            inputs.push(meta);
            n += c;
        }
        let (output_level, c) = decode_varint32(&src[n..])?;
        n += c;
        let (num_count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut output_file_numbers = Vec::with_capacity(num_count as usize);
        for _ in 0..num_count {
            let (v, c) = decode_varint64(&src[n..])?;
            output_file_numbers.push(v);
            n += c;
        }
        let (placement_count, c) = decode_varint32(&src[n..])?;
        n += c;
        let mut output_placement = Vec::with_capacity(placement_count as usize);
        for _ in 0..placement_count {
            let (v, c) = decode_varint32(&src[n..])?;
            output_placement.push(StocId(v));
            n += c;
        }
        let (scatter_width, c) = decode_varint32(&src[n..])?;
        n += c;
        let (max_output_bytes, c) = decode_varint64(&src[n..])?;
        n += c;
        let (block_size, c) = decode_varint32(&src[n..])?;
        n += c;
        let (bloom_bits_per_key, c) = decode_varint32(&src[n..])?;
        n += c;
        let drop_tombstones = *src
            .get(n)
            .ok_or_else(|| Error::Corruption("truncated compaction job".into()))?
            != 0;
        Ok(CompactionJob {
            range_id,
            inputs,
            output_level,
            output_file_numbers,
            output_placement,
            scatter_width,
            max_output_bytes,
            block_size,
            bloom_bits_per_key,
            drop_tombstones,
        })
    }

    /// Total input bytes (used by schedulers to pick jobs).
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|i| i.data_size).sum()
    }
}

/// Read every entry of an input table into memory (the "pre-fetch" step of
/// the paper's offloaded compaction). The table's ρ fragments live on
/// distinct StoCs, so they are gathered concurrently through the client's
/// I/O pool.
pub fn load_table_entries(client: &StocClient, meta: &SstableMeta) -> Result<Vec<Entry>> {
    let meta_block = read_meta_block(client, meta)?;
    let reader = TableReader::open(&meta_block)?;
    let fragments = client.io_pool().run_all(
        (0..meta.fragments.len())
            .map(|i| move || read_fragment(client, meta, i))
            .collect(),
    )?;
    let fetcher = MemoryFetcher::new(fragments);
    let mut iter = reader.iter(&fetcher);
    collect_entries(&mut iter)
}

/// Execute a compaction job: merge the inputs, drop shadowed versions, split
/// the survivors into output tables of at most `max_output_bytes` and write
/// them to the StoCs named in the job. Returns the new tables' metadata.
///
/// The caller (LTC coordinator thread or StoC compaction thread) is
/// responsible for installing the outputs in the MANIFEST and deleting the
/// inputs afterwards.
pub fn execute_compaction(client: &StocClient, job: &CompactionJob) -> Result<Vec<SstableMeta>> {
    if job.inputs.is_empty() {
        return Ok(Vec::new());
    }
    if job.output_placement.is_empty() {
        return Err(Error::InvalidArgument(
            "compaction job has no output placement".into(),
        ));
    }
    // Pre-fetch and wrap each input, in the job's newer-shadows-older order.
    // Inputs are loaded one at a time on purpose: `load_table_entries`
    // already fans each table's fragments out across the I/O pool, and
    // fanning out here too would multiply in-flight transfers to
    // parallelism², blowing past the `stoc_io_parallelism` bound and
    // spiking the disk queues that power-of-d placement samples.
    let mut children = Vec::with_capacity(job.inputs.len());
    for meta in &job.inputs {
        children.push(VecIterator::new(load_table_entries(client, meta)?));
    }
    let mut merged = MergingIterator::new(children);
    let survivors = nova_sstable::compact_entries(&mut merged, SequenceNumber::MAX, job.drop_tombstones)?;
    if survivors.is_empty() {
        return Ok(Vec::new());
    }

    let mut outputs = Vec::new();
    let mut next_file = 0usize;
    let mut next_placement = 0usize;
    let scatter = job.scatter_width.max(1) as usize;
    let mut builder: Option<TableBuilder> = None;
    let mut current_bytes = 0u64;

    let finish_current = |builder: &mut Option<TableBuilder>,
                          next_file: &mut usize,
                          next_placement: &mut usize,
                          outputs: &mut Vec<SstableMeta>|
     -> Result<()> {
        if let Some(b) = builder.take() {
            if b.num_entries() == 0 {
                return Ok(());
            }
            let built = b.finish()?;
            let file_number = *job
                .output_file_numbers
                .get(*next_file)
                .ok_or_else(|| Error::InvalidArgument("compaction ran out of output file numbers".into()))?;
            *next_file += 1;
            // Round-robin fragments over the candidate StoCs.
            let mut fragment_placement = Vec::with_capacity(built.fragments.len());
            for _ in 0..built.fragments.len() {
                let stoc = job.output_placement[*next_placement % job.output_placement.len()];
                *next_placement += 1;
                fragment_placement.push(vec![stoc]);
            }
            let meta_stoc = fragment_placement[0][0];
            let spec = TableWriteSpec {
                file_number,
                level: job.output_level,
                drange: None,
                fragment_placement,
                meta_placement: vec![meta_stoc],
                parity_placement: None,
            };
            outputs.push(write_table(client, &built, &spec)?);
        }
        Ok(())
    };

    for entry in survivors {
        if builder.is_none() {
            builder = Some(TableBuilder::new(TableOptions {
                block_size: job.block_size as usize,
                bloom_bits_per_key: job.bloom_bits_per_key as usize,
                num_fragments: scatter,
            }));
            current_bytes = 0;
        }
        current_bytes += entry.approximate_size() as u64;
        builder.as_mut().expect("builder initialised above").add(&entry);
        if current_bytes >= job.max_output_bytes {
            finish_current(&mut builder, &mut next_file, &mut next_placement, &mut outputs)?;
        }
    }
    finish_current(&mut builder, &mut next_file, &mut next_placement, &mut outputs)?;
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips() {
        let job = CompactionJob {
            range_id: 1,
            inputs: vec![],
            output_level: 2,
            output_file_numbers: vec![10, 11, 12],
            output_placement: vec![StocId(0), StocId(3)],
            scatter_width: 2,
            max_output_bytes: 1 << 20,
            block_size: 4096,
            bloom_bits_per_key: 10,
            drop_tombstones: false,
        };
        let decoded = CompactionJob::decode(&job.encode()).unwrap();
        assert_eq!(decoded, job);
        assert_eq!(job.input_bytes(), 0);
    }

    #[test]
    fn truncated_job_is_rejected() {
        let job = CompactionJob {
            range_id: 1,
            inputs: vec![],
            output_level: 2,
            output_file_numbers: vec![10],
            output_placement: vec![StocId(0)],
            scatter_width: 1,
            max_output_bytes: 1024,
            block_size: 512,
            bloom_bits_per_key: 0,
            drop_tombstones: true,
        };
        let encoded = job.encode();
        assert!(CompactionJob::decode(&encoded[..encoded.len() - 1]).is_err());
    }
}
