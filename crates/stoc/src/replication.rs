//! Background fragment re-replication primitives.
//!
//! When a StoC dies or drains, replicas of SSTable fragments and metadata
//! blocks drop below the availability target. The self-healing supervisor
//! repairs that debt by copying each under-replicated piece onto a placeable
//! StoC: read the piece through the ordinary degraded-read path (replica
//! fallback, then parity reconstruction — [`read_fragment`] /
//! [`read_meta_block`]) and write it as a fresh block on the destination.
//! The helpers here do exactly one such copy, plus the pure metadata patch
//! that records the new replica; the supervisor owns scheduling, budgeting
//! and installing the patched metadata into the owning range's version.

use crate::client::StocClient;
use crate::table_io::{read_fragment, read_meta_block};
use nova_common::error::Result;
use nova_common::{StocBlockHandle, StocId};
use nova_sstable::SstableMeta;

/// Copy data fragment `index` of `meta` onto `dest`, reading through any
/// surviving replica (or parity reconstruction) and returning the handle of
/// the new copy. The source replicas are untouched; callers record the new
/// handle with [`with_fragment_replica`].
pub fn copy_fragment(
    client: &StocClient,
    meta: &SstableMeta,
    index: usize,
    dest: StocId,
) -> Result<StocBlockHandle> {
    let bytes = read_fragment(client, meta, index)?;
    client.write_block(dest, &bytes)
}

/// Copy the metadata block of `meta` onto `dest`, returning the handle of
/// the new copy. Callers record it with [`with_meta_replica`].
pub fn copy_meta_block(client: &StocClient, meta: &SstableMeta, dest: StocId) -> Result<StocBlockHandle> {
    let bytes = read_meta_block(client, meta)?;
    client.write_block(dest, &bytes)
}

/// Return `meta` with `handle` appended to fragment `index`'s replica list.
/// The primary (first) handle is preserved; repairs only ever add fallback
/// copies, so readers keep their fast path.
pub fn with_fragment_replica(meta: &SstableMeta, index: usize, handle: StocBlockHandle) -> SstableMeta {
    let mut patched = meta.clone();
    patched.fragments[index].replicas.push(handle);
    patched
}

/// Return `meta` with `handle` appended to the metadata-block replica list.
pub fn with_meta_replica(meta: &SstableMeta, handle: StocBlockHandle) -> SstableMeta {
    let mut patched = meta.clone();
    patched.meta_blocks.push(handle);
    patched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::{SimDisk, StorageMedium};
    use crate::server::StocServer;
    use crate::table_io::{write_table, TableWriteSpec};
    use crate::StocDirectory;
    use nova_common::config::DiskConfig;
    use nova_common::types::Entry;
    use nova_common::NodeId;
    use nova_fabric::Fabric;
    use nova_sstable::{TableBuilder, TableOptions};
    use std::sync::Arc;

    fn start_cluster(num_stocs: usize) -> (Arc<Fabric>, StocDirectory, Vec<StocServer>) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();
        (fabric, directory, servers)
    }

    #[test]
    fn copies_survive_source_failure_and_patch_into_metadata() {
        let entries: Vec<Entry> = (0..400)
            .map(|i| {
                Entry::put(
                    format!("key-{i:06}").into_bytes(),
                    i + 1,
                    format!("v-{i:04}").into_bytes(),
                )
            })
            .collect();
        let mut builder = TableBuilder::new(TableOptions {
            block_size: 512,
            bloom_bits_per_key: 10,
            num_fragments: 4,
        });
        for e in &entries {
            builder.add(e);
        }
        let built = builder.finish().unwrap();

        let (fabric, directory, servers) = start_cluster(6);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory).with_io_parallelism(4);
        let meta = write_table(
            &client,
            &built,
            &TableWriteSpec {
                file_number: 11,
                level: 0,
                drange: None,
                fragment_placement: (0..4).map(|i| vec![StocId(i as u32)]).collect(),
                parity_placement: Some(StocId(4)),
                meta_placement: vec![StocId(4)],
            },
        )
        .unwrap();

        // Kill the StoC holding fragment 1's only copy: the repair copy must
        // come from parity reconstruction, land on StoC 5, and read back
        // byte-identical through the patched metadata.
        fabric.fail_node(NodeId(2));
        let new_handle = copy_fragment(&client, &meta, 1, StocId(5)).unwrap();
        assert_eq!(new_handle.stoc, StocId(5));
        let patched = with_fragment_replica(&meta, 1, new_handle);
        assert_eq!(
            patched.fragments[1].replicas.len(),
            meta.fragments[1].replicas.len() + 1
        );
        assert_eq!(
            read_fragment(&client, &patched, 1).unwrap().as_ref(),
            &built.fragments[1][..]
        );

        // Metadata block copy, plus the patch helper.
        let meta_handle = copy_meta_block(&client, &meta, StocId(5)).unwrap();
        let patched = with_meta_replica(&patched, meta_handle);
        assert_eq!(patched.meta_blocks.last().unwrap().stoc, StocId(5));
        assert_eq!(
            read_meta_block(&client, &patched).unwrap().as_ref(),
            &built.meta[..]
        );

        for s in servers {
            s.stop();
        }
    }
}
