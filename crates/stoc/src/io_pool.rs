//! A small scoped-thread fan-out pool for scatter-gather StoC I/O.
//!
//! Nova-LSM's performance model (Section 4.4, Figure 10) assumes the ρ
//! fragments of an SSTable move to/from StoCs *concurrently*, so the latency
//! of a flush approaches `max(fragment transfer)` instead of
//! `sum(fragment transfers)`. The fabric and StoC servers are already fully
//! concurrent; what serialized transfers was the client looping over blocks
//! one RPC at a time. [`IoPool`] closes that gap: callers hand it a batch of
//! independent I/O jobs and it fans them out across scoped threads (the same
//! pattern `LogC::recover_range` uses for parallel log fetch), returning the
//! per-job results in submission order.
//!
//! There is no async runtime available (the build is fully offline), and the
//! simulated RDMA verbs block the calling thread when `simulate_delay` is on,
//! so real threads are the correct concurrency primitive here. Threads are
//! scoped — spawned for the duration of one batch — which keeps the pool
//! trivially correct (no work queue to shut down, borrows of the caller's
//! stack are allowed in jobs) at the cost of a thread spawn per concurrent
//! job, which is noise next to even one simulated network round trip.

use nova_common::Result;

/// Default fan-out width used when a client is constructed without an
/// explicit [`ClusterConfig::stoc_io_parallelism`](nova_common::config::ClusterConfig)
/// value.
pub const DEFAULT_IO_PARALLELISM: usize = 8;

/// A fixed-width fan-out pool for independent, blocking I/O jobs.
///
/// `parallelism == 1` degenerates to running the jobs inline, in submission
/// order, on the caller's thread — exactly the serial behaviour the batch
/// APIs replaced. Benchmarks and equivalence tests use that to compare the
/// serial and parallel paths through one code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPool {
    parallelism: usize,
}

impl Default for IoPool {
    fn default() -> Self {
        IoPool::new(DEFAULT_IO_PARALLELISM)
    }
}

impl IoPool {
    /// Create a pool that runs at most `parallelism` jobs concurrently
    /// (clamped to at least 1).
    pub fn new(parallelism: usize) -> Self {
        IoPool {
            parallelism: parallelism.max(1),
        }
    }

    /// The configured fan-out width.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Run every job, returning the results in submission order.
    ///
    /// Every job runs even when a sibling fails: the callers of this method
    /// (prefetch, batch delete) want the complete per-job outcome, not an
    /// abort. Use [`IoPool::run_all`] for all-or-nothing batches.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<Result<T>>
    where
        T: Send,
        F: FnOnce() -> Result<T> + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.parallelism.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let slots = self.fan_out(jobs, workers, None);
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job ran to completion"))
            .collect()
    }

    /// Run the jobs and collect the results, failing fast on the first
    /// error: jobs already started run to completion (no half-issued
    /// transfer is abandoned mid-verb), but no *new* job starts once a
    /// failure is recorded. The first error in submission order is
    /// returned; there is nothing left in flight when it is.
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Result<Vec<T>>
    where
        T: Send,
        F: FnOnce() -> Result<T> + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.parallelism.min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for job in jobs {
                out.push(job()?);
            }
            return Ok(out);
        }
        let failed = std::sync::atomic::AtomicBool::new(false);
        let slots = self.fan_out(jobs, workers, Some(&failed));
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot.into_inner() {
                Some(Ok(value)) => out.push(value),
                Some(Err(e)) => return Err(e),
                // Only a suffix of never-started jobs can be empty, and only
                // after an earlier slot recorded the error returned above.
                None => {
                    return Err(nova_common::Error::Unavailable(
                        "batch aborted after a sibling I/O failure".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Fan `jobs` out over `workers` scoped threads, filling one result slot
    /// per job. When `abort` is provided, a failed job sets it and workers
    /// stop pulling new jobs (started jobs always finish).
    fn fan_out<T, F>(
        &self,
        jobs: Vec<F>,
        workers: usize,
        abort: Option<&std::sync::atomic::AtomicBool>,
    ) -> Vec<parking_lot::Mutex<Option<Result<T>>>>
    where
        T: Send,
        F: FnOnce() -> Result<T> + Send,
    {
        use std::sync::atomic::Ordering;
        let n = jobs.len();
        // Feed (index, job) pairs through a shared queue so fast workers
        // steal remaining jobs instead of idling behind a static partition.
        let (tx, rx) = crossbeam::channel::unbounded();
        for pair in jobs.into_iter().enumerate() {
            let _ = tx.send(pair);
        }
        drop(tx);

        let slots: Vec<parking_lot::Mutex<Option<Result<T>>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let slots = &slots;
                scope.spawn(move || {
                    while !abort.is_some_and(|flag| flag.load(Ordering::Acquire)) {
                        let Ok((index, job)) = rx.try_recv() else { break };
                        let result = job();
                        if result.is_err() {
                            if let Some(flag) = abort {
                                flag.store(true, Ordering::Release);
                            }
                        }
                        *slots[index].lock() = Some(result);
                    }
                });
            }
        });
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::Error;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = IoPool::new(4);
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Finish out of order on purpose.
                    std::thread::sleep(Duration::from_micros((32 - i) * 50));
                    Ok(i)
                }
            })
            .collect();
        let results = pool.run_all(jobs).unwrap();
        assert_eq!(results, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_one_runs_inline_in_order() {
        let pool = IoPool::new(1);
        let order = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                let order = &order;
                move || {
                    assert_eq!(order.fetch_add(1, Ordering::SeqCst), i);
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(pool.run_all(jobs).unwrap().len(), 8);
    }

    #[test]
    fn run_reports_per_job_outcomes_and_runs_every_job() {
        let pool = IoPool::new(4);
        let ran = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..16)
            .map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 5 {
                        Err(Error::Unavailable("injected".into()))
                    } else {
                        Ok(i)
                    }
                }
            })
            .collect();
        let results = pool.run(jobs);
        assert_eq!(ran.load(Ordering::SeqCst), 16, "run() must not abandon siblings");
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        assert!(results[5].is_err());
    }

    #[test]
    fn run_all_fails_fast_without_hanging() {
        // Width 1 (the serial baseline) stops at the failing job, like the
        // old serial loops did.
        let pool = IoPool::new(1);
        let ran = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..16)
            .map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 5 {
                        Err(Error::Unavailable("injected".into()))
                    } else {
                        Ok(i)
                    }
                }
            })
            .collect();
        assert!(pool.run_all(jobs).is_err());
        assert_eq!(
            ran.load(Ordering::SeqCst),
            6,
            "serial run_all must stop at the failure"
        );

        // Fanned out: the error propagates, started jobs finish, no new
        // jobs start once the failure is recorded, and nothing hangs.
        let pool = IoPool::new(4);
        let ran = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 5 {
                        Err(Error::Unavailable("injected".into()))
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                        Ok(i)
                    }
                }
            })
            .collect();
        let err = pool.run_all(jobs).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        assert!(
            ran.load(Ordering::SeqCst) < 64,
            "workers must stop pulling jobs after a recorded failure"
        );
    }

    #[test]
    fn first_error_by_submission_order_wins() {
        let pool = IoPool::new(8);
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move || -> Result<usize> {
                    if i >= 3 {
                        Err(Error::Unavailable(format!("job {i}")))
                    } else {
                        Ok(i)
                    }
                }
            })
            .collect();
        match pool.run_all(jobs) {
            Err(Error::Unavailable(msg)) => assert_eq!(msg, "job 3"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fan_out_overlaps_blocking_jobs() {
        let pool = IoPool::new(8);
        let start = Instant::now();
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                move || {
                    std::thread::sleep(Duration::from_millis(25));
                    Ok(())
                }
            })
            .collect();
        pool.run_all(jobs).unwrap();
        // Serial execution would take 200ms; allow generous scheduling slack.
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "jobs did not overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = IoPool::default();
        let results: Vec<Result<()>> = pool.run(Vec::<fn() -> Result<()>>::new());
        assert!(results.is_empty());
        assert_eq!(pool.parallelism(), DEFAULT_IO_PARALLELISM);
        assert_eq!(IoPool::new(0).parallelism(), 1);
    }
}
