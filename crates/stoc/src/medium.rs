//! Storage media backing a StoC.
//!
//! The paper's StoCs use one 1 TB hard disk each; every headline result
//! (shared-disk vs shared-nothing, power-of-d, write stalls) is driven by
//! disk bandwidth contention and queueing. [`SimDisk`] models exactly those
//! two things — a service time of `seek + bytes/bandwidth` per request and an
//! observable queue — while holding file contents in memory so experiments
//! are reproducible on a single machine. [`FsDisk`] stores contents in real
//! files for functional (non-timing) use.

use bytes::Bytes;
use nova_common::config::DiskConfig;
use nova_common::rate::{BusyTime, Counter};
use nova_common::{Error, Result, StocFileId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// The kind of I/O being performed; reads and writes are charged identically
/// by the model but reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// A read request.
    Read,
    /// A write (append) request.
    Write,
}

/// A storage device holding StoC files.
pub trait StorageMedium: Send + Sync {
    /// Append `data` to `file`, creating it if needed. Returns the offset at
    /// which the data landed.
    fn append(&self, file: StocFileId, data: &[u8]) -> Result<u64>;

    /// Read `len` bytes at `offset` from `file`.
    fn read(&self, file: StocFileId, offset: u64, len: usize) -> Result<Bytes>;

    /// Total size of `file` in bytes.
    fn file_size(&self, file: StocFileId) -> Result<u64>;

    /// Delete `file`.
    fn delete(&self, file: StocFileId) -> Result<()>;

    /// List every file currently stored.
    fn list_files(&self) -> Vec<StocFileId>;

    /// Number of requests currently queued or in service — the quantity the
    /// power-of-d placement policy peeks at (Section 4.4).
    fn queue_depth(&self) -> usize;

    /// Cumulative statistics.
    fn stats(&self) -> DiskStats;
}

/// A snapshot of a device's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Bytes written since creation.
    pub bytes_written: u64,
    /// Bytes read since creation.
    pub bytes_read: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Simulated busy time in nanoseconds (0 for [`FsDisk`]).
    pub busy_nanos: u64,
}

impl DiskStats {
    /// Device utilization over an elapsed wall-clock window.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        let e = elapsed.as_nanos() as u64;
        if e == 0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / e as f64).min(1.0)
    }
}

/// An in-memory disk with a timing model.
pub struct SimDisk {
    config: DiskConfig,
    files: RwLock<HashMap<StocFileId, Vec<u8>>>,
    /// The disk arm: one request is serviced at a time.
    arm: Mutex<()>,
    queue: AtomicUsize,
    busy: BusyTime,
    bytes_written: Counter,
    bytes_read: Counter,
    writes: Counter,
    reads: Counter,
}

impl std::fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDisk")
            .field("files", &self.files.read().len())
            .field("queue", &self.queue.load(Ordering::Relaxed))
            .finish()
    }
}

impl SimDisk {
    /// Create a simulated disk with the given profile.
    pub fn new(config: DiskConfig) -> Self {
        SimDisk {
            config,
            files: RwLock::new(HashMap::new()),
            arm: Mutex::new(()),
            queue: AtomicUsize::new(0),
            busy: BusyTime::new(),
            bytes_written: Counter::new(),
            bytes_read: Counter::new(),
            writes: Counter::new(),
            reads: Counter::new(),
        }
    }

    /// The service time of one request of `bytes` bytes.
    pub fn service_time(&self, bytes: usize) -> Duration {
        let seek = Duration::from_micros(self.config.seek_micros);
        let transfer_nanos =
            (bytes as u128 * 1_000_000_000u128 / self.config.bandwidth_bytes_per_sec.max(1) as u128) as u64;
        seek + Duration::from_nanos(transfer_nanos)
    }

    fn charge(&self, kind: IoKind, bytes: usize) {
        let service = self.service_time(bytes);
        self.queue.fetch_add(1, Ordering::SeqCst);
        {
            // Serialize access to the arm; waiting here is the queueing delay.
            let _arm = self.arm.lock();
            if !self.config.accounting_only && !service.is_zero() {
                std::thread::sleep(service);
            }
            self.busy.add(service);
        }
        self.queue.fetch_sub(1, Ordering::SeqCst);
        match kind {
            IoKind::Read => {
                self.reads.incr();
                self.bytes_read.add(bytes as u64);
            }
            IoKind::Write => {
                self.writes.incr();
                self.bytes_written.add(bytes as u64);
            }
        }
    }
}

impl StorageMedium for SimDisk {
    fn append(&self, file: StocFileId, data: &[u8]) -> Result<u64> {
        self.charge(IoKind::Write, data.len());
        let mut files = self.files.write();
        let contents = files.entry(file).or_default();
        let offset = contents.len() as u64;
        contents.extend_from_slice(data);
        Ok(offset)
    }

    fn read(&self, file: StocFileId, offset: u64, len: usize) -> Result<Bytes> {
        self.charge(IoKind::Read, len);
        let files = self.files.read();
        let contents = files
            .get(&file)
            .ok_or_else(|| Error::UnknownFile(format!("{file} not on this disk")))?;
        let start = offset as usize;
        let end = start + len;
        if end > contents.len() {
            return Err(Error::Io(format!(
                "read [{start}, {end}) beyond end of {file} ({} bytes)",
                contents.len()
            )));
        }
        Ok(Bytes::copy_from_slice(&contents[start..end]))
    }

    fn file_size(&self, file: StocFileId) -> Result<u64> {
        self.files
            .read()
            .get(&file)
            .map(|c| c.len() as u64)
            .ok_or_else(|| Error::UnknownFile(format!("{file} not on this disk")))
    }

    fn delete(&self, file: StocFileId) -> Result<()> {
        self.files
            .write()
            .remove(&file)
            .map(|_| ())
            .ok_or_else(|| Error::UnknownFile(format!("{file} not on this disk")))
    }

    fn list_files(&self) -> Vec<StocFileId> {
        let mut files: Vec<StocFileId> = self.files.read().keys().copied().collect();
        files.sort();
        files
    }

    fn queue_depth(&self) -> usize {
        self.queue.load(Ordering::SeqCst)
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            bytes_written: self.bytes_written.get(),
            bytes_read: self.bytes_read.get(),
            writes: self.writes.get(),
            reads: self.reads.get(),
            busy_nanos: self.busy.busy_nanos(),
        }
    }
}

/// A storage medium backed by real files in a directory. No timing model:
/// useful for durability-oriented integration tests and for users who want an
/// actually-persistent single-node deployment.
pub struct FsDisk {
    dir: PathBuf,
    queue: AtomicUsize,
    bytes_written: Counter,
    bytes_read: Counter,
    writes: Counter,
    reads: Counter,
}

impl std::fmt::Debug for FsDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsDisk").field("dir", &self.dir).finish()
    }
}

impl FsDisk {
    /// Create a filesystem-backed disk rooted at `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FsDisk {
            dir,
            queue: AtomicUsize::new(0),
            bytes_written: Counter::new(),
            bytes_read: Counter::new(),
            writes: Counter::new(),
            reads: Counter::new(),
        })
    }

    fn path(&self, file: StocFileId) -> PathBuf {
        self.dir.join(format!("stocfile-{:016x}", file.0))
    }
}

impl StorageMedium for FsDisk {
    fn append(&self, file: StocFileId, data: &[u8]) -> Result<u64> {
        use std::io::Write;
        self.queue.fetch_add(1, Ordering::SeqCst);
        let result = (|| {
            let path = self.path(file);
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            let offset = f.metadata()?.len();
            f.write_all(data)?;
            f.sync_data()?;
            Ok(offset)
        })();
        self.queue.fetch_sub(1, Ordering::SeqCst);
        self.writes.incr();
        self.bytes_written.add(data.len() as u64);
        result
    }

    fn read(&self, file: StocFileId, offset: u64, len: usize) -> Result<Bytes> {
        use std::io::{Read, Seek, SeekFrom};
        self.queue.fetch_add(1, Ordering::SeqCst);
        let result = (|| {
            let path = self.path(file);
            let mut f = std::fs::File::open(&path)
                .map_err(|_| Error::UnknownFile(format!("{file} not on this disk")))?;
            f.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            f.read_exact(&mut buf)?;
            Ok(Bytes::from(buf))
        })();
        self.queue.fetch_sub(1, Ordering::SeqCst);
        self.reads.incr();
        self.bytes_read.add(len as u64);
        result
    }

    fn file_size(&self, file: StocFileId) -> Result<u64> {
        std::fs::metadata(self.path(file))
            .map(|m| m.len())
            .map_err(|_| Error::UnknownFile(format!("{file} not on this disk")))
    }

    fn delete(&self, file: StocFileId) -> Result<()> {
        std::fs::remove_file(self.path(file))
            .map_err(|_| Error::UnknownFile(format!("{file} not on this disk")))
    }

    fn list_files(&self) -> Vec<StocFileId> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(hex) = name.strip_prefix("stocfile-") {
                        if let Ok(id) = u64::from_str_radix(hex, 16) {
                            out.push(StocFileId(id));
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn queue_depth(&self) -> usize {
        self.queue.load(Ordering::SeqCst)
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            bytes_written: self.bytes_written.get(),
            bytes_read: self.bytes_read.get(),
            writes: self.writes.get(),
            reads: self.reads.get(),
            busy_nanos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::StocId;

    fn file(n: u32) -> StocFileId {
        StocFileId::new(StocId(1), n)
    }

    fn fast_disk() -> SimDisk {
        SimDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: u64::MAX / 2,
            seek_micros: 0,
            accounting_only: true,
        })
    }

    #[test]
    fn sim_disk_append_read_round_trip() {
        let disk = fast_disk();
        let off0 = disk.append(file(1), b"hello ").unwrap();
        let off1 = disk.append(file(1), b"world").unwrap();
        assert_eq!(off0, 0);
        assert_eq!(off1, 6);
        assert_eq!(disk.read(file(1), 0, 11).unwrap().as_ref(), b"hello world");
        assert_eq!(disk.read(file(1), 6, 5).unwrap().as_ref(), b"world");
        assert_eq!(disk.file_size(file(1)).unwrap(), 11);
        let stats = disk.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.bytes_written, 11);
    }

    #[test]
    fn sim_disk_errors() {
        let disk = fast_disk();
        assert!(disk.read(file(9), 0, 1).is_err());
        assert!(disk.file_size(file(9)).is_err());
        assert!(disk.delete(file(9)).is_err());
        disk.append(file(1), b"ab").unwrap();
        assert!(disk.read(file(1), 1, 5).is_err());
        disk.delete(file(1)).unwrap();
        assert!(disk.read(file(1), 0, 1).is_err());
    }

    #[test]
    fn sim_disk_lists_files_sorted() {
        let disk = fast_disk();
        disk.append(file(3), b"x").unwrap();
        disk.append(file(1), b"x").unwrap();
        disk.append(file(2), b"x").unwrap();
        assert_eq!(disk.list_files(), vec![file(1), file(2), file(3)]);
    }

    #[test]
    fn service_time_model() {
        let disk = SimDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: 100 * 1000 * 1000,
            seek_micros: 8_000,
            accounting_only: true,
        });
        // 1 MB at 100 MB/s = 10 ms, plus 8 ms seek.
        let t = disk.service_time(1_000_000);
        assert_eq!(t, Duration::from_micros(18_000));
        // Busy time accumulates even in accounting mode.
        disk.append(file(1), &vec![0u8; 1_000_000]).unwrap();
        assert_eq!(disk.stats().busy_nanos, 18_000_000);
    }

    #[test]
    fn sim_disk_blocks_for_service_time_when_not_accounting_only() {
        let disk = SimDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: 1000 * 1000 * 1000,
            seek_micros: 2_000,
            accounting_only: false,
        });
        let start = std::time::Instant::now();
        disk.append(file(1), &[0u8; 1024]).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(2_000));
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = DiskStats {
            busy_nanos: 2_000_000_000,
            ..Default::default()
        };
        assert_eq!(stats.utilization(Duration::from_secs(1)), 1.0);
        assert_eq!(stats.utilization(Duration::ZERO), 0.0);
    }

    #[test]
    fn fs_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("nova-fsdisk-test-{}", std::process::id()));
        let disk = FsDisk::new(&dir).unwrap();
        let f = file(7);
        disk.append(f, b"persistent").unwrap();
        assert_eq!(disk.read(f, 0, 10).unwrap().as_ref(), b"persistent");
        assert_eq!(disk.file_size(f).unwrap(), 10);
        assert_eq!(disk.list_files(), vec![f]);
        assert!(disk.read(file(8), 0, 1).is_err());
        disk.delete(f).unwrap();
        assert!(disk.list_files().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
