//! The StoC client used by LTCs, LogCs and by StoCs themselves (during
//! offloaded compaction) to store, retrieve and manage blocks.

use crate::message::{StocRequest, StocResponse};
use bytes::Bytes;
use nova_common::{Error, NodeId, Result, StocBlockHandle, StocFileId, StocId};
use nova_fabric::{Endpoint, RegionId};
use nova_sstable::SstableMeta;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Maps StoC ids to the fabric nodes hosting them. Shared by every component
/// in the cluster; the coordinator updates it when StoCs are added or removed
/// (Section 9).
#[derive(Debug, Clone, Default)]
pub struct StocDirectory {
    inner: Arc<RwLock<HashMap<StocId, DirectoryEntry>>>,
}

#[derive(Debug, Clone, Copy)]
struct DirectoryEntry {
    node: NodeId,
    /// False once the StoC is draining: existing blocks stay readable (the
    /// entry still resolves) but placement policies stop choosing it for new
    /// SSTables. Removing the entry outright would strand every fragment
    /// still stored there and wedge compactions that need to read them.
    placeable: bool,
}

impl StocDirectory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) the node hosting a StoC. (Re)registering marks
    /// the StoC placeable.
    pub fn register(&self, stoc: StocId, node: NodeId) {
        self.inner.write().insert(
            stoc,
            DirectoryEntry {
                node,
                placeable: true,
            },
        );
    }

    /// Remove a StoC from the directory entirely. Blocks stored there become
    /// unreadable; callers that only want to stop *new* placements should use
    /// [`StocDirectory::set_placeable`] instead.
    pub fn remove(&self, stoc: StocId) {
        self.inner.write().remove(&stoc);
    }

    /// Mark a StoC as (non-)placeable. A draining StoC keeps serving reads
    /// of its existing blocks but receives no new SSTable fragments.
    pub fn set_placeable(&self, stoc: StocId, placeable: bool) {
        if let Some(entry) = self.inner.write().get_mut(&stoc) {
            entry.placeable = placeable;
        }
    }

    /// The node hosting `stoc`.
    pub fn node_of(&self, stoc: StocId) -> Result<NodeId> {
        self.inner
            .read()
            .get(&stoc)
            .map(|e| e.node)
            .ok_or(Error::UnknownStoc(stoc))
    }

    /// Every StoC currently registered (including draining ones), in id
    /// order.
    pub fn all(&self) -> Vec<StocId> {
        let mut v: Vec<StocId> = self.inner.read().keys().copied().collect();
        v.sort();
        v
    }

    /// The StoCs placement policies may choose for new SSTables, in id order.
    pub fn placeable(&self) -> Vec<StocId> {
        let mut v: Vec<StocId> = self
            .inner
            .read()
            .iter()
            .filter(|(_, e)| e.placeable)
            .map(|(s, _)| *s)
            .collect();
        v.sort();
        v
    }

    /// Number of placement-eligible StoCs (the paper's β).
    pub fn num_placeable(&self) -> usize {
        self.inner.read().values().filter(|e| e.placeable).count()
    }

    /// Number of registered StoCs, including draining ones.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no StoCs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A handle onto an in-memory StoC file; appends and reads are one-sided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFileHandle {
    /// The StoC storing the file.
    pub stoc: StocId,
    /// The backing StoC file id.
    pub file: StocFileId,
    /// The registered memory region holding the contents.
    pub region: u64,
    /// Capacity of the region in bytes.
    pub size: u64,
}

/// Statistics reported by a StoC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StocStats {
    /// Requests queued or in service at the disk.
    pub queue_depth: u64,
    /// Bytes written to the medium.
    pub bytes_written: u64,
    /// Bytes read from the medium.
    pub bytes_read: u64,
    /// Simulated disk busy nanoseconds.
    pub disk_busy_nanos: u64,
    /// Number of persistent files.
    pub num_files: u64,
}

/// A client for issuing block operations against StoCs.
#[derive(Debug, Clone)]
pub struct StocClient {
    endpoint: Endpoint,
    directory: StocDirectory,
}

impl StocClient {
    /// Create a client that issues verbs through `endpoint` and resolves
    /// StoCs through `directory`.
    pub fn new(endpoint: Endpoint, directory: StocDirectory) -> Self {
        StocClient { endpoint, directory }
    }

    /// The directory used to resolve StoC locations.
    pub fn directory(&self) -> &StocDirectory {
        &self.directory
    }

    /// The fabric endpoint this client issues verbs through.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn call(&self, stoc: StocId, request: &StocRequest) -> Result<StocResponse> {
        let node = self.directory.node_of(stoc)?;
        let reply = self.endpoint.call(node, Bytes::from(request.encode()))?;
        StocResponse::decode(&reply)
    }

    // ---- persistent block interface ---------------------------------------

    /// Write one block to `stoc` following the paper's workflow (Figure 10):
    /// open a file (allocating a file-buffer region), `RDMA WRITE` the block
    /// into the region with immediate data, then seal the file to disk.
    pub fn write_block(&self, stoc: StocId, data: &[u8]) -> Result<StocBlockHandle> {
        let node = self.directory.node_of(stoc)?;
        let opened = self.call(
            stoc,
            &StocRequest::OpenFileForWrite {
                size: data.len() as u64,
            },
        )?;
        let (file, region) = match opened {
            StocResponse::Opened { file, region } => (file, region),
            other => {
                return Err(Error::Corruption(format!(
                    "unexpected response to open: {other:?}"
                )))
            }
        };
        self.endpoint
            .rdma_write(node, RegionId(region), 0, data, Some(file.seq()))?;
        match self.call(stoc, &StocRequest::SealFile { file })? {
            StocResponse::Sealed { size } => {
                debug_assert_eq!(size as usize, data.len());
                Ok(StocBlockHandle {
                    stoc,
                    file,
                    offset: 0,
                    size: data.len() as u32,
                })
            }
            other => Err(Error::Corruption(format!(
                "unexpected response to seal: {other:?}"
            ))),
        }
    }

    /// Read a block through its handle.
    pub fn read_block(&self, handle: &StocBlockHandle) -> Result<Bytes> {
        self.read_block_at(handle.stoc, handle.file, handle.offset, handle.size as usize)
    }

    /// Read `len` bytes at `offset` of `file` on `stoc`. The StoC pushes the
    /// data into a locally registered region via one-sided write.
    pub fn read_block_at(&self, stoc: StocId, file: StocFileId, offset: u64, len: usize) -> Result<Bytes> {
        let client_region = self.endpoint.register_region(len.max(1));
        let result = (|| match self.call(
            stoc,
            &StocRequest::ReadBlock {
                file,
                offset,
                len: len as u64,
                client_region: client_region.0,
            },
        )? {
            StocResponse::BlockRead => {
                let region = self.endpoint.local_region(client_region)?;
                Ok(Bytes::from(region.read(0, len)?))
            }
            other => Err(Error::Corruption(format!(
                "unexpected response to read: {other:?}"
            ))),
        })();
        self.endpoint.deregister_region(client_region);
        result
    }

    /// Delete a persistent file.
    pub fn delete_file(&self, stoc: StocId, file: StocFileId) -> Result<()> {
        match self.call(stoc, &StocRequest::DeleteFile { file })? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete: {other:?}"
            ))),
        }
    }

    /// The size of a persistent file.
    pub fn file_size(&self, stoc: StocId, file: StocFileId) -> Result<u64> {
        match self.call(stoc, &StocRequest::FileSize { file })? {
            StocResponse::Size { size } => Ok(size),
            other => Err(Error::Corruption(format!(
                "unexpected response to size: {other:?}"
            ))),
        }
    }

    /// List persistent files on a StoC.
    pub fn list_files(&self, stoc: StocId) -> Result<Vec<StocFileId>> {
        match self.call(stoc, &StocRequest::ListFiles)? {
            StocResponse::Files { files } => Ok(files),
            other => Err(Error::Corruption(format!(
                "unexpected response to list: {other:?}"
            ))),
        }
    }

    /// Peek at a StoC's disk queue depth (power-of-d, Section 4.4).
    pub fn queue_depth(&self, stoc: StocId) -> Result<u64> {
        match self.call(stoc, &StocRequest::QueueDepth)? {
            StocResponse::Depth { depth } => Ok(depth),
            other => Err(Error::Corruption(format!(
                "unexpected response to depth: {other:?}"
            ))),
        }
    }

    /// Cumulative statistics for a StoC.
    pub fn stats(&self, stoc: StocId) -> Result<StocStats> {
        match self.call(stoc, &StocRequest::Stats)? {
            StocResponse::Stats {
                queue_depth,
                bytes_written,
                bytes_read,
                disk_busy_nanos,
                num_files,
            } => Ok(StocStats {
                queue_depth,
                bytes_written,
                bytes_read,
                disk_busy_nanos,
                num_files,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    // ---- in-memory (log) file interface ------------------------------------

    /// Open (or reopen) a named in-memory StoC file.
    pub fn open_mem_file(&self, stoc: StocId, name: &str, size: u64) -> Result<MemFileHandle> {
        match self.call(
            stoc,
            &StocRequest::OpenMemFile {
                name: name.to_string(),
                size,
            },
        )? {
            StocResponse::MemFile { file, region, size } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            StocResponse::Opened { file, region } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to open mem file: {other:?}"
            ))),
        }
    }

    /// Look up an existing in-memory file by name.
    pub fn get_mem_file(&self, stoc: StocId, name: &str) -> Result<MemFileHandle> {
        match self.call(
            stoc,
            &StocRequest::GetMemFile {
                name: name.to_string(),
            },
        )? {
            StocResponse::MemFile { file, region, size } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to get mem file: {other:?}"
            ))),
        }
    }

    /// List in-memory files with a given name prefix.
    pub fn list_mem_files(&self, stoc: StocId, prefix: &str) -> Result<Vec<String>> {
        match self.call(
            stoc,
            &StocRequest::ListMemFiles {
                prefix: prefix.to_string(),
            },
        )? {
            StocResponse::MemFiles { names } => Ok(names),
            other => Err(Error::Corruption(format!(
                "unexpected response to list mem files: {other:?}"
            ))),
        }
    }

    /// Delete a named in-memory file.
    pub fn delete_mem_file(&self, stoc: StocId, name: &str) -> Result<()> {
        match self.call(
            stoc,
            &StocRequest::DeleteMemFile {
                name: name.to_string(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete mem file: {other:?}"
            ))),
        }
    }

    /// Append `data` at `offset` of an in-memory file using a one-sided
    /// write. The StoC's CPU is not involved (Section 6.1).
    pub fn write_mem(&self, handle: &MemFileHandle, offset: u64, data: &[u8]) -> Result<()> {
        let node = self.directory.node_of(handle.stoc)?;
        self.endpoint
            .rdma_write(node, RegionId(handle.region), offset, data, None)
    }

    /// Read `len` bytes at `offset` of an in-memory file using a one-sided
    /// read.
    pub fn read_mem(&self, handle: &MemFileHandle, offset: u64, len: usize) -> Result<Bytes> {
        let node = self.directory.node_of(handle.stoc)?;
        self.endpoint
            .rdma_read(node, RegionId(handle.region), offset, len)
    }

    // ---- persistent log interface -------------------------------------------

    /// Append serialized log records to a named persistent log file
    /// (durability mode of LogC, Section 5). Charged to the StoC's disk.
    pub fn append_log(&self, stoc: StocId, name: &str, data: &[u8]) -> Result<()> {
        match self.call(
            stoc,
            &StocRequest::AppendLog {
                name: name.to_string(),
                data: data.to_vec(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to append log: {other:?}"
            ))),
        }
    }

    /// Read the full contents of a named persistent log file.
    pub fn read_log(&self, stoc: StocId, name: &str) -> Result<Vec<u8>> {
        match self.call(
            stoc,
            &StocRequest::ReadLog {
                name: name.to_string(),
            },
        )? {
            StocResponse::LogContent { data } => Ok(data),
            other => Err(Error::Corruption(format!(
                "unexpected response to read log: {other:?}"
            ))),
        }
    }

    /// List persistent log files with a name prefix.
    pub fn list_logs(&self, stoc: StocId, prefix: &str) -> Result<Vec<String>> {
        match self.call(
            stoc,
            &StocRequest::ListLogs {
                prefix: prefix.to_string(),
            },
        )? {
            StocResponse::MemFiles { names } => Ok(names),
            other => Err(Error::Corruption(format!(
                "unexpected response to list logs: {other:?}"
            ))),
        }
    }

    /// Delete a named persistent log file.
    pub fn delete_log(&self, stoc: StocId, name: &str) -> Result<()> {
        match self.call(
            stoc,
            &StocRequest::DeleteLog {
                name: name.to_string(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete log: {other:?}"
            ))),
        }
    }

    // ---- compaction offload -------------------------------------------------

    /// Offload a compaction job to a StoC (Section 4.3) and wait for the
    /// resulting output tables.
    pub fn offload_compaction(
        &self,
        stoc: StocId,
        job: crate::compaction::CompactionJob,
    ) -> Result<Vec<SstableMeta>> {
        match self.call(stoc, &StocRequest::Compaction(job))? {
            StocResponse::CompactionDone { outputs } => Ok(outputs),
            other => Err(Error::Corruption(format!(
                "unexpected response to compaction: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_basics() {
        let d = StocDirectory::new();
        assert!(d.is_empty());
        d.register(StocId(0), NodeId(5));
        d.register(StocId(1), NodeId(6));
        assert_eq!(d.len(), 2);
        assert_eq!(d.node_of(StocId(0)).unwrap(), NodeId(5));
        assert_eq!(d.all(), vec![StocId(0), StocId(1)]);
        d.remove(StocId(0));
        assert!(d.node_of(StocId(0)).is_err());
        assert_eq!(d.all(), vec![StocId(1)]);
    }

    #[test]
    fn directory_is_shared_between_clones() {
        let d = StocDirectory::new();
        let d2 = d.clone();
        d.register(StocId(3), NodeId(1));
        assert_eq!(d2.node_of(StocId(3)).unwrap(), NodeId(1));
    }

    #[test]
    fn draining_stoc_resolves_but_is_not_placeable() {
        let d = StocDirectory::new();
        d.register(StocId(0), NodeId(1));
        d.register(StocId(1), NodeId(2));
        assert_eq!(d.placeable(), vec![StocId(0), StocId(1)]);

        d.set_placeable(StocId(1), false);
        // Existing blocks stay readable: the node still resolves…
        assert_eq!(d.node_of(StocId(1)).unwrap(), NodeId(2));
        assert_eq!(d.all(), vec![StocId(0), StocId(1)]);
        // …but placement stops choosing it.
        assert_eq!(d.placeable(), vec![StocId(0)]);
        assert_eq!(d.num_placeable(), 1);

        // Re-registering brings it back.
        d.register(StocId(1), NodeId(2));
        assert_eq!(d.placeable(), vec![StocId(0), StocId(1)]);
    }
}
