//! The StoC client used by LTCs, LogCs and by StoCs themselves (during
//! offloaded compaction) to store, retrieve and manage blocks.

use crate::io_pool::IoPool;
use crate::message::{StocRequest, StocResponse};
use bytes::Bytes;
use nova_common::{Error, NodeId, Result, StocBlockHandle, StocFileId, StocId};
use nova_fabric::{Endpoint, RegionId};
use nova_sstable::SstableMeta;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maps StoC ids to the fabric nodes hosting them. Shared by every component
/// in the cluster; the coordinator updates it when StoCs are added or removed
/// (Section 9).
#[derive(Debug, Clone, Default)]
pub struct StocDirectory {
    inner: Arc<RwLock<HashMap<StocId, DirectoryEntry>>>,
    /// Bumped on every membership mutation; invalidates `placeable_cache`.
    generation: Arc<AtomicU64>,
    /// The placement-eligible StoC list is consulted on every placement
    /// decision (flush, compaction output, log-file creation) but mutates
    /// only when the cluster scales, so it is computed once per membership
    /// generation instead of allocate-and-sort per call.
    placeable_cache: Arc<Mutex<(u64, Arc<Vec<StocId>>)>>,
}

#[derive(Debug, Clone, Copy)]
struct DirectoryEntry {
    node: NodeId,
    /// False once the StoC is draining: existing blocks stay readable (the
    /// entry still resolves) but placement policies stop choosing it for new
    /// SSTables. Removing the entry outright would strand every fragment
    /// still stored there and wedge compactions that need to read them.
    placeable: bool,
}

impl StocDirectory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) the node hosting a StoC. (Re)registering marks
    /// the StoC placeable.
    pub fn register(&self, stoc: StocId, node: NodeId) {
        self.inner.write().insert(
            stoc,
            DirectoryEntry {
                node,
                placeable: true,
            },
        );
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Remove a StoC from the directory entirely. Blocks stored there become
    /// unreadable; callers that only want to stop *new* placements should use
    /// [`StocDirectory::set_placeable`] instead.
    pub fn remove(&self, stoc: StocId) {
        self.inner.write().remove(&stoc);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Mark a StoC as (non-)placeable. A draining StoC keeps serving reads
    /// of its existing blocks but receives no new SSTable fragments.
    pub fn set_placeable(&self, stoc: StocId, placeable: bool) {
        if let Some(entry) = self.inner.write().get_mut(&stoc) {
            entry.placeable = placeable;
        }
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The node hosting `stoc`.
    pub fn node_of(&self, stoc: StocId) -> Result<NodeId> {
        self.inner
            .read()
            .get(&stoc)
            .map(|e| e.node)
            .ok_or(Error::UnknownStoc(stoc))
    }

    /// Every StoC currently registered (including draining ones), in id
    /// order.
    pub fn all(&self) -> Vec<StocId> {
        let mut v: Vec<StocId> = self.inner.read().keys().copied().collect();
        v.sort();
        v
    }

    /// The StoCs placement policies may choose for new SSTables, in id
    /// order. Cached per membership generation: placement decisions happen
    /// on every flush and compaction while membership changes only when the
    /// cluster scales, so this is a cache hit (one lock, one `Arc` clone)
    /// almost always.
    pub fn placeable(&self) -> Arc<Vec<StocId>> {
        let generation = self.generation.load(Ordering::Acquire);
        {
            let cached = self.placeable_cache.lock();
            if cached.0 == generation {
                return Arc::clone(&cached.1);
            }
        }
        let mut v: Vec<StocId> = self
            .inner
            .read()
            .iter()
            .filter(|(_, e)| e.placeable)
            .map(|(s, _)| *s)
            .collect();
        v.sort();
        let fresh = Arc::new(v);
        let mut cached = self.placeable_cache.lock();
        // Another thread may have rebuilt for a newer generation while we
        // sorted; keep whichever snapshot is newest.
        if cached.0 <= generation {
            *cached = (generation, Arc::clone(&fresh));
        }
        fresh
    }

    /// Number of placement-eligible StoCs (the paper's β).
    pub fn num_placeable(&self) -> usize {
        self.inner.read().values().filter(|e| e.placeable).count()
    }

    /// Number of registered StoCs, including draining ones.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no StoCs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A handle onto an in-memory StoC file; appends and reads are one-sided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFileHandle {
    /// The StoC storing the file.
    pub stoc: StocId,
    /// The backing StoC file id.
    pub file: StocFileId,
    /// The registered memory region holding the contents.
    pub region: u64,
    /// Capacity of the region in bytes.
    pub size: u64,
}

/// Statistics reported by a StoC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StocStats {
    /// Requests queued or in service at the disk.
    pub queue_depth: u64,
    /// Bytes written to the medium.
    pub bytes_written: u64,
    /// Bytes read from the medium.
    pub bytes_read: u64,
    /// Simulated disk busy nanoseconds.
    pub disk_busy_nanos: u64,
    /// Number of persistent files.
    pub num_files: u64,
}

/// A pool of pre-registered scratch regions reused across block reads.
///
/// Registering a fabric region takes the node's region-table lock and
/// allocates a zeroed buffer; doing that (plus the matching deregister) on
/// every single `read_block_at` — cached or not — was measurable directory
/// churn on the hot read path. Instead each client keeps a small pool of
/// registered regions and checks one out per in-flight read. When the last
/// clone of the owning client drops, the pooled regions are deregistered so
/// client churn (range migration, LTC removal) cannot strand registered
/// memory on the node.
#[derive(Debug)]
struct ScratchRegions {
    endpoint: Endpoint,
    free: Mutex<Vec<(RegionId, usize)>>,
}

impl Drop for ScratchRegions {
    fn drop(&mut self) {
        for (region, _) in self.free.get_mut().drain(..) {
            self.endpoint.deregister_region(region);
        }
    }
}

/// Scratch regions are registered with at least this capacity so that the
/// common case (data blocks ≤ a few times the configured block size) always
/// reuses a pooled region instead of growing a fresh one.
const MIN_SCRATCH_BYTES: usize = 64 << 10;

/// Upper bound on pooled scratch regions per client. Covers the deepest
/// fan-out a single batch issues; excess regions are deregistered on release.
const MAX_POOLED_SCRATCH: usize = 32;

/// A client for issuing block operations against StoCs.
#[derive(Debug, Clone)]
pub struct StocClient {
    endpoint: Endpoint,
    directory: StocDirectory,
    io: IoPool,
    scratch: Arc<ScratchRegions>,
    metrics: Arc<nova_obs::Metrics>,
}

impl StocClient {
    /// Create a client that issues verbs through `endpoint` and resolves
    /// StoCs through `directory`, with the default I/O fan-out width.
    pub fn new(endpoint: Endpoint, directory: StocDirectory) -> Self {
        let scratch = Arc::new(ScratchRegions {
            endpoint: endpoint.clone(),
            free: Mutex::new(Vec::new()),
        });
        StocClient {
            endpoint,
            directory,
            io: IoPool::default(),
            scratch,
            metrics: nova_obs::Metrics::disabled(),
        }
    }

    /// Set the scatter-gather fan-out width used by the batch APIs
    /// ([`StocClient::write_blocks`], [`StocClient::read_blocks`], …).
    /// Width 1 makes every batch run serially in submission order.
    pub fn with_io_parallelism(mut self, parallelism: usize) -> Self {
        self.io = IoPool::new(parallelism);
        self
    }

    /// Attach a metrics hub (builder style). Block, mem-file and log I/O
    /// record their latency against [`nova_obs::Layer::StocIo`].
    pub fn with_metrics(mut self, metrics: Arc<nova_obs::Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The directory used to resolve StoC locations.
    pub fn directory(&self) -> &StocDirectory {
        &self.directory
    }

    /// The fabric endpoint this client issues verbs through.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The fan-out pool used for scatter-gather batches.
    pub fn io_pool(&self) -> &IoPool {
        &self.io
    }

    /// The configured fan-out width.
    pub fn io_parallelism(&self) -> usize {
        self.io.parallelism()
    }

    /// Check a registered scratch region of at least `len` bytes out of the
    /// pool, registering a fresh one only when the pool has none big enough.
    fn acquire_scratch(&self, len: usize) -> (RegionId, usize) {
        {
            let mut free = self.scratch.free.lock();
            if let Some(pos) = free.iter().position(|&(_, capacity)| capacity >= len) {
                return free.swap_remove(pos);
            }
        }
        let capacity = len.max(MIN_SCRATCH_BYTES).next_power_of_two();
        (self.endpoint.register_region(capacity), capacity)
    }

    /// Return a scratch region to the pool (or deregister it when the pool
    /// is full).
    fn release_scratch(&self, region: RegionId, capacity: usize) {
        {
            let mut free = self.scratch.free.lock();
            if free.len() < MAX_POOLED_SCRATCH {
                free.push((region, capacity));
                return;
            }
        }
        self.endpoint.deregister_region(region);
    }

    fn call(&self, stoc: StocId, request: &StocRequest) -> Result<StocResponse> {
        let node = self.directory.node_of(stoc)?;
        let reply = self.endpoint.call(node, Bytes::from(request.encode()))?;
        StocResponse::decode(&reply)
    }

    // ---- persistent block interface ---------------------------------------

    /// Write one block to `stoc` following the paper's workflow (Figure 10):
    /// open a file (allocating a file-buffer region), `RDMA WRITE` the block
    /// into the region with immediate data, then seal the file to disk.
    pub fn write_block(&self, stoc: StocId, data: &[u8]) -> Result<StocBlockHandle> {
        let _timed = self.metrics.layer(nova_obs::Layer::StocIo);
        let node = self.directory.node_of(stoc)?;
        let opened = self.call(
            stoc,
            &StocRequest::OpenFileForWrite {
                size: data.len() as u64,
            },
        )?;
        let (file, region) = match opened {
            StocResponse::Opened { file, region } => (file, region),
            other => {
                return Err(Error::Corruption(format!(
                    "unexpected response to open: {other:?}"
                )))
            }
        };
        self.endpoint
            .rdma_write(node, RegionId(region), 0, data, Some(file.seq()))?;
        match self.call(stoc, &StocRequest::SealFile { file })? {
            StocResponse::Sealed { size } => {
                debug_assert_eq!(size as usize, data.len());
                Ok(StocBlockHandle {
                    stoc,
                    file,
                    offset: 0,
                    size: data.len() as u32,
                })
            }
            other => Err(Error::Corruption(format!(
                "unexpected response to seal: {other:?}"
            ))),
        }
    }

    /// Read a block through its handle.
    pub fn read_block(&self, handle: &StocBlockHandle) -> Result<Bytes> {
        self.read_block_at(handle.stoc, handle.file, handle.offset, handle.size as usize)
    }

    /// Read `len` bytes at `offset` of `file` on `stoc`. The StoC pushes the
    /// data into a locally registered scratch region (reused across reads)
    /// via one-sided write.
    pub fn read_block_at(&self, stoc: StocId, file: StocFileId, offset: u64, len: usize) -> Result<Bytes> {
        let _timed = self.metrics.layer(nova_obs::Layer::StocIo);
        let (client_region, capacity) = self.acquire_scratch(len.max(1));
        let result = (|| match self.call(
            stoc,
            &StocRequest::ReadBlock {
                file,
                offset,
                len: len as u64,
                client_region: client_region.0,
            },
        )? {
            StocResponse::BlockRead => {
                let region = self.endpoint.local_region(client_region)?;
                Ok(Bytes::from(region.read(0, len)?))
            }
            other => Err(Error::Corruption(format!(
                "unexpected response to read: {other:?}"
            ))),
        })();
        match &result {
            // A successful reply proves the server's one-sided write landed
            // before it responded, so the region is quiescent and safe to
            // pool.
            Ok(_) => self.release_scratch(client_region, capacity),
            // After a failure (e.g. an RPC timeout) the server may still be
            // mid-request and write into this region later. Deregister it —
            // never pool it — so a late write lands on an unknown region
            // (harmless error at the server) instead of corrupting whichever
            // read reacquired the region.
            Err(_) => {
                self.endpoint.deregister_region(client_region);
            }
        }
        result
    }

    // ---- scatter-gather batch interface ------------------------------------

    /// Write a batch of blocks concurrently, one [`StocClient::write_block`]
    /// workflow per entry, fanned out across the I/O pool. Handles come back
    /// in submission order; the first failure fails the batch fast — writes
    /// already started run to completion (nothing is abandoned mid-verb),
    /// no new write starts once the failure is recorded, and nothing is
    /// left in flight when the error returns.
    pub fn write_blocks(&self, writes: &[(StocId, &[u8])]) -> Result<Vec<StocBlockHandle>> {
        self.io.run_all(
            writes
                .iter()
                .map(|&(stoc, data)| move || self.write_block(stoc, data))
                .collect(),
        )
    }

    /// Read a batch of blocks concurrently through their handles, in
    /// submission order, failing fast like [`StocClient::write_blocks`].
    pub fn read_blocks(&self, handles: &[StocBlockHandle]) -> Result<Vec<Bytes>> {
        self.io.run_all(
            handles
                .iter()
                .map(|handle| move || self.read_block(handle))
                .collect(),
        )
    }

    /// Read a batch of byte ranges concurrently, returning each range's
    /// individual outcome (prefetchers tolerate per-block failures where a
    /// whole-batch error would be wrong).
    pub fn read_blocks_at(&self, reads: &[(StocId, StocFileId, u64, usize)]) -> Vec<Result<Bytes>> {
        self.io.run(
            reads
                .iter()
                .map(|&(stoc, file, offset, len)| move || self.read_block_at(stoc, file, offset, len))
                .collect(),
        )
    }

    /// Delete a batch of persistent files concurrently. Best-effort like the
    /// single-file path's callers expect: individual failures are reported,
    /// not short-circuited.
    pub fn delete_files(&self, files: &[(StocId, StocFileId)]) -> Vec<Result<()>> {
        self.io.run(
            files
                .iter()
                .map(|&(stoc, file)| move || self.delete_file(stoc, file))
                .collect(),
        )
    }

    /// Delete a persistent file.
    pub fn delete_file(&self, stoc: StocId, file: StocFileId) -> Result<()> {
        match self.call(stoc, &StocRequest::DeleteFile { file })? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete: {other:?}"
            ))),
        }
    }

    /// The size of a persistent file.
    pub fn file_size(&self, stoc: StocId, file: StocFileId) -> Result<u64> {
        match self.call(stoc, &StocRequest::FileSize { file })? {
            StocResponse::Size { size } => Ok(size),
            other => Err(Error::Corruption(format!(
                "unexpected response to size: {other:?}"
            ))),
        }
    }

    /// List persistent files on a StoC.
    pub fn list_files(&self, stoc: StocId) -> Result<Vec<StocFileId>> {
        match self.call(stoc, &StocRequest::ListFiles)? {
            StocResponse::Files { files } => Ok(files),
            other => Err(Error::Corruption(format!(
                "unexpected response to list: {other:?}"
            ))),
        }
    }

    /// Peek at a StoC's disk queue depth (power-of-d, Section 4.4).
    pub fn queue_depth(&self, stoc: StocId) -> Result<u64> {
        match self.call(stoc, &StocRequest::QueueDepth)? {
            StocResponse::Depth { depth } => Ok(depth),
            other => Err(Error::Corruption(format!(
                "unexpected response to depth: {other:?}"
            ))),
        }
    }

    /// Cumulative statistics for a StoC.
    pub fn stats(&self, stoc: StocId) -> Result<StocStats> {
        match self.call(stoc, &StocRequest::Stats)? {
            StocResponse::Stats {
                queue_depth,
                bytes_written,
                bytes_read,
                disk_busy_nanos,
                num_files,
            } => Ok(StocStats {
                queue_depth,
                bytes_written,
                bytes_read,
                disk_busy_nanos,
                num_files,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    // ---- in-memory (log) file interface ------------------------------------

    /// Open (or reopen) a named in-memory StoC file.
    pub fn open_mem_file(&self, stoc: StocId, name: &str, size: u64) -> Result<MemFileHandle> {
        match self.call(
            stoc,
            &StocRequest::OpenMemFile {
                name: name.to_string(),
                size,
            },
        )? {
            StocResponse::MemFile { file, region, size } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            StocResponse::Opened { file, region } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to open mem file: {other:?}"
            ))),
        }
    }

    /// Look up an existing in-memory file by name.
    pub fn get_mem_file(&self, stoc: StocId, name: &str) -> Result<MemFileHandle> {
        match self.call(
            stoc,
            &StocRequest::GetMemFile {
                name: name.to_string(),
            },
        )? {
            StocResponse::MemFile { file, region, size } => Ok(MemFileHandle {
                stoc,
                file,
                region,
                size,
            }),
            other => Err(Error::Corruption(format!(
                "unexpected response to get mem file: {other:?}"
            ))),
        }
    }

    /// List in-memory files with a given name prefix.
    pub fn list_mem_files(&self, stoc: StocId, prefix: &str) -> Result<Vec<String>> {
        match self.call(
            stoc,
            &StocRequest::ListMemFiles {
                prefix: prefix.to_string(),
            },
        )? {
            StocResponse::MemFiles { names } => Ok(names),
            other => Err(Error::Corruption(format!(
                "unexpected response to list mem files: {other:?}"
            ))),
        }
    }

    /// Delete a named in-memory file.
    pub fn delete_mem_file(&self, stoc: StocId, name: &str) -> Result<()> {
        match self.call(
            stoc,
            &StocRequest::DeleteMemFile {
                name: name.to_string(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete mem file: {other:?}"
            ))),
        }
    }

    /// Append `data` at `offset` of an in-memory file using a one-sided
    /// write. The StoC's CPU is not involved (Section 6.1).
    pub fn write_mem(&self, handle: &MemFileHandle, offset: u64, data: &[u8]) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::StocIo);
        let node = self.directory.node_of(handle.stoc)?;
        self.endpoint
            .rdma_write(node, RegionId(handle.region), offset, data, None)
    }

    /// Read `len` bytes at `offset` of an in-memory file using a one-sided
    /// read.
    pub fn read_mem(&self, handle: &MemFileHandle, offset: u64, len: usize) -> Result<Bytes> {
        let node = self.directory.node_of(handle.stoc)?;
        self.endpoint
            .rdma_read(node, RegionId(handle.region), offset, len)
    }

    // ---- persistent log interface -------------------------------------------

    /// Append serialized log records to a named persistent log file
    /// (durability mode of LogC, Section 5). Charged to the StoC's disk.
    pub fn append_log(&self, stoc: StocId, name: &str, data: &[u8]) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::StocIo);
        match self.call(
            stoc,
            &StocRequest::AppendLog {
                name: name.to_string(),
                data: data.to_vec(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to append log: {other:?}"
            ))),
        }
    }

    /// Read the full contents of a named persistent log file.
    pub fn read_log(&self, stoc: StocId, name: &str) -> Result<Vec<u8>> {
        match self.call(
            stoc,
            &StocRequest::ReadLog {
                name: name.to_string(),
            },
        )? {
            StocResponse::LogContent { data } => Ok(data),
            other => Err(Error::Corruption(format!(
                "unexpected response to read log: {other:?}"
            ))),
        }
    }

    /// List persistent log files with a name prefix.
    pub fn list_logs(&self, stoc: StocId, prefix: &str) -> Result<Vec<String>> {
        match self.call(
            stoc,
            &StocRequest::ListLogs {
                prefix: prefix.to_string(),
            },
        )? {
            StocResponse::MemFiles { names } => Ok(names),
            other => Err(Error::Corruption(format!(
                "unexpected response to list logs: {other:?}"
            ))),
        }
    }

    /// Delete a named persistent log file.
    pub fn delete_log(&self, stoc: StocId, name: &str) -> Result<()> {
        match self.call(
            stoc,
            &StocRequest::DeleteLog {
                name: name.to_string(),
            },
        )? {
            StocResponse::Ok => Ok(()),
            other => Err(Error::Corruption(format!(
                "unexpected response to delete log: {other:?}"
            ))),
        }
    }

    // ---- compaction offload -------------------------------------------------

    /// Offload a compaction job to a StoC (Section 4.3) and wait for the
    /// resulting output tables.
    pub fn offload_compaction(
        &self,
        stoc: StocId,
        job: crate::compaction::CompactionJob,
    ) -> Result<Vec<SstableMeta>> {
        match self.call(stoc, &StocRequest::Compaction(job))? {
            StocResponse::CompactionDone { outputs } => Ok(outputs),
            other => Err(Error::Corruption(format!(
                "unexpected response to compaction: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_basics() {
        let d = StocDirectory::new();
        assert!(d.is_empty());
        d.register(StocId(0), NodeId(5));
        d.register(StocId(1), NodeId(6));
        assert_eq!(d.len(), 2);
        assert_eq!(d.node_of(StocId(0)).unwrap(), NodeId(5));
        assert_eq!(d.all(), vec![StocId(0), StocId(1)]);
        d.remove(StocId(0));
        assert!(d.node_of(StocId(0)).is_err());
        assert_eq!(d.all(), vec![StocId(1)]);
    }

    #[test]
    fn directory_is_shared_between_clones() {
        let d = StocDirectory::new();
        let d2 = d.clone();
        d.register(StocId(3), NodeId(1));
        assert_eq!(d2.node_of(StocId(3)).unwrap(), NodeId(1));
    }

    #[test]
    fn draining_stoc_resolves_but_is_not_placeable() {
        let d = StocDirectory::new();
        d.register(StocId(0), NodeId(1));
        d.register(StocId(1), NodeId(2));
        assert_eq!(*d.placeable(), vec![StocId(0), StocId(1)]);

        d.set_placeable(StocId(1), false);
        // Existing blocks stay readable: the node still resolves…
        assert_eq!(d.node_of(StocId(1)).unwrap(), NodeId(2));
        assert_eq!(d.all(), vec![StocId(0), StocId(1)]);
        // …but placement stops choosing it.
        assert_eq!(*d.placeable(), vec![StocId(0)]);
        assert_eq!(d.num_placeable(), 1);

        // Re-registering brings it back.
        d.register(StocId(1), NodeId(2));
        assert_eq!(*d.placeable(), vec![StocId(0), StocId(1)]);
    }

    #[test]
    fn placeable_cache_tracks_membership_generations() {
        let d = StocDirectory::new();
        assert!(d.placeable().is_empty());
        d.register(StocId(2), NodeId(1));
        d.register(StocId(0), NodeId(2));
        let first = d.placeable();
        assert_eq!(*first, vec![StocId(0), StocId(2)]);
        // A repeated call at the same generation returns the same snapshot.
        assert!(Arc::ptr_eq(&first, &d.placeable()));
        // Every mutation invalidates: register, set_placeable, remove.
        d.set_placeable(StocId(2), false);
        assert_eq!(*d.placeable(), vec![StocId(0)]);
        d.register(StocId(1), NodeId(3));
        assert_eq!(*d.placeable(), vec![StocId(0), StocId(1)]);
        d.remove(StocId(0));
        assert_eq!(*d.placeable(), vec![StocId(1)]);
        // Clones observe the same cache.
        let clone = d.clone();
        assert!(Arc::ptr_eq(&d.placeable(), &clone.placeable()));
    }
}
